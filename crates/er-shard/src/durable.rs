//! Durability for the sharded service: one WAL per shard, group commit,
//! and a cross-shard manifest so every checkpoint is atomic across shards.
//!
//! [`DurableShardedService`] composes [`ShardedStreamingService`] with
//! `er-persist`'s [`ShardStore`]: a checkpoint writes one router snapshot
//! plus one snapshot per posting shard, creates a fresh WAL per shard, and
//! flips a single manifest — the only commit point, so no shard can ever
//! recover to a different batch boundary than its siblings (the ALICE-style
//! `shard_crash_points` suite kills the process at every VFS operation of a
//! sharded checkpoint and asserts exactly that).
//!
//! # WAL striping and group commit
//!
//! Mutation records carry a global sequence number and are striped
//! round-robin over the per-shard WALs (`seq % num_shards`); recovery
//! merges the per-shard chains back into sequence order.  Striping is what
//! makes **group commit** effective:
//! [`apply_group`](DurableShardedService::apply_group) logs a queue of
//! batches with one `append_group` — one write, one fsync — per *touched
//! WAL*, so a group of `k ≥ num_shards` batches costs `num_shards` fsyncs
//! instead of `k`, i.e. strictly fewer than one fsync per batch (measured
//! by the `micro_shard` bench).
//!
//! A group append can fail part-way: WAL 0's fsync succeeds, WAL 1's
//! fails.  The merged sequence now has a durable *suffix gap* — records
//! `{0, 3}` on WAL 0 with `{1, 4}` lost.  None of those batches were
//! acknowledged (the group errors as a unit), but the debris is on disk, so
//! the service **poisons itself**: every later mutation or checkpoint fails
//! with a typed error rather than logging records that interleave with the
//! debris.  Recovery is gap-tolerant in exactly one way: replay stops at
//! the first missing sequence number — everything after it is
//! unacknowledged torn-group debris — and immediately commits a repair
//! checkpoint so the debris is quarantined with the old generation.

use std::fmt;
use std::path::Path;
use std::sync::Arc;

use er_blocking::{CsrBlockCollection, KeyGenerator};
use er_core::{crc64, EntityId, EntityProfile, PersistError, PersistResult};
use er_features::FeatureSet;
use er_learn::ProbabilisticClassifier;
use er_persist::{
    decode_snapshot_payload, Decode, Encode, Reader, RecoveryReport, RetryPolicy, ShardStore,
    StdVfs, Vfs, WalWriter, Writer,
};
use er_stream::persist::{
    decode_record, encode_ingest_record, encode_remove_record, encode_update_record,
};
use er_stream::{
    DeltaBatch, DeltaIndex, MutationRecord, ShardRouterState, ShardedIndex, StreamingIndex,
    StreamingMetaBlocker,
};

use crate::epoch::{EpochReader, EpochView};
use crate::service::ShardedStreamingService;

/// Payload tag of sharded-service snapshots (`b"SHRD"`).
pub const SHARDED_SNAPSHOT_TAG: u32 = 0x5348_5244;

/// The fingerprint tying a sharded generation set to one logical stream: a
/// digest of the dataset name, ER kind, Clean-Clean split, scheme cap and
/// shard count.  The shard count is part of the identity — re-sharding is
/// a rebuild, not a recovery.
pub fn sharded_fingerprint(index: &ShardedIndex) -> u64 {
    let mut w = Writer::new();
    w.write_str(index.dataset_name());
    index.kind().encode(&mut w);
    w.write_usize(index.split());
    w.write_u64(index.size_cap() as u64);
    w.write_u32(index.num_shards() as u32);
    crc64(w.as_bytes())
}

/// The router snapshot payload: the cross-shard state that is not owned by
/// any single shard, stamped with the commit's batch boundary.
struct RouterSnapshot {
    applied_seq: u64,
    feature_set: FeatureSet,
    state: ShardRouterState,
}

impl Encode for RouterSnapshot {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.applied_seq);
        w.write_u8(self.feature_set.id());
        self.state.encode(w);
    }
}

impl Decode for RouterSnapshot {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        let applied_seq = r.read_u64()?;
        let feature_set = FeatureSet::from_id(r.read_u8()?)
            .ok_or_else(|| PersistError::Corrupt("feature-set id 0 is not valid".into()))?;
        let state = ShardRouterState::decode(r)?;
        Ok(RouterSnapshot {
            applied_seq,
            feature_set,
            state,
        })
    }
}

/// One shard's snapshot payload.  Every member of a generation set carries
/// the shard ordinal and the same `applied_seq` as the router; recovery
/// cross-checks both so a mixed set (two half-finished commits spliced by a
/// filesystem restore) is rejected as corrupt rather than replayed.
struct ShardSnapshot<'a> {
    shard: u32,
    applied_seq: u64,
    index: &'a StreamingIndex,
}

impl Encode for ShardSnapshot<'_> {
    fn encode(&self, w: &mut Writer) {
        w.write_u32(self.shard);
        w.write_u64(self.applied_seq);
        self.index.encode(w);
    }
}

struct ShardSnapshotOwned {
    shard: u32,
    applied_seq: u64,
    index: StreamingIndex,
}

impl Decode for ShardSnapshotOwned {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        let shard = r.read_u32()?;
        let applied_seq = r.read_u64()?;
        let index = StreamingIndex::decode(r)?;
        Ok(ShardSnapshotOwned {
            shard,
            applied_seq,
            index,
        })
    }
}

/// The router + shard snapshot set of the current state, stamped with one
/// batch boundary — what a checkpoint commits.
fn snapshot_parts<G: KeyGenerator>(
    service: &ShardedStreamingService<G>,
    applied_seq: u64,
) -> (RouterSnapshot, Vec<ShardSnapshot<'_>>) {
    let index = service.index();
    let router = RouterSnapshot {
        applied_seq,
        feature_set: service.feature_set(),
        state: index.router_state(),
    };
    let shards = (0..index.num_shards())
        .map(|i| ShardSnapshot {
            shard: i as u32,
            applied_seq,
            index: index.shard(i),
        })
        .collect();
    (router, shards)
}

/// A [`ShardedStreamingService`] whose mutations are write-ahead logged
/// across per-shard WALs and whose checkpoints commit atomically through
/// one cross-shard manifest.
///
/// Construction: [`ShardedStreamingService::persist_to`] for a fresh
/// store, [`DurableShardedService::recover_from`] after a restart or
/// crash.
pub struct DurableShardedService<G: KeyGenerator> {
    service: ShardedStreamingService<G>,
    store: ShardStore,
    wals: Vec<WalWriter>,
    next_seq: u64,
    /// Append / fsync counts of WALs already retired by checkpoints, so
    /// [`wal_appends`](Self::wal_appends) / [`wal_syncs`](Self::wal_syncs)
    /// stay cumulative across generations.
    retired_appends: u64,
    retired_syncs: u64,
    /// Set when a group append failed after some WAL in the group had
    /// already synced: the durable sequence has a gap, and appending more
    /// records would interleave acknowledged writes with debris.
    poisoned: bool,
    recovery: Option<RecoveryReport>,
}

impl<G: KeyGenerator> fmt::Debug for DurableShardedService<G> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableShardedService")
            .field("service", &self.service)
            .field("dir", &self.store.dir())
            .field("generation", &self.store.committed())
            .field("next_seq", &self.next_seq)
            .field("poisoned", &self.poisoned)
            .finish_non_exhaustive()
    }
}

impl<G: KeyGenerator> ShardedStreamingService<G> {
    /// Persists the service into `dir` (which must not already hold a
    /// store), committing generation 0 and returning the durable wrapper.
    pub fn persist_to(self, dir: impl AsRef<Path>) -> PersistResult<DurableShardedService<G>> {
        self.persist_to_with(dir, StdVfs::arc(), RetryPolicy::default_write())
    }

    /// [`persist_to`](ShardedStreamingService::persist_to) through an
    /// explicit VFS and write-path retry policy (the fault-injection
    /// seam).
    pub fn persist_to_with(
        self,
        dir: impl AsRef<Path>,
        vfs: Arc<dyn Vfs>,
        policy: RetryPolicy,
    ) -> PersistResult<DurableShardedService<G>> {
        let fingerprint = sharded_fingerprint(self.index());
        let (router, shards) = snapshot_parts(&self, 0);
        let (store, wals) = ShardStore::create(
            vfs,
            policy,
            dir.as_ref(),
            SHARDED_SNAPSHOT_TAG,
            fingerprint,
            &router,
            &shards,
        )?;
        drop(shards);
        Ok(DurableShardedService {
            service: self,
            store,
            wals,
            next_seq: 0,
            retired_appends: 0,
            retired_syncs: 0,
            poisoned: false,
            recovery: None,
        })
    }
}

impl<G: KeyGenerator> DurableShardedService<G> {
    /// Recovers a durable sharded service from `dir`: loads the newest
    /// readable generation set, merges the per-shard WAL chains by
    /// sequence number and replays the acknowledged prefix.
    pub fn recover_from(
        dir: impl AsRef<Path>,
        generator: G,
        threads: usize,
    ) -> PersistResult<Self> {
        DurableShardedService::recover_from_with(
            dir,
            StdVfs::arc(),
            RetryPolicy::default_write(),
            generator,
            threads,
        )
    }

    /// [`recover_from`](DurableShardedService::recover_from) through an
    /// explicit VFS and write-path retry policy (the fault-injection
    /// seam).
    pub fn recover_from_with(
        dir: impl AsRef<Path>,
        vfs: Arc<dyn Vfs>,
        policy: RetryPolicy,
        generator: G,
        threads: usize,
    ) -> PersistResult<Self> {
        let (mut store, recovered) =
            ShardStore::recover(vfs, policy, dir.as_ref(), SHARDED_SNAPSHOT_TAG, None)?;
        let router: RouterSnapshot = decode_snapshot_payload(&recovered.router_payload)?;
        let num_shards = recovered.num_shards as usize;

        let mut shards = Vec::with_capacity(num_shards);
        for (i, payload) in recovered.shard_payloads.iter().enumerate() {
            let snapshot: ShardSnapshotOwned = decode_snapshot_payload(payload)?;
            if snapshot.shard != i as u32 {
                return Err(PersistError::Corrupt(format!(
                    "shard snapshot {i} carries ordinal {}",
                    snapshot.shard
                )));
            }
            if snapshot.applied_seq != router.applied_seq {
                return Err(PersistError::Corrupt(format!(
                    "generation set is not a single commit boundary: shard {i} snapshot at seq {} \
                     but router at seq {}",
                    snapshot.applied_seq, router.applied_seq
                )));
            }
            shards.push(snapshot.index);
        }
        let index = ShardedIndex::from_parts(shards, router.state)?;
        let fingerprint = sharded_fingerprint(&index);
        if fingerprint != recovered.fingerprint {
            return Err(PersistError::FingerprintMismatch {
                expected: recovered.fingerprint,
                found: fingerprint,
            });
        }
        let blocker =
            StreamingMetaBlocker::from_recovered(index, generator, router.feature_set, threads)?;
        let mut service = ShardedStreamingService::from_blocker(blocker);

        // Merge the per-shard chains back into one sequence.  Each record
        // must live on the WAL its sequence number stripes to; anything
        // else is cross-wired debris from outside interference.
        let mut merged: Vec<(u64, &[u8])> = Vec::new();
        for (shard, records) in recovered.shard_records.iter().enumerate() {
            for payload in records {
                if payload.len() < 8 {
                    return Err(PersistError::Corrupt(format!(
                        "wal record of {} bytes on shard {shard} is too short for a sequence \
                         number",
                        payload.len()
                    )));
                }
                let seq = u64::from_le_bytes(payload[..8].try_into().unwrap());
                if seq % num_shards as u64 != shard as u64 {
                    return Err(PersistError::Corrupt(format!(
                        "wal record seq {seq} found on shard {shard}, expected shard {}",
                        seq % num_shards as u64
                    )));
                }
                merged.push((seq, payload));
            }
        }
        merged.sort_by_key(|&(seq, _)| seq);

        // Replay the contiguous acknowledged prefix.  A *gap* means a
        // group commit died between WAL fsyncs: everything at and past the
        // gap was never acknowledged, so it is dropped (and the repair
        // checkpoint below quarantines it with the old generation).
        let mut next_seq = router.applied_seq;
        let mut debris = false;
        for &(seq, payload) in &merged {
            if seq < router.applied_seq {
                continue;
            }
            if seq != next_seq {
                debris = true;
                break;
            }
            let (_, record) = decode_record(payload)?;
            service.apply(&record, false);
            next_seq += 1;
        }

        let mut report = recovered.report;
        report.records_replayed = (next_seq - router.applied_seq) as usize;

        // Torn-group debris or a degraded recovery (fallback generation,
        // unreadable WAL) both mean the committed WALs cannot simply be
        // appended to: re-commit the replayed state as a fresh generation.
        let wals = match (&recovered.wal_valid_lens, debris) {
            (Some(valid_lens), false) => store.open_committed_wals(valid_lens)?,
            _ => {
                report.repair_checkpoint = true;
                let (router, shards) = snapshot_parts(&service, next_seq);
                store.commit(SHARDED_SNAPSHOT_TAG, &router, &shards)?
            }
        };
        report.observe();
        Ok(DurableShardedService {
            service,
            store,
            wals,
            next_seq,
            retired_appends: 0,
            retired_syncs: 0,
            poisoned: false,
            recovery: Some(report),
        })
    }

    /// Errors out (typed, fatal) once the durable sequence is known to
    /// have a gap; every mutating entry point funnels through this.
    fn check_usable(&self) -> PersistResult<()> {
        if self.poisoned {
            return Err(PersistError::Corrupt(
                "sharded WAL group commit failed part-way: the durable sequence has a gap; \
                 recover the service from its directory"
                    .into(),
            ));
        }
        Ok(())
    }

    /// The WAL a sequence number stripes to.
    fn wal_of(&self, seq: u64) -> usize {
        (seq % self.wals.len() as u64) as usize
    }

    /// Logs one record payload to its striped WAL and advances the
    /// sequence.
    fn append_one(&mut self, payload: Vec<u8>) -> PersistResult<()> {
        self.check_usable()?;
        let shard = self.wal_of(self.next_seq);
        self.wals[shard].append(&payload)?;
        self.next_seq += 1;
        Ok(())
    }

    /// Logs an ingest batch, then applies it and publishes the post-batch
    /// view.
    pub fn ingest(&mut self, profiles: &[EntityProfile]) -> PersistResult<DeltaBatch> {
        self.append_one(encode_ingest_record(self.next_seq, profiles))?;
        Ok(self.service.ingest(profiles))
    }

    /// [`ingest`](DurableShardedService::ingest) without the feature /
    /// probability phase.
    pub fn ingest_unscored(&mut self, profiles: &[EntityProfile]) -> PersistResult<DeltaBatch> {
        self.append_one(encode_ingest_record(self.next_seq, profiles))?;
        Ok(self.service.ingest_unscored(profiles))
    }

    /// Logs a removal batch, then applies it.
    ///
    /// # Panics
    /// Same contract as `StreamingMetaBlocker::remove` (unknown, removed
    /// or duplicate ids) — asserted **before** the WAL append, so an
    /// invalid batch never poisons the log.
    pub fn remove(&mut self, ids: &[EntityId]) -> PersistResult<DeltaBatch> {
        self.service.assert_remove_batch(ids);
        self.append_one(encode_remove_record(self.next_seq, ids))?;
        Ok(self.service.remove(ids))
    }

    /// [`remove`](DurableShardedService::remove) without the feature /
    /// probability phase.
    pub fn remove_unscored(&mut self, ids: &[EntityId]) -> PersistResult<DeltaBatch> {
        self.service.assert_remove_batch(ids);
        self.append_one(encode_remove_record(self.next_seq, ids))?;
        Ok(self.service.remove_unscored(ids))
    }

    /// Logs an update batch, then applies it.
    ///
    /// # Panics
    /// Same contract as `StreamingMetaBlocker::update` — asserted before
    /// the WAL append.
    pub fn update(&mut self, updates: &[(EntityId, EntityProfile)]) -> PersistResult<DeltaBatch> {
        self.service.assert_update_batch(updates);
        self.append_one(encode_update_record(self.next_seq, updates))?;
        Ok(self.service.update(updates))
    }

    /// [`update`](DurableShardedService::update) without the feature /
    /// probability phase.
    pub fn update_unscored(
        &mut self,
        updates: &[(EntityId, EntityProfile)],
    ) -> PersistResult<DeltaBatch> {
        self.service.assert_update_batch(updates);
        self.append_one(encode_update_record(self.next_seq, updates))?;
        Ok(self.service.update_unscored(updates))
    }

    /// Group commit: logs a queue of mutation batches with **one write and
    /// one fsync per touched WAL** (not per batch), then applies them in
    /// order, returning each batch's delta.
    ///
    /// The group is acknowledged as a unit: on `Ok`, every batch is
    /// durable and applied.  On `Err` nothing was applied; if some WAL in
    /// the group had already synced, the service poisons itself (see the
    /// module docs) and must be recovered from its directory.
    ///
    /// # Panics
    /// Each batch is validated against the state the *preceding* batches
    /// in the group will produce, with the same contracts as the
    /// individual methods — asserted before any WAL append.
    pub fn apply_group(&mut self, ops: &[MutationRecord]) -> PersistResult<Vec<DeltaBatch>> {
        self.apply_group_impl(ops, true)
    }

    /// [`apply_group`](DurableShardedService::apply_group) without the
    /// feature / probability phase.
    pub fn apply_group_unscored(
        &mut self,
        ops: &[MutationRecord],
    ) -> PersistResult<Vec<DeltaBatch>> {
        self.apply_group_impl(ops, false)
    }

    fn apply_group_impl(
        &mut self,
        ops: &[MutationRecord],
        score: bool,
    ) -> PersistResult<Vec<DeltaBatch>> {
        self.check_usable()?;
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        self.assert_group(ops);

        // Stripe the encoded records over the WALs, then append each
        // WAL's slice as one group (one write + one fsync).
        let num_wals = self.wals.len();
        let mut striped: Vec<Vec<Vec<u8>>> = vec![Vec::new(); num_wals];
        for (i, op) in ops.iter().enumerate() {
            let seq = self.next_seq + i as u64;
            let payload = match op {
                MutationRecord::Ingest(profiles) => encode_ingest_record(seq, profiles),
                MutationRecord::Remove(ids) => encode_remove_record(seq, ids),
                MutationRecord::Update(updates) => encode_update_record(seq, updates),
            };
            striped[(seq % num_wals as u64) as usize].push(payload);
        }
        let mut wrote_any = false;
        let mut fsyncs = 0u64;
        let o = crate::obs::obs();
        for (shard, group) in striped.iter().enumerate() {
            o.queue_depth
                .with_label(&shard.to_string())
                .set(group.len() as u64);
            if group.is_empty() {
                continue;
            }
            let slices: Vec<&[u8]> = group.iter().map(Vec::as_slice).collect();
            if let Err(e) = self.wals[shard].append_group(&slices) {
                // A WAL earlier in the loop already fsynced its slice of
                // the group: the durable sequence now has a gap.
                if wrote_any {
                    self.poisoned = true;
                }
                return Err(e);
            }
            wrote_any = true;
            fsyncs += 1;
            o.wal_records.record(group.len() as u64);
        }
        o.groups_applied.inc();
        o.group_batches.record(ops.len() as u64);
        o.group_fsyncs.record(fsyncs);
        self.next_seq += ops.len() as u64;
        Ok(ops.iter().map(|op| self.service.apply(op, score)).collect())
    }

    /// Validates a whole group against the states the group itself will
    /// produce: batch `i` must be valid *after* batches `0..i` have been
    /// applied, tracked with a projected entity count and a killed-id
    /// overlay rather than by mutating the service.
    fn assert_group(&self, ops: &[MutationRecord]) {
        let base = self.service.num_entities();
        let mut projected = base;
        let mut killed: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let index = self.service.index();
        let alive = |e: EntityId, projected: usize, killed: &std::collections::HashSet<u32>| {
            e.index() < projected
                && !killed.contains(&e.0)
                && (e.index() >= base || er_stream::BlockIndex::is_alive(index, e))
        };
        for op in ops {
            match op {
                MutationRecord::Ingest(profiles) => {
                    projected += profiles.len();
                }
                MutationRecord::Remove(ids) => {
                    let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
                    for &e in ids {
                        assert!(e.index() < projected, "cannot remove unknown entity {e}");
                        assert!(
                            alive(e, projected, &killed),
                            "cannot remove entity {e} twice"
                        );
                        assert!(seen.insert(e.0), "duplicate ids in remove batch");
                    }
                    killed.extend(ids.iter().map(|e| e.0));
                }
                MutationRecord::Update(updates) => {
                    let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
                    for &(e, _) in updates {
                        assert!(e.index() < projected, "cannot update unknown entity {e}");
                        assert!(
                            alive(e, projected, &killed),
                            "cannot update removed entity {e}"
                        );
                        assert!(seen.insert(e.0), "duplicate ids in update batch");
                    }
                }
            }
        }
    }

    /// Folds the current WALs' counters into the retired totals before a
    /// checkpoint replaces them.
    fn retire_wal_counters(&mut self) {
        for wal in &self.wals {
            self.retired_appends += wal.appends();
            self.retired_syncs += wal.syncs();
        }
    }

    /// Commits a new generation: a router + per-shard snapshot set of the
    /// current state, a fresh empty WAL per shard, and the single manifest
    /// flip that makes all of it the committed boundary atomically.
    pub fn checkpoint(&mut self) -> PersistResult<()> {
        self.check_usable()?;
        self.retire_wal_counters();
        let o = crate::obs::obs();
        o.checkpoints.inc();
        let timer = o.checkpoint_ns.start_timer();
        let (router, shards) = snapshot_parts(&self.service, self.next_seq);
        self.wals = self.store.commit(SHARDED_SNAPSHOT_TAG, &router, &shards)?;
        timer.observe();
        Ok(())
    }

    /// Ends the epoch durably: folds the deltas into a fresh baseline,
    /// publishes it, and checkpoints so recovery starts from the compacted
    /// state.
    pub fn compact(&mut self) -> PersistResult<Arc<CsrBlockCollection>> {
        self.check_usable()?;
        let baseline = self.service.compact();
        self.checkpoint()?;
        Ok(baseline)
    }

    /// Attaches the classifier scoring future delta pairs.
    pub fn with_model(mut self, model: Box<dyn ProbabilisticClassifier>) -> Self {
        self.service = self.service.with_model(model);
        self
    }

    /// Cumulative WAL record appends across all generations.
    pub fn wal_appends(&self) -> u64 {
        self.retired_appends + self.wals.iter().map(WalWriter::appends).sum::<u64>()
    }

    /// Cumulative WAL fsyncs across all generations — with group commit
    /// this grows by at most `num_shards` per applied group, not by the
    /// group's batch count.
    pub fn wal_syncs(&self) -> u64 {
        self.retired_syncs + self.wals.iter().map(WalWriter::syncs).sum::<u64>()
    }

    /// Sequence number the next mutation batch will be logged under.
    pub fn wal_sequence(&self) -> u64 {
        self.next_seq
    }

    /// What the recovery that produced this service had to do — `None`
    /// for a service created fresh by `persist_to`.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        self.store.dir()
    }

    /// The stream fingerprint stamped on every snapshot and WAL.
    pub fn fingerprint(&self) -> u64 {
        self.store.fingerprint()
    }

    /// The committed snapshot generation.
    pub fn generation(&self) -> u64 {
        self.store.committed()
    }

    /// Number of posting shards (and WALs).
    pub fn num_shards(&self) -> usize {
        self.wals.len()
    }

    /// The wrapped service (read-only; mutations must go through the
    /// durable methods so they hit the log).
    pub fn service(&self) -> &ShardedStreamingService<G> {
        &self.service
    }

    /// A cloneable handle to the published epoch views.
    pub fn reader(&self) -> EpochReader {
        self.service.reader()
    }

    /// The most recently published view.
    pub fn current(&self) -> Arc<EpochView> {
        self.service.current()
    }

    /// The underlying sharded index.
    pub fn index(&self) -> &ShardedIndex {
        self.service.index()
    }

    /// The batch view of the current corpus.
    pub fn view(&self) -> CsrBlockCollection {
        self.service.view()
    }

    /// Number of entity ids ever assigned.
    pub fn num_entities(&self) -> usize {
        self.service.num_entities()
    }

    /// Number of entities currently alive.
    pub fn num_alive(&self) -> usize {
        self.service.num_alive()
    }

    /// Detaches the in-memory service, abandoning durability.
    pub fn into_service(self) -> ShardedStreamingService<G> {
        self.service
    }
}
