//! `er-shard` — the sharded multi-writer streaming service.
//!
//! This crate scales the incremental meta-blocker of `er-stream` across
//! hash-partitioned posting shards while preserving the workspace's core
//! invariant: **every output is bit-identical to the single-shard,
//! single-thread oracle**, for any shard count and any thread count.  The
//! pieces:
//!
//! * [`service`] — [`ShardedStreamingService`], the mutation pipeline over
//!   `er_stream::ShardedIndex`: ingest / remove / update batches fan out
//!   to the shards owning the touched keys and emit the same `DeltaBatch`
//!   a single-shard `StreamingMetaBlocker` would;
//! * [`epoch`] — [`EpochReader`] / [`EpochView`], ArcSwap-style
//!   epoch-published read snapshots so readers never block writers and
//!   never observe a half-applied batch;
//! * [`durable`] — [`DurableShardedService`], per-shard WALs striped by
//!   global sequence number with group commit (one fsync per touched WAL
//!   per group, not per batch) and one cross-shard manifest, so a
//!   checkpoint commits atomically across shards and crash recovery lands
//!   every shard on the same batch boundary.
//!
//! The property suites live in this crate's `tests/`: `equivalence`
//! (random mutation traces × schemes × shard counts × thread counts vs
//! the single-shard oracle), `shard_durability` (recovery equivalence and
//! group-commit fsync accounting) and `shard_crash_points` (a crash at
//! every VFS operation, ALICE-style).

pub mod durable;
pub mod epoch;
mod obs;
pub mod service;

pub use durable::{sharded_fingerprint, DurableShardedService, SHARDED_SNAPSHOT_TAG};
pub use epoch::{EpochReader, EpochView};
pub use service::ShardedStreamingService;
