//! er-obs metric handles for the sharded service, resolved once per
//! process.  Group-commit metrics are recorded once per applied group,
//! epoch metrics once per published view — never per record or per pair.

use std::sync::OnceLock;

use er_obs::{Counter, Family, Gauge, Histogram};

pub(crate) struct ShardObs {
    /// Mutation groups applied through the durable group-commit path.
    pub(crate) groups_applied: &'static Counter,
    /// Batches per applied group.
    pub(crate) group_batches: &'static Histogram,
    /// Fsyncs per applied group (one per touched WAL — below the batch
    /// count once groups are deeper than the shard count).
    pub(crate) group_fsyncs: &'static Histogram,
    /// Records appended per touched WAL per group.
    pub(crate) wal_records: &'static Histogram,
    /// Records striped to each shard's WAL by the last applied group.
    pub(crate) queue_depth: &'static Family<Gauge>,
    /// Cross-shard checkpoints committed.
    pub(crate) checkpoints: &'static Counter,
    /// Cross-shard checkpoint duration, nanoseconds.
    pub(crate) checkpoint_ns: &'static Histogram,
    /// Epoch views published (batch and compaction boundaries).
    pub(crate) epochs_published: &'static Counter,
    /// Epoch publish latency (view assembly + pointer flip), nanoseconds.
    pub(crate) epoch_publish_ns: &'static Histogram,
    /// `batches_applied` of the most recently published view.
    pub(crate) published_batches: &'static Gauge,
    /// Reader-view age at load time, in batches behind the newest publish.
    pub(crate) reader_view_age: &'static Histogram,
}

pub(crate) fn obs() -> &'static ShardObs {
    static OBS: OnceLock<ShardObs> = OnceLock::new();
    OBS.get_or_init(|| ShardObs {
        groups_applied: er_obs::counter(
            "shard_groups_applied_total",
            "Mutation groups applied through the durable group-commit path",
        ),
        group_batches: er_obs::histogram("shard_group_batches", "Batches per applied group"),
        group_fsyncs: er_obs::histogram(
            "shard_group_fsyncs",
            "Fsyncs per applied group (one per touched WAL)",
        ),
        wal_records: er_obs::histogram(
            "shard_wal_records",
            "Records appended per touched WAL per group",
        ),
        queue_depth: er_obs::gauge_family(
            "shard_queue_depth",
            "Records striped to each shard's WAL by the last applied group",
            "shard",
            er_obs::DEFAULT_MAX_CARDINALITY,
        ),
        checkpoints: er_obs::counter(
            "shard_checkpoints_total",
            "Cross-shard checkpoints committed",
        ),
        checkpoint_ns: er_obs::histogram(
            "shard_checkpoint_ns",
            "Cross-shard checkpoint duration, nanoseconds",
        ),
        epochs_published: er_obs::counter(
            "shard_epochs_published_total",
            "Epoch views published (batch and compaction boundaries)",
        ),
        epoch_publish_ns: er_obs::histogram(
            "shard_epoch_publish_ns",
            "Epoch publish latency (view assembly + pointer flip), nanoseconds",
        ),
        published_batches: er_obs::gauge(
            "shard_published_batches",
            "batches_applied of the most recently published view",
        ),
        reader_view_age: er_obs::histogram(
            "shard_reader_view_age_batches",
            "Reader-view age at load time, in batches behind the newest publish",
        ),
    })
}
