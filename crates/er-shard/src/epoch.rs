//! Epoch-published read views: readers never block writers.
//!
//! The sharded service mutates its index under `&mut self`, but consumers
//! (dashboards, progressive resolvers, replication followers) want to read
//! *consistent* state from other threads without stalling ingestion.  The
//! classic answer is an ArcSwap-style pointer flip: the writer assembles an
//! immutable [`EpochView`] at every batch or compaction boundary and
//! publishes it by swapping one `Arc` pointer; readers clone the current
//! `Arc` and keep reading their view for as long as they like, completely
//! decoupled from later writes.
//!
//! The workspace vendors no lock-free crate, so the cell is a
//! `RwLock<Arc<EpochView>>` used *only* as a pointer slot: `load` is a
//! read-lock held for one `Arc` clone, `publish` a write-lock held for one
//! pointer store.  Neither ever blocks on the duration of a batch — the
//! expensive work (applying the mutation, cloning the delta) happens
//! outside the lock — so reader latency is bounded by a pointer swap, not
//! by writer progress.  The `micro_shard` bench measures exactly this:
//! reader `load` latency while a writer ingests concurrently.

use std::sync::{Arc, RwLock};

use er_blocking::CsrBlockCollection;
use er_stream::DeltaBatch;

/// One immutable published state of the sharded service.
///
/// A view is cheap to publish per batch: the `baseline` CSR is shared
/// (`Arc`) with the previous view and only replaced at compaction
/// boundaries, where the compactor has just built it anyway; the per-batch
/// part is the batch's own [`DeltaBatch`].  A reader reconstructs any
/// intermediate candidate set as `baseline ∪ deltas since the baseline's
/// epoch`, or simply inspects the counters.
pub struct EpochView {
    /// The compaction epoch the `baseline` belongs to.
    pub epoch: u64,
    /// Number of mutation batches applied by this service instance when
    /// the view was published (recovered services restart at the replayed
    /// record count).
    pub batches_applied: u64,
    /// Number of entity ids ever assigned.
    pub num_entities: usize,
    /// Number of entities currently alive.
    pub num_alive: usize,
    /// The block collection of the last compaction (the initial state's
    /// view before any compaction) — shared, not rebuilt per batch.
    pub baseline: Arc<CsrBlockCollection>,
    /// The delta of the batch that published this view; `None` for the
    /// initial view and for compaction publishes.
    pub last_delta: Option<Arc<DeltaBatch>>,
}

impl std::fmt::Debug for EpochView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochView")
            .field("epoch", &self.epoch)
            .field("batches_applied", &self.batches_applied)
            .field("num_entities", &self.num_entities)
            .field("num_alive", &self.num_alive)
            .field("has_delta", &self.last_delta.is_some())
            .finish_non_exhaustive()
    }
}

/// The single-writer multi-reader publication slot.
#[derive(Debug)]
pub(crate) struct EpochCell {
    current: RwLock<Arc<EpochView>>,
}

impl EpochCell {
    pub(crate) fn new(view: EpochView) -> Arc<Self> {
        Arc::new(EpochCell {
            current: RwLock::new(Arc::new(view)),
        })
    }

    /// The current view: a read-lock held for one `Arc` clone.
    pub(crate) fn load(&self) -> Arc<EpochView> {
        // Neither lock section can panic, so the lock cannot be poisoned.
        self.current.read().expect("epoch cell poisoned").clone()
    }

    /// Publishes a new view: a write-lock held for one pointer store.
    pub(crate) fn publish(&self, view: EpochView) {
        *self.current.write().expect("epoch cell poisoned") = Arc::new(view);
    }
}

/// A cloneable, thread-safe handle to the service's published views.
///
/// Obtained from `ShardedStreamingService::reader`; hand clones to any
/// number of threads.  Each [`load`](EpochReader::load) returns the view
/// current at that instant; the returned `Arc` stays valid (and immutable)
/// regardless of later writes.
#[derive(Clone, Debug)]
pub struct EpochReader {
    cell: Arc<EpochCell>,
}

impl EpochReader {
    pub(crate) fn new(cell: Arc<EpochCell>) -> Self {
        EpochReader { cell }
    }

    /// The most recently published view.
    pub fn load(&self) -> Arc<EpochView> {
        let view = self.cell.load();
        // How far the loaded view trails the newest publish, in batches.
        // Usually 0; nonzero when a writer published between the pointer
        // read and here, or when several services share the process.
        let o = crate::obs::obs();
        o.reader_view_age.record(
            o.published_batches
                .get()
                .saturating_sub(view.batches_applied),
        );
        view
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_blocking::build_blocks;
    use er_core::{Dataset, EntityCollection, EntityProfile, GroundTruth};

    fn empty_baseline() -> Arc<CsrBlockCollection> {
        let profiles = vec![EntityProfile::new("0")];
        let ds = Dataset::dirty(
            "epoch",
            EntityCollection::new("epoch", profiles),
            GroundTruth::from_pairs(Vec::new()),
        )
        .unwrap();
        Arc::new(build_blocks(&ds, &er_blocking::TokenKeys, 1))
    }

    fn view(batches: u64, baseline: Arc<CsrBlockCollection>) -> EpochView {
        EpochView {
            epoch: 0,
            batches_applied: batches,
            num_entities: batches as usize,
            num_alive: batches as usize,
            baseline,
            last_delta: None,
        }
    }

    #[test]
    fn loads_are_immutable_snapshots_and_publishes_are_monotonic() {
        let baseline = empty_baseline();
        let cell = EpochCell::new(view(0, baseline.clone()));
        let reader = EpochReader::new(cell.clone());
        let before = reader.load();
        cell.publish(view(1, baseline.clone()));
        // The old snapshot is untouched; a fresh load sees the new one.
        assert_eq!(before.batches_applied, 0);
        assert_eq!(reader.load().batches_applied, 1);

        // Concurrent readers only ever observe monotonically advancing
        // views while the writer publishes.
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let reader = reader.clone();
                std::thread::spawn(move || {
                    let mut last = reader.load().batches_applied;
                    for _ in 0..1000 {
                        let seen = reader.load().batches_applied;
                        assert!(seen >= last, "view went backwards: {last} -> {seen}");
                        last = seen;
                    }
                })
            })
            .collect();
        for batches in 2..200 {
            cell.publish(view(batches, baseline.clone()));
        }
        for worker in workers {
            worker.join().unwrap();
        }
    }
}
