//! Durable sharded service: recovery equivalence and group-commit
//! accounting (crash-free paths; the every-VFS-op crash matrix lives in
//! `shard_crash_points.rs`).

use std::path::PathBuf;

use er_blocking::TokenKeys;
use er_core::{Dataset, EntityId};
use er_datasets::{dirty_catalog, generate_dirty, CatalogOptions};
use er_features::FeatureSet;
use er_shard::{DurableShardedService, ShardedStreamingService};
use er_stream::{BlockIndex, MutationRecord, StreamingConfig};

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dataset() -> Dataset {
    generate_dirty(&dirty_catalog(&CatalogOptions::tiny())[0]).unwrap()
}

fn config(dataset: &Dataset, threads: usize) -> StreamingConfig {
    StreamingConfig {
        feature_set: FeatureSet::all_schemes(),
        threads,
        ..StreamingConfig::for_dataset(dataset)
    }
}

/// A deterministic mutation script over the dataset: ingests in uneven
/// batches with removals and updates mixed in.
fn script(dataset: &Dataset) -> Vec<MutationRecord> {
    let profiles = &dataset.profiles;
    let n = profiles.len();
    let mut ops = Vec::new();
    let mut next = 0usize;
    let sizes = [7usize, 3, 11, 1, 9, 5];
    let mut i = 0usize;
    while next < n {
        let take = sizes[i % sizes.len()].min(n - next);
        ops.push(MutationRecord::Ingest(profiles[next..next + take].to_vec()));
        next += take;
        match i % 3 {
            0 if next >= 5 => ops.push(MutationRecord::Remove(vec![EntityId((next - 2) as u32)])),
            1 if next >= 6 => ops.push(MutationRecord::Update(vec![(
                EntityId((next - 3) as u32),
                profiles[(next + 1) % n].clone(),
            )])),
            _ => {}
        }
        i += 1;
    }
    ops
}

/// Digest of the corpus-visible state: blocks plus liveness counters.
fn digest<G: er_blocking::KeyGenerator>(service: &ShardedStreamingService<G>) -> u64 {
    let blocks = service.view().to_block_collection().blocks;
    er_core::crc64(
        format!(
            "{blocks:?}|{}|{}",
            service.num_entities(),
            service.num_alive()
        )
        .as_bytes(),
    )
}

/// The in-memory oracle the durable runs are compared against.
fn oracle(
    dataset: &Dataset,
    ops: &[MutationRecord],
    num_shards: usize,
) -> ShardedStreamingService<TokenKeys> {
    let mut service =
        ShardedStreamingService::new(config(dataset, 2), TokenKeys, num_shards).unwrap();
    for op in ops {
        service.apply(op, false);
    }
    service
}

#[test]
fn recovery_lands_on_the_acknowledged_state_with_and_without_checkpoints() {
    let ds = dataset();
    let ops = script(&ds);
    assert!(ops.len() > 10);
    let dir = scratch("recovery_acknowledged");

    // Apply the script with a checkpoint after every 5th op and a
    // compaction mid-way; everything after the last checkpoint lives only
    // in the WALs.
    let mut durable = ShardedStreamingService::new(config(&ds, 2), TokenKeys, 3)
        .unwrap()
        .persist_to(&dir)
        .unwrap();
    for (i, op) in ops.iter().enumerate() {
        match op {
            MutationRecord::Ingest(p) => durable.ingest_unscored(p).unwrap(),
            MutationRecord::Remove(ids) => durable.remove_unscored(ids).unwrap(),
            MutationRecord::Update(u) => durable.update_unscored(u).unwrap(),
        };
        if i == ops.len() / 2 {
            durable.compact().unwrap();
        } else if i % 5 == 4 {
            durable.checkpoint().unwrap();
        }
    }
    let expected_seq = durable.wal_sequence();
    let expected_digest = digest(durable.service());
    drop(durable);

    let recovered = DurableShardedService::recover_from(&dir, TokenKeys, 2).unwrap();
    assert_eq!(recovered.wal_sequence(), expected_seq);
    assert_eq!(digest(recovered.service()), expected_digest);
    let report = recovered.recovery_report().unwrap();
    assert_eq!(report.generations_tried, 1, "clean recovery expected");
    assert!(!report.repair_checkpoint);
    assert!(report.records_replayed > 0, "the WAL tail must replay");

    // The recovered service is the same logical stream as the oracle: the
    // blocks, counters and per-entity candidates all match.
    let reference = oracle(&ds, &ops, 3);
    assert_eq!(digest(recovered.service()), digest(&reference));
    for e in 0..reference.num_entities() {
        let entity = EntityId(e as u32);
        assert_eq!(
            recovered.index().candidates_of(entity),
            reference.index().candidates_of(entity),
            "candidates diverged for entity {e}"
        );
    }
}

#[test]
fn recovered_service_keeps_accepting_and_checkpointing() {
    let ds = dataset();
    let ops = script(&ds);
    let half = ops.len() / 2;
    let dir = scratch("recovery_continues");

    let mut durable = ShardedStreamingService::new(config(&ds, 1), TokenKeys, 2)
        .unwrap()
        .persist_to(&dir)
        .unwrap();
    for op in &ops[..half] {
        match op {
            MutationRecord::Ingest(p) => durable.ingest_unscored(p).unwrap(),
            MutationRecord::Remove(ids) => durable.remove_unscored(ids).unwrap(),
            MutationRecord::Update(u) => durable.update_unscored(u).unwrap(),
        };
    }
    drop(durable);

    // Recover, finish the script durably (checkpoint half-way), recover
    // again: the end state equals the oracle's.
    let mut recovered = DurableShardedService::recover_from(&dir, TokenKeys, 1).unwrap();
    assert_eq!(recovered.wal_sequence(), half as u64);
    for (i, op) in ops[half..].iter().enumerate() {
        match op {
            MutationRecord::Ingest(p) => recovered.ingest_unscored(p).unwrap(),
            MutationRecord::Remove(ids) => recovered.remove_unscored(ids).unwrap(),
            MutationRecord::Update(u) => recovered.update_unscored(u).unwrap(),
        };
        if i == 2 {
            recovered.checkpoint().unwrap();
        }
    }
    let generation = recovered.generation();
    drop(recovered);

    let twice = DurableShardedService::recover_from(&dir, TokenKeys, 2).unwrap();
    assert_eq!(twice.wal_sequence(), ops.len() as u64);
    assert_eq!(twice.generation(), generation);
    assert_eq!(digest(twice.service()), digest(&oracle(&ds, &ops, 2)));
}

#[test]
fn group_commit_coalesces_fsyncs_below_one_per_batch() {
    let ds = dataset();
    let num_shards = 4usize;
    let dir_grouped = scratch("group_commit_grouped");
    let dir_single = scratch("group_commit_single");

    // Eight single-profile ingest batches — a queue of mutations waiting
    // on durability.
    let ops: Vec<MutationRecord> = ds.profiles[..8]
        .iter()
        .map(|p| MutationRecord::Ingest(vec![p.clone()]))
        .collect();

    let mut grouped = ShardedStreamingService::new(config(&ds, 1), TokenKeys, num_shards)
        .unwrap()
        .persist_to(&dir_grouped)
        .unwrap();
    let syncs_before = grouped.wal_syncs();
    let deltas = grouped.apply_group_unscored(&ops).unwrap();
    assert_eq!(deltas.len(), ops.len());
    let group_syncs = grouped.wal_syncs() - syncs_before;

    let mut single = ShardedStreamingService::new(config(&ds, 1), TokenKeys, num_shards)
        .unwrap()
        .persist_to(&dir_single)
        .unwrap();
    let syncs_before = single.wal_syncs();
    let mut single_deltas = Vec::new();
    for op in &ops {
        match op {
            MutationRecord::Ingest(p) => single_deltas.push(single.ingest_unscored(p).unwrap()),
            _ => unreachable!(),
        }
    }
    let single_syncs = single.wal_syncs() - syncs_before;

    // One fsync per touched WAL for the whole group vs one per batch.
    assert_eq!(group_syncs, num_shards as u64);
    assert_eq!(single_syncs, ops.len() as u64);
    assert!(
        (group_syncs as f64) / (ops.len() as f64) < 1.0,
        "group commit must cost less than one fsync per batch"
    );

    // Group application is just an acknowledgement optimisation: deltas
    // and end state are identical to individual applies.
    for (a, b) in deltas.iter().zip(&single_deltas) {
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.retracted, b.retracted);
        assert_eq!(a.touched_keys, b.touched_keys);
    }
    assert_eq!(digest(grouped.service()), digest(single.service()));
    assert_eq!(grouped.wal_sequence(), single.wal_sequence());

    // Both recover to the same state.
    drop(grouped);
    let recovered = DurableShardedService::recover_from(&dir_grouped, TokenKeys, 1).unwrap();
    assert_eq!(recovered.wal_sequence(), ops.len() as u64);
    assert_eq!(digest(recovered.service()), digest(single.service()));
}

#[test]
fn group_validation_rejects_cross_batch_conflicts() {
    let ds = dataset();
    let dir = scratch("group_validation");
    let mut durable = ShardedStreamingService::new(config(&ds, 1), TokenKeys, 2)
        .unwrap()
        .persist_to(&dir)
        .unwrap();
    durable.ingest_unscored(&ds.profiles[..4]).unwrap();

    // Removing an entity twice across two batches of one group must panic
    // before anything reaches a WAL.
    let seq_before = durable.wal_sequence();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = durable.apply_group_unscored(&[
            MutationRecord::Remove(vec![EntityId(1)]),
            MutationRecord::Remove(vec![EntityId(1)]),
        ]);
    }));
    assert!(result.is_err(), "conflicting group must be rejected");
    assert_eq!(durable.wal_sequence(), seq_before, "nothing may be logged");

    // A group whose later batch depends on an earlier one is legal:
    // ingest then remove the just-ingested entity.
    let deltas = durable
        .apply_group_unscored(&[
            MutationRecord::Ingest(vec![ds.profiles[4].clone()]),
            MutationRecord::Remove(vec![EntityId(4)]),
        ])
        .unwrap();
    assert_eq!(deltas.len(), 2);
    assert_eq!(durable.num_alive(), 4);
}

#[test]
fn epoch_readers_track_durable_mutations() {
    let ds = dataset();
    let dir = scratch("durable_epoch_readers");
    let mut durable = ShardedStreamingService::new(config(&ds, 1), TokenKeys, 2)
        .unwrap()
        .persist_to(&dir)
        .unwrap();
    let reader = durable.reader();
    let before = reader.load();
    durable.ingest_unscored(&ds.profiles[..6]).unwrap();
    let after = reader.load();
    assert_eq!(before.num_entities, 0);
    assert_eq!(after.num_entities, 6);
    assert!(after.last_delta.is_some());
    durable.compact().unwrap();
    assert!(reader.load().last_delta.is_none());
}
