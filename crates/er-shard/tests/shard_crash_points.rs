//! ALICE-style crash-point exploration for the **sharded** durable
//! service: the trace is run once through a counting VFS to enumerate
//! every filesystem operation — WAL appends and group commits across all
//! per-shard logs, router + shard snapshot writes, WAL creations, the
//! manifest flip, retention removals — then re-run once per operation
//! index with a `FaultVfs` that crashes at that op.
//!
//! For every crash point, recovery must land **all shards on the same
//! committed batch boundary**: a sequence `j` with
//! `j_min <= j <= j_min + G` (where `j_min` counts acknowledged mutations
//! and `G` is the largest group size — records of an unacknowledged group
//! may be durable on some WALs and lost on others), whose state is
//! bit-identical to the reference prefix after exactly `j` mutations.  A
//! mixed generation set (one shard recovering to a different boundary
//! than its siblings) surfaces as a `Corrupt` error, which the
//! exploration treats as an outright failure.  Re-applying the remaining
//! mutations must converge on the reference final state; recovery may
//! fail only if the crash predates the very first commit.

use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use er_blocking::{KeyGenerator, QGramKeys, SuffixKeys, TokenKeys};
use er_core::{Dataset, EntityId, EntityProfile, PersistError, PersistResult};
use er_datasets::{
    dirty_catalog, generate_catalog_dataset, generate_dirty, CatalogOptions, DatasetName,
};
use er_features::FeatureSet;
use er_persist::{manifest_path, FaultVfs, RetryPolicy, Vfs};
use er_shard::{DurableShardedService, ShardedStreamingService};
use er_stream::{MutationRecord, StreamingConfig};

/// Largest group size in the trace — the write-ahead window of a crash.
const MAX_GROUP: usize = 2;

fn scratch(test: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("shard-crash-{test}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(dataset: &Dataset, threads: usize) -> StreamingConfig {
    StreamingConfig {
        feature_set: FeatureSet::all_schemes(),
        threads,
        ..StreamingConfig::for_dataset(dataset)
    }
}

/// One logical mutation of the explored trace.
#[derive(Debug, Clone)]
enum Mutation {
    Ingest(Range<usize>),
    Remove(Vec<EntityId>),
    Update(Vec<(EntityId, EntityProfile)>),
}

impl Mutation {
    fn record(&self, dataset: &Dataset) -> MutationRecord {
        match self {
            Mutation::Ingest(range) => {
                MutationRecord::Ingest(dataset.profiles[range.clone()].to_vec())
            }
            Mutation::Remove(ids) => MutationRecord::Remove(ids.clone()),
            Mutation::Update(updates) => MutationRecord::Update(updates.clone()),
        }
    }
}

/// One step of the trace: a single logged mutation, a group commit of
/// several, or a cross-shard checkpoint.
#[derive(Debug, Clone)]
enum Step {
    Single(Mutation),
    Group(Vec<Mutation>),
    Checkpoint,
}

/// A short deterministic trace interleaving every mutation kind, single
/// and group-committed appends, and two checkpoints — so crash points
/// cover striped WAL appends, multi-WAL group commits, router and
/// per-shard snapshot writes, per-shard WAL creation, the manifest flip
/// and retention removals.
fn build_trace(dataset: &Dataset) -> Vec<Step> {
    let n = dataset.num_entities();
    assert!(n >= 38, "trace needs at least 38 profiles, got {n}");
    vec![
        Step::Group(vec![Mutation::Ingest(0..10), Mutation::Ingest(10..16)]),
        Step::Single(Mutation::Remove(vec![EntityId(3), EntityId(11)])),
        Step::Checkpoint,
        Step::Group(vec![
            Mutation::Ingest(16..24),
            Mutation::Update(vec![
                (EntityId(5), dataset.profiles[30].clone()),
                (EntityId(12), dataset.profiles[1].clone()),
            ]),
        ]),
        Step::Checkpoint,
        Step::Single(Mutation::Ingest(24..32)),
        Step::Group(vec![
            Mutation::Remove(vec![EntityId(20)]),
            Mutation::Ingest(32..38),
        ]),
    ]
}

fn mutations(trace: &[Step]) -> Vec<Mutation> {
    let mut flat = Vec::new();
    for step in trace {
        match step {
            Step::Single(m) => flat.push(m.clone()),
            Step::Group(group) => flat.extend(group.iter().cloned()),
            Step::Checkpoint => {}
        }
    }
    flat
}

/// Digest of the *logical* state: the materialised block collection plus
/// the liveness counters.
fn state_digest(
    view: &er_blocking::CsrBlockCollection,
    num_entities: usize,
    num_alive: usize,
) -> u64 {
    let blocks = view.to_block_collection().blocks;
    er_core::crc64(format!("{blocks:?}|{num_entities}|{num_alive}").as_bytes())
}

/// The reference run: digests after 0, 1, ..., M mutations through an
/// in-memory sharded service, never crashed, never persisted.
fn reference_digests<G: KeyGenerator + Clone>(
    dataset: &Dataset,
    generator: G,
    mutations: &[Mutation],
    num_shards: usize,
    threads: usize,
) -> Vec<u64> {
    let mut service =
        ShardedStreamingService::new(config(dataset, threads), generator, num_shards).unwrap();
    let mut digests = vec![state_digest(
        &service.view(),
        service.num_entities(),
        service.num_alive(),
    )];
    for mutation in mutations {
        service.apply(&mutation.record(dataset), false);
        digests.push(state_digest(
            &service.view(),
            service.num_entities(),
            service.num_alive(),
        ));
    }
    digests
}

fn apply_durable<G: KeyGenerator>(
    durable: &mut DurableShardedService<G>,
    dataset: &Dataset,
    mutation: &Mutation,
) -> PersistResult<()> {
    match mutation {
        Mutation::Ingest(range) => durable.ingest_unscored(&dataset.profiles[range.clone()])?,
        Mutation::Remove(ids) => durable.remove_unscored(ids)?,
        Mutation::Update(updates) => durable.update_unscored(updates)?,
    };
    Ok(())
}

/// Runs the full trace through a durable sharded service on `vfs`.
/// Returns the number of *acknowledged* mutations (a group acknowledges
/// all of its batches at once, or none) and the first error, if any.
fn run_trace<G: KeyGenerator + Clone>(
    dataset: &Dataset,
    generator: G,
    trace: &[Step],
    vfs: Arc<dyn Vfs>,
    dir: &Path,
    num_shards: usize,
    threads: usize,
) -> (usize, Option<PersistError>) {
    let service =
        match ShardedStreamingService::new(config(dataset, threads), generator, num_shards) {
            Ok(service) => service,
            Err(err) => return (0, Some(err)),
        };
    let mut durable = match service.persist_to_with(dir, vfs, RetryPolicy::default_write()) {
        Ok(durable) => durable,
        Err(err) => return (0, Some(err)),
    };
    let mut acknowledged = 0usize;
    for step in trace {
        let result = match step {
            Step::Single(mutation) => match apply_durable(&mut durable, dataset, mutation) {
                Ok(()) => {
                    acknowledged += 1;
                    Ok(())
                }
                Err(err) => Err(err),
            },
            Step::Group(group) => {
                let records: Vec<MutationRecord> =
                    group.iter().map(|m| m.record(dataset)).collect();
                match durable.apply_group_unscored(&records) {
                    Ok(_) => {
                        acknowledged += group.len();
                        Ok(())
                    }
                    Err(err) => Err(err),
                }
            }
            Step::Checkpoint => durable.checkpoint(),
        };
        if let Err(err) = result {
            return (acknowledged, Some(err));
        }
    }
    (acknowledged, None)
}

/// The exploration: enumerate the trace's ops, crash at every single one,
/// recover, audit.
fn explore<G: KeyGenerator + Clone>(dataset: &Dataset, generator: G, num_shards: usize, tag: &str) {
    let threads = 2;
    let trace = build_trace(dataset);
    let all_mutations = mutations(&trace);
    let digests = reference_digests(
        dataset,
        generator.clone(),
        &all_mutations,
        num_shards,
        threads,
    );
    let final_digest = *digests.last().unwrap();

    // Counting run: how many VFS ops does the whole trace perform?
    let seed = er_core::derive_seed(0x54a4_d000, er_core::crc64(tag.as_bytes()));
    let counting = FaultVfs::counting(seed);
    let dir = scratch(&format!("{tag}-count"));
    let (acknowledged, err) = run_trace(
        dataset,
        generator.clone(),
        &trace,
        counting.clone(),
        &dir,
        num_shards,
        threads,
    );
    assert!(err.is_none(), "counting run failed: {err:?}");
    assert_eq!(acknowledged, all_mutations.len());
    let total_ops = counting.op_count();
    assert!(
        total_ops > 20 * num_shards as u64,
        "{tag}: suspiciously few ops ({total_ops}) — is the VFS seam wired through?"
    );

    for crash_at in 0..total_ops {
        let dir = scratch(&format!("{tag}-{crash_at}"));
        let vfs = FaultVfs::crash_at(seed, crash_at);
        let (j_min, err) = run_trace(
            dataset,
            generator.clone(),
            &trace,
            vfs.clone(),
            &dir,
            num_shards,
            threads,
        );
        assert!(
            err.is_some() || !vfs.has_crashed(),
            "{tag} crash at op {crash_at}: the crash was swallowed"
        );

        match DurableShardedService::recover_from(&dir, generator.clone(), threads) {
            Ok(mut durable) => {
                let j = durable.wal_sequence() as usize;
                assert!(
                    j_min <= j && j <= j_min + MAX_GROUP,
                    "{tag} crash at op {crash_at}: {j_min} mutations acknowledged \
                     but recovery landed on sequence {j}"
                );
                assert_eq!(
                    state_digest(&durable.view(), durable.num_entities(), durable.num_alive()),
                    digests[j],
                    "{tag} crash at op {crash_at}: recovered state is not the \
                     reference prefix state at sequence {j}"
                );
                // The run continues from where the crash left off and
                // converges on the reference final state.
                for mutation in &all_mutations[j..] {
                    apply_durable(&mut durable, dataset, mutation)
                        .unwrap_or_else(|e| panic!("{tag} crash at op {crash_at}: {e:?}"));
                }
                assert_eq!(
                    state_digest(&durable.view(), durable.num_entities(), durable.num_alive()),
                    final_digest,
                    "{tag} crash at op {crash_at}: resumed run diverged"
                );
            }
            Err(PersistError::Io { .. }) => {
                // Unrecoverable is legal only before the very first commit:
                // nothing was ever acknowledged and no manifest exists.
                assert_eq!(
                    j_min, 0,
                    "{tag} crash at op {crash_at}: {j_min} acknowledged mutations lost"
                );
                assert!(
                    !manifest_path(&dir).exists(),
                    "{tag} crash at op {crash_at}: manifest exists but recovery failed"
                );
            }
            // `Corrupt` here would mean the shards recovered to *different*
            // batch boundaries — the exact failure the cross-shard manifest
            // exists to prevent.
            Err(other) => panic!("{tag} crash at op {crash_at}: {other:?}"),
        }
    }
}

fn clean_clean_dataset() -> Dataset {
    generate_catalog_dataset(DatasetName::AbtBuy, &CatalogOptions::tiny()).unwrap()
}

fn dirty_dataset() -> Dataset {
    generate_dirty(&dirty_catalog(&CatalogOptions::tiny())[0]).unwrap()
}

#[test]
fn every_crash_point_recovers_clean_clean_token_keys_three_shards() {
    explore(&clean_clean_dataset(), TokenKeys, 3, "cc-token-3");
}

#[test]
fn every_crash_point_recovers_dirty_suffix_keys_two_shards() {
    explore(
        &dirty_dataset(),
        SuffixKeys::new(3, 12),
        2,
        "dirty-suffix-2",
    );
}

#[test]
fn every_crash_point_recovers_dirty_qgram_keys_four_shards() {
    explore(&dirty_dataset(), QGramKeys::new(3), 4, "dirty-qgram-4");
}
