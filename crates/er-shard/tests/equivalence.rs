//! Sharded-service equivalence: any shard count × any thread count is
//! bit-identical to the single-shard, single-thread oracle.
//!
//! Random mutation traces (ingest / remove / update batches with
//! compactions interleaved) are replayed through
//! `ShardedStreamingService` at shards 1/2/4 × threads 1/2/4 and every
//! emitted `DeltaBatch` — pairs, feature rows, probabilities, re-scores,
//! retractions, touched keys, mutated entities — must equal the oracle's
//! field for field.  Compactions must equal the oracle's compaction, the
//! final state must equal a one-shot batch build of the surviving corpus,
//! and per-entity LCP candidate lists must match the batch candidates.

use er_blocking::{
    build_blocks, BlockStats, CandidatePairs, KeyGenerator, QGramKeys, SuffixKeys, TokenKeys,
};
use er_core::{Dataset, EntityId, EntityProfile, GroundTruth};
use er_datasets::{
    dirty_catalog, generate_catalog_dataset, generate_dirty, CatalogOptions, DatasetName,
};
use er_features::FeatureSet;
use er_learn::ProbabilisticClassifier;
use er_shard::ShardedStreamingService;
use er_stream::{BlockIndex, DeltaBatch, StreamingConfig, StreamingMetaBlocker};
use rand::Rng;

/// A fixed linear model: deterministic probabilities without training.
struct FixedModel;

impl ProbabilisticClassifier for FixedModel {
    fn probability(&self, features: &[f64]) -> f64 {
        let z: f64 = features
            .iter()
            .enumerate()
            .map(|(i, &x)| (0.35 + 0.2 * i as f64) * x)
            .sum::<f64>()
            - 1.0;
        1.0 / (1.0 + (-z).exp())
    }
}

fn clean_clean_dataset() -> Dataset {
    generate_catalog_dataset(DatasetName::AbtBuy, &CatalogOptions::tiny()).unwrap()
}

fn dirty_dataset() -> Dataset {
    generate_dirty(&dirty_catalog(&CatalogOptions::tiny())[0]).unwrap()
}

/// One step of a mutation trace.
#[derive(Debug, Clone)]
enum Op {
    Ingest(usize),
    Remove(Vec<EntityId>),
    Update(Vec<(EntityId, EntityProfile)>),
    Compact,
}

/// Generates a deterministic trace interleaving ingests, removals,
/// updates and compactions (same shape as er-stream's mutation suite).
fn generate_trace(dataset: &Dataset, seed: u64) -> Vec<Op> {
    let n = dataset.num_entities();
    let mut rng = er_core::seeded_rng(seed);
    let mut ops = Vec::new();
    let mut next = 0usize;
    let mut alive: Vec<u32> = Vec::new();
    let mut step = 0usize;
    let mut mutation_tail = 6usize;
    while next < n || mutation_tail > 0 {
        step += 1;
        let choice = if next < n {
            rng.gen_range(0..5)
        } else {
            mutation_tail -= 1;
            rng.gen_range(3..5)
        };
        match choice {
            0..=2 => {
                let take = rng.gen_range(1..=(n - next).min(29));
                alive.extend((next..next + take).map(|e| e as u32));
                ops.push(Op::Ingest(take));
                next += take;
            }
            3 => {
                if alive.len() < 4 {
                    continue;
                }
                let count = rng.gen_range(1..=3usize.min(alive.len() - 1));
                let mut victims = Vec::with_capacity(count);
                for _ in 0..count {
                    let at = rng.gen_range(0..alive.len());
                    victims.push(EntityId(alive.swap_remove(at)));
                }
                ops.push(Op::Remove(victims));
            }
            _ => {
                if alive.is_empty() {
                    continue;
                }
                let count = rng.gen_range(1..=3usize.min(alive.len()));
                let mut chosen: Vec<u32> = Vec::new();
                for _ in 0..count {
                    let e = alive[rng.gen_range(0..alive.len())];
                    if !chosen.contains(&e) {
                        chosen.push(e);
                    }
                }
                let updates = chosen
                    .into_iter()
                    .map(|e| {
                        let donor = rng.gen_range(0..n);
                        (EntityId(e), dataset.profiles[donor].clone())
                    })
                    .collect();
                ops.push(Op::Update(updates));
            }
        }
        if step.is_multiple_of(3) {
            ops.push(Op::Compact);
        }
    }
    ops.push(Op::Compact);
    ops
}

/// Field-for-field equality of two delta batches (`DeltaBatch` does not
/// derive `PartialEq` on purpose — equivalence must be explicit about
/// what it covers).
#[track_caller]
fn assert_delta_eq(expected: &DeltaBatch, got: &DeltaBatch, what: &str) {
    assert_eq!(expected.epoch, got.epoch, "{what}: epoch");
    assert_eq!(expected.first_id, got.first_id, "{what}: first_id");
    assert_eq!(
        expected.num_ingested, got.num_ingested,
        "{what}: num_ingested"
    );
    assert_eq!(expected.num_removed, got.num_removed, "{what}: num_removed");
    assert_eq!(expected.num_updated, got.num_updated, "{what}: num_updated");
    assert_eq!(
        expected.feature_width, got.feature_width,
        "{what}: feature_width"
    );
    assert_eq!(expected.pairs, got.pairs, "{what}: pairs");
    assert_eq!(expected.features, got.features, "{what}: features");
    assert_eq!(
        expected.probabilities, got.probabilities,
        "{what}: probabilities"
    );
    assert_eq!(
        expected.rescored_pairs, got.rescored_pairs,
        "{what}: rescored_pairs"
    );
    assert_eq!(
        expected.rescored_features, got.rescored_features,
        "{what}: rescored_features"
    );
    assert_eq!(
        expected.rescored_probabilities, got.rescored_probabilities,
        "{what}: rescored_probabilities"
    );
    assert_eq!(expected.retracted, got.retracted, "{what}: retracted");
    assert_eq!(
        expected.touched_keys, got.touched_keys,
        "{what}: touched_keys"
    );
    assert_eq!(
        expected.mutated_entities, got.mutated_entities,
        "{what}: mutated_entities"
    );
}

/// What the oracle recorded at each step: a delta per mutation, blocks
/// per compaction.
enum Recorded {
    Delta(Box<DeltaBatch>),
    Compacted(Vec<er_blocking::Block>),
}

fn config(dataset: &Dataset, threads: usize) -> StreamingConfig {
    StreamingConfig {
        feature_set: FeatureSet::all_schemes(),
        threads,
        ..StreamingConfig::for_dataset(dataset)
    }
}

/// Replays the trace through the single-shard blocker (threads = 1),
/// recording every emission, and returns the record plus the surviving
/// reference corpus.
fn oracle_run<G: KeyGenerator + Clone>(
    dataset: &Dataset,
    generator: G,
    ops: &[Op],
) -> (Vec<Recorded>, Vec<EntityProfile>) {
    let mut blocker =
        StreamingMetaBlocker::new(config(dataset, 1), generator).with_model(Box::new(FixedModel));
    let mut current: Vec<EntityProfile> = Vec::new();
    let mut next = 0usize;
    let mut recorded = Vec::new();
    for op in ops {
        match op {
            Op::Ingest(take) => {
                let batch = &dataset.profiles[next..next + take];
                current.extend_from_slice(batch);
                next += take;
                recorded.push(Recorded::Delta(Box::new(blocker.ingest(batch))));
            }
            Op::Remove(ids) => {
                for &e in ids {
                    current[e.index()] = EntityProfile::new(current[e.index()].external_id.clone());
                }
                recorded.push(Recorded::Delta(Box::new(blocker.remove(ids))));
            }
            Op::Update(updates) => {
                for (e, profile) in updates {
                    current[e.index()] = profile.clone();
                }
                recorded.push(Recorded::Delta(Box::new(blocker.update(updates))));
            }
            Op::Compact => {
                recorded.push(Recorded::Compacted(
                    blocker.compact().to_block_collection().blocks,
                ));
            }
        }
    }
    (recorded, current)
}

/// Replays the trace through a sharded service and asserts every step —
/// and the final state — against the oracle's record.
fn sharded_run<G: KeyGenerator + Clone>(
    dataset: &Dataset,
    generator: G,
    ops: &[Op],
    recorded: &[Recorded],
    survivors: &[EntityProfile],
    num_shards: usize,
    threads: usize,
) {
    let tag = format!("{}: shards={num_shards} threads={threads}", dataset.name);
    let mut service =
        ShardedStreamingService::new(config(dataset, threads), generator.clone(), num_shards)
            .unwrap()
            .with_model(Box::new(FixedModel));
    let reader = service.reader();
    let mut next = 0usize;
    assert_eq!(ops.len(), recorded.len());
    for (op, expected) in ops.iter().zip(recorded) {
        match (op, expected) {
            (Op::Ingest(take), Recorded::Delta(expected)) => {
                let batch = &dataset.profiles[next..next + take];
                next += take;
                let got = service.ingest(batch);
                assert_delta_eq(expected, &got, &tag);
            }
            (Op::Remove(ids), Recorded::Delta(expected)) => {
                let got = service.remove(ids);
                assert_delta_eq(expected, &got, &tag);
            }
            (Op::Update(updates), Recorded::Delta(expected)) => {
                let got = service.update(updates);
                assert_delta_eq(expected, &got, &tag);
            }
            (Op::Compact, Recorded::Compacted(expected)) => {
                let got = service.compact();
                assert_eq!(
                    &got.to_block_collection().blocks,
                    expected,
                    "{tag}: compaction diverged"
                );
            }
            _ => unreachable!("trace and record disagree on op kinds"),
        }
        // Every step published a view a concurrent reader can see.
        assert_eq!(reader.load().num_entities, service.num_entities(), "{tag}");
    }

    // Final state equals a one-shot batch build of the surviving corpus.
    let reference = Dataset {
        name: dataset.name.clone(),
        kind: dataset.kind,
        profiles: survivors.to_vec(),
        split: dataset.split.min(survivors.len()),
        ground_truth: GroundTruth::from_pairs(Vec::new()),
    };
    let streamed = service.compact();
    let batch = build_blocks(&reference, &generator, threads);
    assert_eq!(
        streamed.to_block_collection().blocks,
        batch.to_block_collection().blocks,
        "{tag}: final state diverged from the batch build"
    );
    let batch_stats = BlockStats::from_csr(&batch);
    let batch_candidates = CandidatePairs::from_stats(&batch_stats, threads);
    for e in 0..dataset.num_entities() {
        let entity = EntityId(e as u32);
        assert_eq!(
            service.index().candidates_of(entity),
            batch_candidates.candidates_of(entity),
            "{tag}: LCP mismatch for entity {e}"
        );
    }
}

/// The full matrix for one dataset and generator: oracle once, then
/// shards 1/2/4 × threads 1/2/4.
fn run_matrix<G: KeyGenerator + Clone>(dataset: &Dataset, generator: G, seed: u64) {
    let ops = generate_trace(dataset, seed);
    let mutations = ops
        .iter()
        .filter(|op| matches!(op, Op::Remove(_) | Op::Update(_)))
        .count();
    assert!(mutations >= 4, "trace exercised too few mutations");
    let (recorded, survivors) = oracle_run(dataset, generator.clone(), &ops);
    for &num_shards in &[1usize, 2, 4] {
        for &threads in &[1usize, 2, 4] {
            sharded_run(
                dataset,
                generator.clone(),
                &ops,
                &recorded,
                &survivors,
                num_shards,
                threads,
            );
        }
    }
}

#[test]
fn clean_clean_token_traces_are_shard_count_invariant() {
    run_matrix(&clean_clean_dataset(), TokenKeys, 0x5aa5_0001);
}

#[test]
fn dirty_token_traces_are_shard_count_invariant() {
    run_matrix(&dirty_dataset(), TokenKeys, 0x5aa5_0002);
}

#[test]
fn clean_clean_qgram_traces_are_shard_count_invariant() {
    run_matrix(&clean_clean_dataset(), QGramKeys::new(3), 0x5aa5_0003);
}

#[test]
fn dirty_qgram_traces_are_shard_count_invariant() {
    run_matrix(&dirty_dataset(), QGramKeys::new(3), 0x5aa5_0004);
}

#[test]
fn clean_clean_suffix_traces_are_shard_count_invariant() {
    // The tight suffix cap makes blocks cross the cap in both directions
    // mid-stream, so retraction/revival paths cross shard boundaries too.
    run_matrix(&clean_clean_dataset(), SuffixKeys::new(3, 12), 0x5aa5_0005);
}

#[test]
fn dirty_suffix_traces_are_shard_count_invariant() {
    run_matrix(&dirty_dataset(), SuffixKeys::new(3, 12), 0x5aa5_0006);
}
