//! Shared setup for the benchmark harness.
//!
//! Every bench target reproduces one table or figure of the paper.  They all
//! read their scale from environment variables so the default `cargo bench`
//! run finishes in minutes on a laptop while still exercising every code path;
//! raise the variables to approach the paper's original dataset sizes.
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `GSMB_SCALE` | multiplier on the Clean-Clean catalog entity counts | `0.5` |
//! | `GSMB_DIRTY_SCALE` | multiplier on the Dirty scalability dataset sizes | `0.02` |
//! | `GSMB_REPS` | repetitions averaged per experiment | `3` |
//! | `GSMB_FULL_SWEEP` | set to `1` to run the full 255-combination feature sweep | unset |
//! | `GSMB_SWEEP_DATASETS` | number of datasets used in the feature sweep | `4` |

use er_datasets::{generate_catalog_dataset, CatalogOptions, DatasetName};
use er_eval::experiment::PreparedDataset;

/// Reads an `f64` environment variable with a default.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a `usize` environment variable with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// True if the named flag variable is set to a truthy value.
pub fn env_flag(name: &str) -> bool {
    matches!(
        std::env::var(name).ok().as_deref(),
        Some("1") | Some("true") | Some("yes")
    )
}

/// The catalog options used by the bench harness.
pub fn bench_catalog_options() -> CatalogOptions {
    CatalogOptions {
        scale: env_f64("GSMB_SCALE", 0.5),
        dirty_scale: env_f64("GSMB_DIRTY_SCALE", 0.02),
        ..CatalogOptions::default()
    }
}

/// Number of repetitions averaged per experiment.
pub fn bench_repetitions() -> usize {
    env_usize("GSMB_REPS", 3).max(1)
}

/// Generates and prepares (blocks) one catalog dataset.
pub fn prepare(name: DatasetName) -> PreparedDataset {
    let options = bench_catalog_options();
    let dataset = generate_catalog_dataset(name, &options)
        .unwrap_or_else(|e| panic!("failed to generate {name}: {e}"));
    PreparedDataset::prepare(dataset).unwrap_or_else(|e| panic!("failed to prepare {name}: {e}"))
}

/// Prepares every catalog dataset, in Table 1 order.
pub fn prepare_all() -> Vec<PreparedDataset> {
    DatasetName::all().into_iter().map(prepare).collect()
}

/// Prepares the first `count` catalog datasets (the smaller ones), used by
/// the expensive sweeps.
pub fn prepare_subset(count: usize) -> Vec<PreparedDataset> {
    DatasetName::all()
        .into_iter()
        .take(count)
        .map(prepare)
        .collect()
}

/// Prints a section header so the bench output reads like the paper.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Where `BENCH_*.json` artifacts go, if requested: set `GSMB_BENCH_JSON`
/// to a directory, or to `1`/`true`/`yes` for the repository root.  Unset
/// means no artifact is written.
pub fn bench_json_dir() -> Option<std::path::PathBuf> {
    let value = std::env::var("GSMB_BENCH_JSON").ok()?;
    Some(match value.as_str() {
        "1" | "true" | "yes" => std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
        directory => std::path::PathBuf::from(directory),
    })
}

/// Writes one `BENCH_*` artifact (JSON, Prometheus text, ...) if
/// `GSMB_BENCH_JSON` is set.  Returns the path written to.
pub fn write_bench_artifact(file_name: &str, contents: &str) -> Option<std::path::PathBuf> {
    let path = bench_json_dir()?.join(file_name);
    std::fs::write(&path, contents).unwrap_or_else(|e| panic!("failed to write {path:?}: {e}"));
    println!("\nbench artifact written to {}", path.display());
    Some(path)
}

/// Writes one `BENCH_*.json` artifact (hand-rolled JSON — the workspace's
/// serde shims are no-ops by design) if `GSMB_BENCH_JSON` is set.  Returns
/// the path written to.
pub fn write_bench_json(file_name: &str, json: &str) -> Option<std::path::PathBuf> {
    write_bench_artifact(file_name, json)
}

/// Writes the current er-obs registry as a `BENCH_*.prom` Prometheus text
/// artifact next to the JSON ones, if `GSMB_BENCH_JSON` is set.
pub fn write_bench_prometheus(file_name: &str) -> Option<std::path::PathBuf> {
    write_bench_artifact(file_name, &er_obs::snapshot().render_prometheus())
}

/// The process-wide peak-RSS gauge every bench routes `VmHWM` samples
/// through, so memory tracking is one more registry consumer rather than a
/// bespoke side channel.
pub fn process_rss_gauge() -> &'static er_obs::Gauge {
    static GAUGE: std::sync::OnceLock<&'static er_obs::Gauge> = std::sync::OnceLock::new();
    GAUGE.get_or_init(|| {
        er_obs::gauge(
            "process_peak_rss_bytes_hwm",
            "Peak resident-set size of the process (VmHWM), bytes",
        )
    })
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where that interface does not exist
/// (non-Linux).  Every sample is also published to
/// [`process_rss_gauge`], so the value shows up in Prometheus snapshots
/// alongside the pipeline metrics.  Reported in every bench JSON artifact
/// so memory growth is tracked alongside throughput across PRs.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    let bytes = kb * 1024;
    process_rss_gauge().record_max(bytes);
    Some(bytes)
}

/// `peak_rss_bytes` rendered for a JSON field: the byte count, or `null`.
pub fn peak_rss_json() -> String {
    match peak_rss_bytes() {
        Some(bytes) => bytes.to_string(),
        None => "null".to_string(),
    }
}

/// Measures `workload` with the er-obs layer disabled and enabled
/// (interleaved best-of-`rounds`, so clock drift and cache warmth cancel)
/// and asserts the enabled path stays within 2% of the disabled one, plus
/// a small absolute floor for sub-millisecond workloads.  Leaves the layer
/// enabled.  Returns `(disabled_s, enabled_s)`.
pub fn assert_obs_overhead(label: &str, rounds: usize, mut workload: impl FnMut()) -> (f64, f64) {
    let time_once = |workload: &mut dyn FnMut()| -> f64 {
        let start = std::time::Instant::now();
        workload();
        start.elapsed().as_secs_f64()
    };
    // Warm up both arms before timing anything.
    er_obs::set_enabled(false);
    workload();
    er_obs::set_enabled(true);
    workload();

    let mut disabled_s = f64::INFINITY;
    let mut enabled_s = f64::INFINITY;
    for _ in 0..rounds.max(3) {
        er_obs::set_enabled(false);
        disabled_s = disabled_s.min(time_once(&mut workload));
        er_obs::set_enabled(true);
        enabled_s = enabled_s.min(time_once(&mut workload));
    }
    er_obs::set_enabled(true);

    let overhead = (enabled_s / disabled_s - 1.0) * 100.0;
    println!("obs overhead gate [{label}]: disabled {disabled_s:.4}s, enabled {enabled_s:.4}s ({overhead:+.2}%)");
    // 2% relative, with a 2ms absolute floor: best-of timing still jitters
    // by more than 2% on sub-100ms workloads, and an absolute floor keeps
    // the gate about instrumentation cost rather than scheduler noise.
    let budget = (disabled_s * 0.02).max(0.002);
    assert!(
        enabled_s <= disabled_s + budget,
        "er-obs overhead gate failed for {label}: disabled {disabled_s:.4}s vs enabled \
         {enabled_s:.4}s exceeds the 2% budget ({budget:.4}s)"
    );
    (disabled_s, enabled_s)
}

/// One `BENCH_*.json` artifact: the shared shape every micro/figure bench
/// emits — `bench` name, scalar fields in insertion order, a
/// `peak_rss_bytes` sample routed through [`process_rss_gauge`], then any
/// row arrays.  Replaces the per-bench hand-assembled footers.
pub mod report {
    /// Builder for the flat `BENCH_*.json` document.
    pub struct Report {
        bench: String,
        fields: Vec<(String, String)>,
        sections: Vec<(String, Vec<String>)>,
    }

    impl Report {
        /// A report for the bench called `bench`.
        pub fn new(bench: &str) -> Self {
            Report {
                bench: bench.to_string(),
                fields: Vec::new(),
                sections: Vec::new(),
            }
        }

        /// Adds one scalar field; `value` is spliced in as raw JSON
        /// (numbers and `null` pass through, strings must arrive quoted).
        pub fn field(mut self, key: &str, value: impl std::fmt::Display) -> Self {
            self.fields.push((key.to_string(), value.to_string()));
            self
        }

        /// Adds one array of pre-rendered JSON rows under `key`.
        pub fn rows(mut self, key: &str, rows: Vec<String>) -> Self {
            self.sections.push((key.to_string(), rows));
            self
        }

        /// Renders the document (trailing newline included).
        pub fn render(&self) -> String {
            let mut entries = vec![format!("\"bench\": \"{}\"", self.bench)];
            for (key, value) in &self.fields {
                entries.push(format!("\"{key}\": {value}"));
            }
            entries.push(format!("\"peak_rss_bytes\": {}", super::peak_rss_json()));
            for (key, rows) in &self.sections {
                entries.push(format!("\"{key}\": [\n{}\n]", rows.join(",\n")));
            }
            format!("{{\n{}\n}}\n", entries.join(",\n"))
        }

        /// Writes the rendered document as `file_name` if
        /// `GSMB_BENCH_JSON` is set; returns the path written to.
        pub fn write(&self, file_name: &str) -> Option<std::path::PathBuf> {
            super::write_bench_json(file_name, &self.render())
        }
    }
}

/// Runs the feature-selection sweep (Tables 3 and 4) for one algorithm and
/// returns `(feature set, mean effectiveness)` sorted by descending F1.
///
/// By default only combinations of up to 5 schemes are evaluated; set
/// `GSMB_FULL_SWEEP=1` to cover all 255 combinations as in the paper.
pub fn feature_sweep(
    algorithm: meta_blocking::pruning::AlgorithmKind,
    prepared: &[PreparedDataset],
    repetitions: usize,
) -> Vec<(er_features::FeatureSet, er_eval::Effectiveness)> {
    use er_eval::experiment::{run_with_matrix, RunConfig};
    use er_eval::Effectiveness;
    use er_features::{FeatureMatrix, FeatureSet};
    use std::time::Duration;

    let full_sweep = env_flag("GSMB_FULL_SWEEP");
    let sets: Vec<FeatureSet> = FeatureSet::all_combinations()
        .filter(|s| full_sweep || s.num_schemes() <= 5)
        .collect();

    // One all-schemes matrix per dataset; every combination is a projection.
    let matrices: Vec<FeatureMatrix> = prepared
        .iter()
        .map(|p| p.build_features(FeatureSet::all_schemes()).0)
        .collect();

    let mut results = Vec::with_capacity(sets.len());
    for &set in &sets {
        let mut per_dataset = Vec::new();
        for (dataset, matrix) in prepared.iter().zip(&matrices) {
            let projected = matrix.project(set);
            let config = RunConfig {
                feature_set: set,
                per_class: 250,
                ..Default::default()
            };
            let mut per_run = Vec::new();
            for rep in 0..repetitions.max(1) {
                let seed = er_core::rng::derive_seed(config.seed, rep as u64);
                let run = run_with_matrix(
                    dataset,
                    &projected,
                    Duration::ZERO,
                    algorithm,
                    &config,
                    seed,
                )
                .expect("sweep run failed");
                per_run.push(run.effectiveness);
            }
            per_dataset.push(Effectiveness::mean(&per_run));
        }
        results.push((set, Effectiveness::mean(&per_dataset)));
    }
    results.sort_by(|a, b| b.1.f1.partial_cmp(&a.1.f1).unwrap());
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_helpers_fall_back_to_defaults() {
        assert_eq!(env_f64("GSMB_DOES_NOT_EXIST", 1.25), 1.25);
        assert_eq!(env_usize("GSMB_DOES_NOT_EXIST", 7), 7);
        assert!(!env_flag("GSMB_DOES_NOT_EXIST"));
    }

    #[test]
    fn bench_options_are_positive() {
        let options = bench_catalog_options();
        assert!(options.scale > 0.0);
        assert!(options.dirty_scale > 0.0);
        assert!(bench_repetitions() >= 1);
    }

    #[test]
    fn peak_rss_reads_vm_hwm_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            let bytes = rss.expect("VmHWM should exist on Linux");
            assert!(bytes > 0);
            assert_eq!(peak_rss_json(), bytes.to_string());
        } else {
            assert!(rss.is_none());
            assert_eq!(peak_rss_json(), "null");
        }
    }
}
