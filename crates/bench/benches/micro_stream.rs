//! Micro-bench: streaming ingestion vs corpus size and batch size.
//!
//! The contract of the `er-stream` subsystem is that per-batch ingest cost
//! scales with the **batch**, not the corpus: the index updates touch only
//! the batch's postings, partner gathering walks only the new entities'
//! blocks, and feature tables are recomputed only for affected entities.
//! This bench demonstrates that on the fig7/9 workload (the two largest
//! Clean-Clean catalog datasets):
//!
//! 1. holding the batch size fixed while growing the already-ingested
//!    corpus, the mean per-batch ingest time stays flat while a full batch
//!    rebuild grows with the corpus;
//! 2. holding the corpus fixed while growing the batch, the per-entity cost
//!    stays flat (cost tracks the batch size).
//!
//! Every streamed state is verified against a one-shot batch build before
//! timing — the speedups never trade the bit-identical contract away.
//!
//! Emits `BENCH_stream.json` when `GSMB_BENCH_JSON` is set.

use bench::{
    assert_obs_overhead, banner, bench_catalog_options, bench_repetitions, report::Report,
};
use er_blocking::{build_blocks, TokenKeys};
use er_core::Dataset;
use er_datasets::{generate_catalog_dataset, DatasetName};
use er_features::FeatureSet;
use er_stream::{dataset_prefix, StreamingConfig, StreamingMetaBlocker};

/// Builds a blocker holding the first `seed` entities of the dataset.
fn seeded_blocker(
    dataset: &Dataset,
    seed: usize,
    threads: usize,
) -> StreamingMetaBlocker<TokenKeys> {
    let config = StreamingConfig {
        feature_set: FeatureSet::blast_optimal(),
        threads,
        ..StreamingConfig::for_dataset(dataset)
    };
    let mut blocker = StreamingMetaBlocker::new(config, TokenKeys);
    blocker.ingest(&dataset.profiles[..seed]);
    blocker
}

fn main() {
    banner("Micro-bench: streaming ingest cost vs corpus size and batch size");
    let repetitions = bench_repetitions();
    let options = bench_catalog_options();
    let threads = er_core::available_threads();
    let mut json_entries: Vec<String> = Vec::new();
    let mut gate_dataset: Option<Dataset> = None;

    for name in DatasetName::largest_two() {
        let dataset = generate_catalog_dataset(name, &options)
            .unwrap_or_else(|e| panic!("failed to generate {name}: {e}"));
        let n = dataset.num_entities();
        let e2 = n - dataset.split;
        println!("\n--- {} ({} entities, |E2| = {e2}) ---", name, n);

        // Correctness first: stream half the corpus, then the rest in odd
        // chunks, and require the compacted state to equal the batch build.
        {
            let mut blocker = seeded_blocker(&dataset, dataset.split + e2 / 2, threads);
            for chunk in dataset.profiles[dataset.split + e2 / 2..].chunks(97) {
                blocker.ingest(chunk);
            }
            let streamed = blocker.compact().to_block_collection();
            let batch = build_blocks(&dataset, &TokenKeys, threads).to_block_collection();
            assert_eq!(streamed.blocks, batch.blocks, "{name}: stream diverged");
        }

        // 1. Fixed batch (64 entities), growing corpus.
        const BATCH: usize = 64;
        println!(
            "{:<28} {:>14} {:>16} {:>12}",
            "corpus before ingest", "ingest 64", "batch rebuild", "rebuild/ingest"
        );
        for fraction in [0.25f64, 0.50, 0.75] {
            let seed = dataset.split + ((e2 as f64 * fraction) as usize).min(e2 - BATCH);
            let prefix = dataset_prefix(&dataset, seed + BATCH);
            let mut ingest_total = 0.0f64;
            for _ in 0..repetitions {
                let mut blocker = seeded_blocker(&dataset, seed, threads);
                let start = std::time::Instant::now();
                criterion::black_box(blocker.ingest(&dataset.profiles[seed..seed + BATCH]));
                ingest_total += start.elapsed().as_secs_f64();
            }
            let ingest = ingest_total / repetitions as f64;
            let rebuild_start = std::time::Instant::now();
            for _ in 0..repetitions {
                criterion::black_box(build_blocks(&prefix, &TokenKeys, threads));
            }
            let rebuild = rebuild_start.elapsed().as_secs_f64() / repetitions as f64;
            println!(
                "{:<28} {:>12.2}ms {:>14.2}ms {:>11.1}x",
                format!("{seed} entities ({:.0}% of E2)", fraction * 100.0),
                ingest * 1e3,
                rebuild * 1e3,
                rebuild / ingest.max(1e-9),
            );
            json_entries.push(format!(
                concat!(
                    "  {{ \"dataset\": \"{}\", \"mode\": \"growing_corpus\", ",
                    "\"corpus\": {}, \"batch\": {}, \"ingest_ms\": {:.3}, ",
                    "\"rebuild_ms\": {:.3} }}"
                ),
                name,
                seed,
                BATCH,
                ingest * 1e3,
                rebuild * 1e3
            ));
        }

        // 2. Fixed corpus (half of E2 ingested), growing batch.
        let seed = dataset.split + e2 / 2;
        println!("{:<28} {:>14} {:>16}", "batch size", "ingest", "per entity");
        for batch in [16usize, 64, 256] {
            let batch = batch.min(n - seed);
            let mut total = 0.0f64;
            for _ in 0..repetitions {
                let mut blocker = seeded_blocker(&dataset, seed, threads);
                let start = std::time::Instant::now();
                criterion::black_box(blocker.ingest(&dataset.profiles[seed..seed + batch]));
                total += start.elapsed().as_secs_f64();
            }
            let time = total / repetitions as f64;
            println!(
                "{:<28} {:>12.2}ms {:>13.1}µs",
                batch,
                time * 1e3,
                time / batch as f64 * 1e6,
            );
            json_entries.push(format!(
                concat!(
                    "  {{ \"dataset\": \"{}\", \"mode\": \"growing_batch\", ",
                    "\"corpus\": {}, \"batch\": {}, \"ingest_ms\": {:.3}, ",
                    "\"per_entity_us\": {:.2} }}"
                ),
                name,
                seed,
                batch,
                time * 1e3,
                time / batch as f64 * 1e6
            ));
        }
        gate_dataset = Some(dataset);
    }

    // Overhead gate: the streaming ingest hot loop (per-batch er-obs
    // updates in `emit`) must cost the same with the layer disabled,
    // within 2%.
    println!();
    let gate_dataset = gate_dataset.expect("at least one dataset was benchmarked");
    let gate_seed = gate_dataset.split;
    let gate_end = gate_dataset.num_entities().min(gate_seed + 512);
    let (disabled_s, enabled_s) = assert_obs_overhead("streaming_ingest", 5, || {
        let mut blocker = seeded_blocker(&gate_dataset, gate_seed, threads);
        for chunk in gate_dataset.profiles[gate_seed..gate_end].chunks(64) {
            criterion::black_box(blocker.ingest(chunk));
        }
    });

    Report::new("micro_stream")
        .field("repetitions", repetitions)
        .field("threads", threads)
        .field("obs_overhead_disabled_s", format!("{disabled_s:.4}"))
        .field("obs_overhead_enabled_s", format!("{enabled_s:.4}"))
        .rows("rows", json_entries)
        .write("BENCH_stream.json");
}
