//! Micro-bench: progressive recall under a comparison budget, batch vs
//! streaming schedules.
//!
//! Progressive ER hands the matcher the most promising comparisons first,
//! so the quantity that matters is recall as a function of the comparison
//! budget.  Two schedules compete on the same dataset and classifier
//! configuration:
//!
//! * **batch** — the full pipeline runs once, then
//!   [`meta_blocking::ProgressiveSchedule`] ranks every candidate pair by
//!   its probability;
//! * **streaming** — [`meta_blocking::StreamingPipeline`] bootstraps the
//!   classifier on a seed corpus (all of E1 plus half of E2), ingests the
//!   remaining entities in small batches, and its
//!   [`meta_blocking::StreamingSchedule`] re-ranks on every ingest.
//!
//! The streaming schedule scores pairs with mid-stream statistics, so its
//! curve may deviate slightly from the batch one — that gap is exactly the
//! price of emitting candidates before the corpus is complete.  The two
//! sides also rank different candidate pools: the batch pipeline runs the
//! standard workflow (purging + filtering) while the streaming index ranks
//! the raw Token Blocking candidates, so the streaming side emits more
//! pairs in total — the recall-at-equal-budget comparison is still
//! apples-to-apples, since the budget counts comparisons performed.

use bench::{banner, bench_catalog_options};
use er_core::EntityId;
use er_datasets::{generate_catalog_dataset, DatasetName};
use er_stream::dataset_prefix;
use meta_blocking::pipeline::{MetaBlockingConfig, MetaBlockingPipeline};
use meta_blocking::pruning::AlgorithmKind;
use meta_blocking::{ProgressiveSchedule, StreamingPipeline};

const BUDGET_FRACTIONS: [f64; 6] = [0.01, 0.02, 0.05, 0.10, 0.20, 0.50];

/// Recall after each budget prefix of an emission order.
fn recall_curve(
    emissions: &[(EntityId, EntityId)],
    truth: &er_core::GroundTruth,
    num_duplicates: usize,
    budgets: &[usize],
) -> Vec<f64> {
    let mut curve = Vec::with_capacity(budgets.len());
    let mut found = 0usize;
    let mut cursor = 0usize;
    for &budget in budgets {
        while cursor < budget.min(emissions.len()) {
            let (a, b) = emissions[cursor];
            if truth.is_match(a, b) {
                found += 1;
            }
            cursor += 1;
        }
        curve.push(found as f64 / num_duplicates.max(1) as f64);
    }
    curve
}

fn main() {
    banner("Micro-bench: progressive recall vs comparison budget (batch vs streaming)");
    let options = bench_catalog_options();
    let config = MetaBlockingConfig::default();

    for name in [DatasetName::DblpAcm, DatasetName::ScholarDblp] {
        let dataset = generate_catalog_dataset(name, &options)
            .unwrap_or_else(|e| panic!("failed to generate {name}: {e}"));

        // Batch schedule: one full pipeline run, ranked once.
        let pipeline = MetaBlockingPipeline::new(config.clone());
        let outcome = pipeline
            .run(&dataset, AlgorithmKind::Blast)
            .unwrap_or_else(|e| panic!("{name}: batch pipeline failed: {e}"));
        let schedule = ProgressiveSchedule::new(&outcome.candidates, &outcome.probabilities);
        let batch_emissions: Vec<(EntityId, EntityId)> = schedule
            .ranked()
            .iter()
            .map(|&(id, _)| outcome.candidates.pair(id))
            .collect();

        // Streaming schedule: bootstrap on E1 + half of E2, stream the rest.
        let e2 = dataset.num_entities() - dataset.split;
        let seed = dataset_prefix(&dataset, dataset.split + e2 / 2);
        let mut streaming = StreamingPipeline::bootstrap(&config, &seed)
            .unwrap_or_else(|e| panic!("{name}: bootstrap failed: {e}"));
        for chunk in dataset.profiles[streaming.num_entities()..].chunks(32) {
            streaming.ingest(chunk);
        }
        let mut stream_emissions = Vec::new();
        loop {
            let drained = streaming.next_batch(4096);
            if drained.is_empty() {
                break;
            }
            stream_emissions.extend(drained.into_iter().map(|(pair, _)| pair));
        }

        let num_candidates = outcome.num_candidates;
        let budgets: Vec<usize> = BUDGET_FRACTIONS
            .iter()
            .map(|f| ((num_candidates as f64 * f) as usize).max(1))
            .chain([num_candidates.max(stream_emissions.len())])
            .collect();
        let batch_curve = recall_curve(
            &batch_emissions,
            &dataset.ground_truth,
            dataset.num_duplicates(),
            &budgets,
        );
        let stream_curve = recall_curve(
            &stream_emissions,
            &dataset.ground_truth,
            dataset.num_duplicates(),
            &budgets,
        );

        println!(
            "\n--- {} (|C| = {num_candidates}, |D| = {}) ---",
            name,
            dataset.num_duplicates()
        );
        println!(
            "{:<18} {:>14} {:>16}",
            "budget", "batch recall", "streaming recall"
        );
        for ((&budget, batch), stream) in budgets.iter().zip(&batch_curve).zip(&stream_curve) {
            println!(
                "{:<18} {:>13.3} {:>16.3}",
                format!(
                    "{budget} ({:.0}%)",
                    budget as f64 / num_candidates as f64 * 100.0
                ),
                batch,
                stream,
            );
        }
    }
}
