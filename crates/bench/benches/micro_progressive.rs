//! Micro-bench: progressive recall under a comparison budget, batch vs
//! streaming schedules.
//!
//! Progressive ER hands the matcher the most promising comparisons first,
//! so the quantity that matters is recall as a function of the comparison
//! budget.  Two schedules compete on the same dataset and classifier
//! configuration:
//!
//! * **batch** — the full pipeline runs once, then
//!   [`meta_blocking::ProgressiveSchedule`] ranks every candidate pair by
//!   its probability;
//! * **streaming** — [`meta_blocking::StreamingPipeline`] bootstraps the
//!   classifier on a seed corpus (all of E1 plus half of E2), ingests the
//!   remaining entities in small batches, and its
//!   [`meta_blocking::StreamingSchedule`] re-ranks on every ingest.
//!
//! The streaming schedule scores pairs with mid-stream statistics, so its
//! curve may deviate slightly from the batch one — that gap is exactly the
//! price of emitting candidates before the corpus is complete.  The two
//! sides also rank different candidate pools: the batch pipeline runs the
//! standard workflow (purging + filtering) while the raw streaming index
//! ranks the raw Token Blocking candidates, so the streaming side emits
//! more pairs in total — the recall-at-equal-budget comparison is still
//! apples-to-apples, since the budget counts comparisons performed.
//!
//! A second, **churn** scenario interleaves deletions with the ingest
//! stream and compares the *cleaned* streaming schedule (purging/filtering
//! maintained incrementally by `meta_blocking::LiveView`) against the
//! classical operational answer to churn: periodically re-running the whole
//! batch pipeline and ranking from the latest rebuild.  The periodic
//! rebuild is blind to everything that arrived or vanished since its last
//! run — its budget is partly spent on pairs whose entities are already
//! gone and it cannot schedule entities it has never seen — while the
//! streaming schedule tracks every mutation batch exactly.

use bench::{banner, bench_catalog_options};
use er_core::EntityId;
use er_datasets::{generate_catalog_dataset, DatasetName};
use er_stream::{dataset_prefix, surviving_dataset};
use meta_blocking::pipeline::{MetaBlockingConfig, MetaBlockingPipeline};
use meta_blocking::pruning::AlgorithmKind;
use meta_blocking::{ProgressiveSchedule, StreamingPipeline};

const BUDGET_FRACTIONS: [f64; 6] = [0.01, 0.02, 0.05, 0.10, 0.20, 0.50];

/// Recall after each budget prefix of an emission order.
fn recall_curve(
    emissions: &[(EntityId, EntityId)],
    truth: &er_core::GroundTruth,
    num_duplicates: usize,
    budgets: &[usize],
) -> Vec<f64> {
    let mut curve = Vec::with_capacity(budgets.len());
    let mut found = 0usize;
    let mut cursor = 0usize;
    for &budget in budgets {
        while cursor < budget.min(emissions.len()) {
            let (a, b) = emissions[cursor];
            if truth.is_match(a, b) {
                found += 1;
            }
            cursor += 1;
        }
        curve.push(found as f64 / num_duplicates.max(1) as f64);
    }
    curve
}

fn main() {
    banner("Micro-bench: progressive recall vs comparison budget (batch vs streaming)");
    let options = bench_catalog_options();
    let config = MetaBlockingConfig::default();

    for name in [DatasetName::DblpAcm, DatasetName::ScholarDblp] {
        let dataset = generate_catalog_dataset(name, &options)
            .unwrap_or_else(|e| panic!("failed to generate {name}: {e}"));

        // Batch schedule: one full pipeline run, ranked once.
        let pipeline = MetaBlockingPipeline::new(config.clone());
        let outcome = pipeline
            .run(&dataset, AlgorithmKind::Blast)
            .unwrap_or_else(|e| panic!("{name}: batch pipeline failed: {e}"));
        let schedule = ProgressiveSchedule::new(&outcome.candidates, &outcome.probabilities);
        let batch_emissions: Vec<(EntityId, EntityId)> = schedule
            .ranked()
            .iter()
            .map(|&(id, _)| outcome.candidates.pair(id))
            .collect();

        // Streaming schedule: bootstrap on E1 + half of E2, stream the rest.
        let e2 = dataset.num_entities() - dataset.split;
        let seed = dataset_prefix(&dataset, dataset.split + e2 / 2);
        let mut streaming = StreamingPipeline::bootstrap(&config, &seed)
            .unwrap_or_else(|e| panic!("{name}: bootstrap failed: {e}"));
        for chunk in dataset.profiles[streaming.num_entities()..].chunks(32) {
            streaming.ingest(chunk);
        }
        let mut stream_emissions = Vec::new();
        loop {
            let drained = streaming.next_batch(4096);
            if drained.is_empty() {
                break;
            }
            stream_emissions.extend(drained.into_iter().map(|(pair, _)| pair));
        }

        let num_candidates = outcome.num_candidates;
        let budgets: Vec<usize> = BUDGET_FRACTIONS
            .iter()
            .map(|f| ((num_candidates as f64 * f) as usize).max(1))
            .chain([num_candidates.max(stream_emissions.len())])
            .collect();
        let batch_curve = recall_curve(
            &batch_emissions,
            &dataset.ground_truth,
            dataset.num_duplicates(),
            &budgets,
        );
        let stream_curve = recall_curve(
            &stream_emissions,
            &dataset.ground_truth,
            dataset.num_duplicates(),
            &budgets,
        );

        println!(
            "\n--- {} (|C| = {num_candidates}, |D| = {}) ---",
            name,
            dataset.num_duplicates()
        );
        println!(
            "{:<18} {:>14} {:>16}",
            "budget", "batch recall", "streaming recall"
        );
        for ((&budget, batch), stream) in budgets.iter().zip(&batch_curve).zip(&stream_curve) {
            println!(
                "{:<18} {:>13.3} {:>16.3}",
                format!(
                    "{budget} ({:.0}%)",
                    budget as f64 / num_candidates as f64 * 100.0
                ),
                batch,
                stream,
            );
        }

        churn_scenario(name, &dataset, &config);
    }
}

/// Interleaved insert/delete churn: the cleaned streaming schedule vs a
/// periodic full batch rebuild (every `REBUILD_PERIOD` ingest chunks).
fn churn_scenario(name: DatasetName, dataset: &er_core::Dataset, config: &MetaBlockingConfig) {
    const CHUNK: usize = 32;
    const REMOVALS_PER_CHUNK: usize = 8;
    const REBUILD_PERIOD: usize = 4;

    let n = dataset.num_entities();
    let e2 = n - dataset.split;
    let seed_count = dataset.split + e2 / 2;
    let seed = dataset_prefix(dataset, seed_count);
    let mut streaming = StreamingPipeline::bootstrap_cleaned(config, &seed)
        .unwrap_or_else(|e| panic!("{name}: cleaned bootstrap failed: {e}"));

    let mut removed: Vec<EntityId> = Vec::new();
    let mut next_victim = dataset.split; // churn rotates through old E2 ids
    let mut cursor = seed_count;
    let mut chunk_index = 0usize;
    let mut rebuilds = 0usize;
    let mut periodic: Option<Vec<(EntityId, EntityId)>> = None;
    while cursor < n {
        let take = CHUNK.min(n - cursor);
        streaming.ingest(&dataset.profiles[cursor..cursor + take]);
        cursor += take;
        chunk_index += 1;

        // Churn: a spread of already-ingested E2 entities leaves the corpus.
        let mut batch: Vec<EntityId> = Vec::new();
        while batch.len() < REMOVALS_PER_CHUNK && next_victim + 3 < cursor {
            batch.push(EntityId(next_victim as u32));
            next_victim += 3;
        }
        if !batch.is_empty() {
            streaming.remove(&batch);
            removed.extend_from_slice(&batch);
        }

        // The periodic baseline re-runs the whole batch pipeline on the
        // corpus as of this boundary; between rebuilds it is stale.
        if chunk_index.is_multiple_of(REBUILD_PERIOD) {
            let corpus = surviving_dataset(&dataset_prefix(dataset, cursor), &removed, &[]);
            let outcome = MetaBlockingPipeline::new(config.clone())
                .run(&corpus, AlgorithmKind::Blast)
                .unwrap_or_else(|e| panic!("{name}: periodic rebuild failed: {e}"));
            let schedule = ProgressiveSchedule::new(&outcome.candidates, &outcome.probabilities);
            periodic = Some(
                schedule
                    .ranked()
                    .iter()
                    .map(|&(id, _)| outcome.candidates.pair(id))
                    .collect(),
            );
            rebuilds += 1;
        }
    }

    // Evaluate both emission orders against the *surviving* corpus: pairs
    // touching removed entities can never match, so budget spent on them is
    // wasted — exactly the staleness cost of the periodic rebuild.
    let survivors = surviving_dataset(dataset, &removed, &[]);
    let periodic_emissions = periodic.expect("stream too short for a rebuild");
    let mut stream_emissions: Vec<(EntityId, EntityId)> = Vec::new();
    loop {
        let drained = streaming.next_batch(4096);
        if drained.is_empty() {
            break;
        }
        stream_emissions.extend(drained.into_iter().map(|(pair, _)| pair));
    }

    let oracle = MetaBlockingPipeline::new(config.clone())
        .run(&survivors, AlgorithmKind::Blast)
        .unwrap_or_else(|e| panic!("{name}: oracle rebuild failed: {e}"));
    let num_candidates = oracle.num_candidates;
    let budgets: Vec<usize> = BUDGET_FRACTIONS
        .iter()
        .map(|f| ((num_candidates as f64 * f) as usize).max(1))
        .chain([num_candidates.max(stream_emissions.len())])
        .collect();
    let periodic_curve = recall_curve(
        &periodic_emissions,
        &survivors.ground_truth,
        survivors.num_duplicates(),
        &budgets,
    );
    let stream_curve = recall_curve(
        &stream_emissions,
        &survivors.ground_truth,
        survivors.num_duplicates(),
        &budgets,
    );

    println!(
        "\n--- {} churn: {} removed, {} rebuilds, |D surviving| = {} ---",
        name,
        removed.len(),
        rebuilds,
        survivors.num_duplicates()
    );
    println!(
        "{:<18} {:>16} {:>18}",
        "budget", "periodic rebuild", "cleaned streaming"
    );
    for ((&budget, periodic), stream) in budgets.iter().zip(&periodic_curve).zip(&stream_curve) {
        println!(
            "{:<18} {:>16.3} {:>18.3}",
            format!(
                "{budget} ({:.0}%)",
                budget as f64 / num_candidates as f64 * 100.0
            ),
            periodic,
            stream,
        );
    }
}
