//! Figure 17: scalability analysis over the synthetic Dirty ER datasets.
//!
//! Runs BCl vs BLAST (weight-based) and CNP vs RCNP (cardinality-based) over
//! the D10K…D300K analogues with logistic regression and 50 labelled
//! instances.  Expected shape: the generalized algorithms keep recall high
//! while improving precision/F1 by a large factor over their baselines, on
//! every dataset size.

use bench::{banner, bench_catalog_options, env_usize};
use er_eval::scalability::run_scalability;
use meta_blocking::pruning::AlgorithmKind;

fn main() {
    banner("Figure 17: scalability over the Dirty ER datasets");
    let options = bench_catalog_options();
    let repetitions = env_usize("GSMB_SCALABILITY_REPS", 2);
    let algorithms = [
        AlgorithmKind::Bcl,
        AlgorithmKind::Blast,
        AlgorithmKind::Cnp,
        AlgorithmKind::Rcnp,
    ];
    let points =
        run_scalability(&options, &algorithms, repetitions).expect("scalability run failed");

    println!(
        "{:<8} {:<8} {:>10} {:>12} {:>8} {:>10} {:>8} {:>9}",
        "dataset", "algo", "entities", "|C|", "recall", "precision", "F1", "RT(s)"
    );
    for point in &points {
        println!(
            "{:<8} {:<8} {:>10} {:>12} {:>8.4} {:>10.4} {:>8.4} {:>9.3}",
            point.dataset,
            point.algorithm.name(),
            point.num_entities,
            point.num_candidates,
            point.effectiveness.recall,
            point.effectiveness.precision,
            point.effectiveness.f1,
            point.rt_seconds
        );
    }
}
