//! Figure 17: scalability analysis over the synthetic Dirty ER datasets.
//!
//! Runs BCl vs BLAST (weight-based) and CNP vs RCNP (cardinality-based) over
//! the D10K…D300K analogues with logistic regression and 50 labelled
//! instances.  Expected shape: the generalized algorithms keep recall high
//! while improving precision/F1 by a large factor over their baselines, on
//! every dataset size.

use bench::{banner, bench_catalog_options, env_usize};
use er_blocking::{reference, standard_blocking_workflow_csr};
use er_datasets::{dirty_catalog, generate_dirty};
use er_eval::scalability::run_scalability;
use meta_blocking::pruning::AlgorithmKind;

/// Thread sweep of the parallel blocking engine over the Dirty ER datasets:
/// the full standard workflow (Token Blocking + Purging + Filtering) through
/// the CSR builder at 1/2/4/8 workers, against the retained sequential
/// reference path.
fn blocking_thread_sweep(options: &er_datasets::CatalogOptions, repetitions: usize) {
    println!("\n--- Blocking workflow: thread sweep (engine vs sequential reference) ---");
    println!(
        "{:<8} {:>10} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "dataset", "entities", "reference", "t=1", "t=2", "t=4", "t=8"
    );
    for config in dirty_catalog(options) {
        let dataset = generate_dirty(&config).expect("dirty dataset generation failed");
        let time = |f: &mut dyn FnMut()| {
            let start = std::time::Instant::now();
            for _ in 0..repetitions.max(1) {
                f();
            }
            start.elapsed().as_secs_f64() / repetitions.max(1) as f64
        };
        let base = time(&mut || {
            criterion::black_box(er_blocking::block_filtering(
                &er_blocking::block_purging(&reference::token_blocking(&dataset)),
                er_blocking::DEFAULT_FILTERING_RATIO,
            ));
        });
        print!(
            "{:<8} {:>10} {:>11.3}s",
            config.name,
            dataset.num_entities(),
            base
        );
        for threads in [1usize, 2, 4, 8] {
            let t = time(&mut || {
                criterion::black_box(standard_blocking_workflow_csr(&dataset, threads));
            });
            print!(" {:>5.3}s/{:>3.1}x", t, base / t);
        }
        println!();
    }
}

fn main() {
    banner("Figure 17: scalability over the Dirty ER datasets");
    let options = bench_catalog_options();
    let repetitions = env_usize("GSMB_SCALABILITY_REPS", 2);
    blocking_thread_sweep(&options, repetitions);
    let algorithms = [
        AlgorithmKind::Bcl,
        AlgorithmKind::Blast,
        AlgorithmKind::Cnp,
        AlgorithmKind::Rcnp,
    ];
    let points =
        run_scalability(&options, &algorithms, repetitions).expect("scalability run failed");

    println!(
        "{:<8} {:<8} {:>10} {:>12} {:>8} {:>10} {:>8} {:>9}",
        "dataset", "algo", "entities", "|C|", "recall", "precision", "F1", "RT(s)"
    );
    for point in &points {
        println!(
            "{:<8} {:<8} {:>10} {:>12} {:>8.4} {:>10.4} {:>8.4} {:>9.3}",
            point.dataset,
            point.algorithm.name(),
            point.num_entities,
            point.num_candidates,
            point.effectiveness.recall,
            point.effectiveness.precision,
            point.effectiveness.f1,
            point.rt_seconds
        );
    }
}
