//! Table 1: technical characteristics of the Clean-Clean ER datasets.
//!
//! Prints |E1|, |E2|, |D| and |C| for every generated benchmark analogue so
//! the structural properties can be compared with the paper's Table 1
//! (absolute sizes are scaled down; the ordering and imbalance are what
//! matters).

use bench::{banner, bench_catalog_options, prepare_all};

fn main() {
    banner("Table 1: dataset characteristics (synthetic analogues)");
    let options = bench_catalog_options();
    println!("catalog scale = {}", options.scale);
    println!(
        "{:<15} {:>8} {:>8} {:>8} {:>12}",
        "dataset", "|E1|", "|E2|", "|D|", "|C|"
    );
    for prepared in prepare_all() {
        println!(
            "{:<15} {:>8} {:>8} {:>8} {:>12}",
            prepared.dataset.name,
            prepared.dataset.len_e1(),
            prepared.dataset.len_e2(),
            prepared.dataset.num_duplicates(),
            prepared.num_candidates()
        );
    }
}
