//! Micro-bench: streaming delete/update cost vs corpus size and batch size.
//!
//! The contract of the mutation log is that per-batch remove/update cost
//! scales with the **batch**, not the corpus: posting tombstones touch only
//! the mutated entities' keys, the liveness journal scans only flipped
//! blocks, and partner diffs walk only the mutated entities' blocks.  This
//! bench demonstrates that on the fig7/9 workload (the two largest
//! Clean-Clean catalog datasets):
//!
//! 1. holding the mutation batch fixed while growing the already-ingested
//!    corpus, the mean per-batch remove and update times stay flat while a
//!    full batch rebuild grows with the corpus;
//! 2. holding the corpus fixed while growing the batch, the per-entity cost
//!    stays flat (cost tracks the batch size).
//!
//! Every mutated state is verified against a one-shot batch build of the
//! surviving corpus before timing — the speedups never trade the
//! bit-identical contract away.
//!
//! Emits `BENCH_mutation.json` when `GSMB_BENCH_JSON` is set.

use bench::{banner, bench_catalog_options, bench_repetitions, report::Report};
use er_blocking::{build_blocks, TokenKeys};
use er_core::{Dataset, EntityId, EntityProfile};
use er_datasets::{generate_catalog_dataset, DatasetName};
use er_features::FeatureSet;
use er_stream::{dataset_prefix, surviving_dataset, StreamingConfig, StreamingMetaBlocker};

/// Builds a blocker holding the first `seed` entities of the dataset.
fn seeded_blocker(
    dataset: &Dataset,
    seed: usize,
    threads: usize,
) -> StreamingMetaBlocker<TokenKeys> {
    let config = StreamingConfig {
        feature_set: FeatureSet::blast_optimal(),
        threads,
        ..StreamingConfig::for_dataset(dataset)
    };
    let mut blocker = StreamingMetaBlocker::new(config, TokenKeys);
    blocker.ingest(&dataset.profiles[..seed]);
    blocker
}

/// A deterministic spread of `count` removable ids inside `[dataset.split,
/// seed)` (E2 entities already ingested).
fn victims(dataset: &Dataset, seed: usize, count: usize) -> Vec<EntityId> {
    let lo = dataset.split;
    let span = seed - lo;
    // Clamp to the available span: `(i · span) / count` strides by at least
    // one whenever `count ≤ span`, so the ids stay distinct even at tiny
    // bench scales (`remove` rejects duplicate ids).
    let count = count.min(span);
    (0..count)
        .map(|i| EntityId((lo + (i * span) / count) as u32))
        .collect()
}

/// Deterministic update entries: each victim takes a donor profile from the
/// other end of the corpus.
fn rekeys(dataset: &Dataset, seed: usize, count: usize) -> Vec<(EntityId, EntityProfile)> {
    victims(dataset, seed, count)
        .into_iter()
        .enumerate()
        .map(|(i, e)| {
            let donor = (e.index() + 37 * (i + 1)) % seed;
            (e, dataset.profiles[donor].clone())
        })
        .collect()
}

fn main() {
    banner("Micro-bench: streaming delete/update cost vs corpus size and batch size");
    let repetitions = bench_repetitions();
    let options = bench_catalog_options();
    let threads = er_core::available_threads();
    let mut json_entries: Vec<String> = Vec::new();

    for name in DatasetName::largest_two() {
        let dataset = generate_catalog_dataset(name, &options)
            .unwrap_or_else(|e| panic!("failed to generate {name}: {e}"));
        let n = dataset.num_entities();
        let e2 = n - dataset.split;
        println!("\n--- {} ({} entities, |E2| = {e2}) ---", name, n);

        // Correctness first: ingest everything, remove a spread, re-key a
        // spread, and require the compacted state to equal a batch build of
        // the surviving corpus.
        {
            let mut blocker = seeded_blocker(&dataset, n, threads);
            let removed = victims(&dataset, n, 40);
            blocker.remove(&removed);
            let dead: Vec<u32> = removed.iter().map(|e| e.0).collect();
            let updated: Vec<(EntityId, EntityProfile)> = rekeys(&dataset, n, 60)
                .into_iter()
                .filter(|(e, _)| !dead.contains(&e.0))
                .collect();
            blocker.update(&updated);
            let survivors = surviving_dataset(&dataset, &removed, &updated);
            let streamed = blocker.compact().to_block_collection();
            let batch = build_blocks(&survivors, &TokenKeys, threads).to_block_collection();
            assert_eq!(streamed.blocks, batch.blocks, "{name}: mutation diverged");
        }

        // 1. Fixed mutation batch (32 entities), growing corpus.
        const BATCH: usize = 32;
        println!(
            "{:<26} {:>12} {:>12} {:>14} {:>12}",
            "corpus before mutation", "remove 32", "update 32", "batch rebuild", "rebuild/rm"
        );
        for fraction in [0.25f64, 0.50, 0.75] {
            let seed = dataset.split + ((e2 as f64 * fraction) as usize).max(BATCH * 2);
            let seed = seed.min(n);
            let removed = victims(&dataset, seed, BATCH);
            let updated = rekeys(&dataset, seed, BATCH);
            let mut remove_total = 0.0f64;
            let mut update_total = 0.0f64;
            for _ in 0..repetitions {
                let mut blocker = seeded_blocker(&dataset, seed, threads);
                let start = std::time::Instant::now();
                criterion::black_box(blocker.remove(&removed));
                remove_total += start.elapsed().as_secs_f64();

                let mut blocker = seeded_blocker(&dataset, seed, threads);
                let start = std::time::Instant::now();
                criterion::black_box(blocker.update(&updated));
                update_total += start.elapsed().as_secs_f64();
            }
            let remove = remove_total / repetitions as f64;
            let update = update_total / repetitions as f64;
            let prefix = surviving_dataset(&dataset_prefix(&dataset, seed), &removed, &[]);
            let rebuild_start = std::time::Instant::now();
            for _ in 0..repetitions {
                criterion::black_box(build_blocks(&prefix, &TokenKeys, threads));
            }
            let rebuild = rebuild_start.elapsed().as_secs_f64() / repetitions as f64;
            println!(
                "{:<26} {:>10.2}ms {:>10.2}ms {:>12.2}ms {:>11.1}x",
                format!("{seed} entities ({:.0}% of E2)", fraction * 100.0),
                remove * 1e3,
                update * 1e3,
                rebuild * 1e3,
                rebuild / remove.max(1e-9),
            );
            json_entries.push(format!(
                concat!(
                    "  {{ \"dataset\": \"{}\", \"mode\": \"growing_corpus\", ",
                    "\"corpus\": {}, \"batch\": {}, \"remove_ms\": {:.3}, ",
                    "\"update_ms\": {:.3}, \"rebuild_ms\": {:.3} }}"
                ),
                name,
                seed,
                BATCH,
                remove * 1e3,
                update * 1e3,
                rebuild * 1e3
            ));
        }

        // 2. Fixed corpus (all ingested), growing batch.
        println!(
            "{:<26} {:>12} {:>12} {:>14}",
            "batch size", "remove", "update", "per entity"
        );
        for batch in [8usize, 32, 128] {
            let batch = batch.min(e2 / 2);
            let removed = victims(&dataset, n, batch);
            let updated = rekeys(&dataset, n, batch);
            let mut remove_total = 0.0f64;
            let mut update_total = 0.0f64;
            for _ in 0..repetitions {
                let mut blocker = seeded_blocker(&dataset, n, threads);
                let start = std::time::Instant::now();
                criterion::black_box(blocker.remove(&removed));
                remove_total += start.elapsed().as_secs_f64();

                let mut blocker = seeded_blocker(&dataset, n, threads);
                let start = std::time::Instant::now();
                criterion::black_box(blocker.update(&updated));
                update_total += start.elapsed().as_secs_f64();
            }
            let remove = remove_total / repetitions as f64;
            let update = update_total / repetitions as f64;
            println!(
                "{:<26} {:>10.2}ms {:>10.2}ms {:>11.1}µs",
                batch,
                remove * 1e3,
                update * 1e3,
                (remove + update) / (2 * batch) as f64 * 1e6,
            );
            json_entries.push(format!(
                concat!(
                    "  {{ \"dataset\": \"{}\", \"mode\": \"growing_batch\", ",
                    "\"corpus\": {}, \"batch\": {}, \"remove_ms\": {:.3}, ",
                    "\"update_ms\": {:.3}, \"per_entity_us\": {:.2} }}"
                ),
                name,
                n,
                batch,
                remove * 1e3,
                update * 1e3,
                (remove + update) / (2 * batch) as f64 * 1e6
            ));
        }
    }

    Report::new("micro_mutation")
        .field("repetitions", repetitions)
        .field("threads", threads)
        .rows("rows", json_entries)
        .write("BENCH_mutation.json");
}
