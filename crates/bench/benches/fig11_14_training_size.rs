//! Figures 11 and 14: the effect of the training-set size on BLAST and RCNP.
//!
//! Varies the number of labelled instances from 20 to 500 (balanced between
//! the classes) and reports average recall, precision and F1 across all
//! datasets.  Expected shape: recall rises slightly with more labelled data
//! while precision and F1 *drop*, which is why the paper settles on just 50
//! labelled instances.

use bench::{banner, bench_repetitions, prepare_all};
use er_eval::experiment::{run_averaged, RunConfig};
use er_eval::metrics::Effectiveness;
use er_features::FeatureSet;
use meta_blocking::pruning::AlgorithmKind;

fn main() {
    banner("Figures 11 & 14: effect of the training-set size");
    let prepared = prepare_all();
    let repetitions = bench_repetitions();
    let sizes = [20usize, 50, 100, 150, 200, 250, 300, 350, 400, 450, 500];

    for (algorithm, feature_set) in [
        (AlgorithmKind::Blast, FeatureSet::blast_optimal()),
        (AlgorithmKind::Rcnp, FeatureSet::rcnp_optimal()),
    ] {
        println!("\n--- {} with {} ---", algorithm.name(), feature_set);
        println!(
            "{:>6} {:>8} {:>10} {:>8}",
            "size", "recall", "precision", "F1"
        );
        for &size in &sizes {
            let config = RunConfig {
                feature_set,
                per_class: (size / 2).max(1),
                ..Default::default()
            };
            let mut per_dataset = Vec::new();
            for dataset in &prepared {
                match run_averaged(dataset, algorithm, &config, repetitions) {
                    Ok(result) => per_dataset.push(result.effectiveness),
                    // Some scaled-down datasets may not contain `size/2`
                    // positive candidate pairs; skip them for that size, as
                    // the paper's averages only cover feasible runs.
                    Err(_) => continue,
                }
            }
            let mean = Effectiveness::mean(&per_dataset);
            println!(
                "{:>6} {:>8.4} {:>10.4} {:>8.4}",
                size, mean.recall, mean.precision, mean.f1
            );
        }
    }
}
