//! Micro-bench: durability cost and crash-recovery speed on the fig7/9
//! workload (the two largest Clean-Clean catalog datasets).
//!
//! Three questions, answered per dataset:
//!
//! 1. **WAL overhead** — how much does write-ahead logging add to a
//!    per-batch ingest?  (The log records the *input* batch, so the
//!    overhead is one fsynced append per batch, independent of the index
//!    size.)
//! 2. **Snapshot cost** — how long does a full checkpoint (encode + CRC +
//!    atomic rename) take, and how large is the file?
//! 3. **Recovery vs rebuild** — after a crash with a WAL tail of recent
//!    batches, is `recover_from` (snapshot load + tail replay) faster than
//!    rebuilding the streaming state from scratch?  This is the payoff
//!    that makes persistence worth its disk: the further the last
//!    checkpoint, the longer the replay, so the bench sweeps the tail
//!    fraction.
//!
//! Correctness is asserted before any timing: a crash-recovered blocker
//! must compact to exactly the batch build of the surviving corpus.

use std::path::PathBuf;
use std::time::Instant;

use bench::{
    banner, bench_catalog_options, bench_repetitions, report::Report, write_bench_prometheus,
};
use er_blocking::{build_blocks, TokenKeys};
use er_core::{Dataset, EntityId};
use er_datasets::{generate_catalog_dataset, DatasetName};
use er_features::FeatureSet;
use er_stream::{surviving_dataset, DurableMetaBlocker, StreamingConfig, StreamingMetaBlocker};

const BATCH: usize = 64;

fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/tmp")
        .join(format!("micro-persist-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(dataset: &Dataset, threads: usize) -> StreamingConfig {
    StreamingConfig {
        feature_set: FeatureSet::blast_optimal(),
        threads,
        ..StreamingConfig::for_dataset(dataset)
    }
}

/// Ingests the whole corpus in fixed-size batches (plain, in-memory).
fn ingest_all(dataset: &Dataset, threads: usize) -> StreamingMetaBlocker<TokenKeys> {
    let mut blocker = StreamingMetaBlocker::new(config(dataset, threads), TokenKeys);
    for chunk in dataset.profiles.chunks(BATCH) {
        criterion::black_box(blocker.ingest(chunk));
    }
    blocker
}

fn main() {
    banner("Micro-bench: snapshot/WAL durability vs rebuild-from-scratch");
    let repetitions = bench_repetitions();
    let options = bench_catalog_options();
    let threads = er_core::available_threads();
    let mut json_entries: Vec<String> = Vec::new();

    for name in DatasetName::largest_two() {
        let dataset = generate_catalog_dataset(name, &options)
            .unwrap_or_else(|e| panic!("failed to generate {name}: {e}"));
        let n = dataset.num_entities();
        println!("\n--- {} ({} entities) ---", name, n);

        // Correctness gate: ingest + churn + crash + recover must equal the
        // batch build of the surviving corpus.
        {
            let dir = scratch(&format!("{name}-gate"));
            let mut durable = StreamingMetaBlocker::new(config(&dataset, threads), TokenKeys)
                .persist_to(&dir)
                .unwrap();
            for chunk in dataset.profiles.chunks(BATCH) {
                durable.ingest(chunk).unwrap();
            }
            let removed: Vec<EntityId> = (dataset.split..n)
                .step_by(((n - dataset.split) / 24).max(1))
                .take(16)
                .map(|e| EntityId(e as u32))
                .collect();
            durable.remove(&removed).unwrap();
            drop(durable); // crash with the whole history in the WAL tail
            let mut recovered = DurableMetaBlocker::recover_from(&dir, TokenKeys, threads).unwrap();
            let survivors = surviving_dataset(&dataset, &removed, &[]);
            let streamed = recovered.compact().unwrap().to_block_collection();
            let batch = build_blocks(&survivors, &TokenKeys, threads).to_block_collection();
            assert_eq!(streamed.blocks, batch.blocks, "{name}: recovery diverged");
        }

        // 1. WAL overhead per ingest batch.
        let mut plain_total = 0.0f64;
        let mut durable_total = 0.0f64;
        let batches = n.div_ceil(BATCH);
        for _ in 0..repetitions {
            let start = Instant::now();
            criterion::black_box(ingest_all(&dataset, threads));
            plain_total += start.elapsed().as_secs_f64();

            let dir = scratch(&format!("{name}-wal"));
            let mut durable = StreamingMetaBlocker::new(config(&dataset, threads), TokenKeys)
                .persist_to(&dir)
                .unwrap();
            let start = Instant::now();
            for chunk in dataset.profiles.chunks(BATCH) {
                criterion::black_box(durable.ingest(chunk).unwrap());
            }
            durable_total += start.elapsed().as_secs_f64();
        }
        let plain = plain_total / repetitions as f64;
        let durable_time = durable_total / repetitions as f64;
        println!(
            "wal overhead: plain ingest {:.2}ms, durable ingest {:.2}ms ({:.2}x, {:.1}µs per {}-entity batch)",
            plain * 1e3,
            durable_time * 1e3,
            durable_time / plain.max(1e-9),
            (durable_time - plain) / batches as f64 * 1e6,
            BATCH,
        );

        // 2. Snapshot (checkpoint) cost at the full corpus.
        let dir = scratch(&format!("{name}-snapshot"));
        let mut durable = ingest_all(&dataset, threads).persist_to(&dir).unwrap();
        let start = Instant::now();
        for _ in 0..repetitions {
            durable.checkpoint().unwrap();
        }
        let snapshot_time = start.elapsed().as_secs_f64() / repetitions as f64;
        let snapshot_bytes = std::fs::metadata(er_stream::persist::snapshot_path(
            durable.dir(),
            durable.generation(),
        ))
        .unwrap()
        .len();
        println!(
            "snapshot: {:.2}ms per checkpoint, {:.1} KiB on disk",
            snapshot_time * 1e3,
            snapshot_bytes as f64 / 1024.0
        );

        // 3. Recovery (snapshot + replay of a WAL tail) vs rebuilding the
        // streaming state from scratch.
        let rebuild_start = Instant::now();
        for _ in 0..repetitions {
            criterion::black_box(ingest_all(&dataset, threads));
        }
        let rebuild = rebuild_start.elapsed().as_secs_f64() / repetitions as f64;

        println!(
            "{:<28} {:>12} {:>14} {:>10}",
            "checkpoint position", "recovery", "full rebuild", "speedup"
        );
        let mut recovery_rows: Vec<String> = Vec::new();
        for checkpoint_fraction in [1.0f64, 0.9, 0.75, 0.5] {
            let checkpoint_at = ((n as f64 * checkpoint_fraction) as usize).min(n);
            let dir = scratch(&format!("{name}-recover-{checkpoint_at}"));
            let mut durable = StreamingMetaBlocker::new(config(&dataset, threads), TokenKeys)
                .persist_to(&dir)
                .unwrap();
            for chunk in dataset.profiles[..checkpoint_at].chunks(BATCH) {
                durable.ingest(chunk).unwrap();
            }
            durable.checkpoint().unwrap();
            for chunk in dataset.profiles[checkpoint_at..].chunks(BATCH) {
                durable.ingest(chunk).unwrap();
            }
            drop(durable); // crash: everything past the checkpoint is WAL tail

            let start = Instant::now();
            for _ in 0..repetitions {
                criterion::black_box(
                    DurableMetaBlocker::recover_from(&dir, TokenKeys, threads).unwrap(),
                );
            }
            let recovery = start.elapsed().as_secs_f64() / repetitions as f64;
            println!(
                "{:<28} {:>10.2}ms {:>12.2}ms {:>9.1}x",
                format!(
                    "{:.0}% ({} batches replayed)",
                    checkpoint_fraction * 100.0,
                    (n - checkpoint_at).div_ceil(BATCH)
                ),
                recovery * 1e3,
                rebuild * 1e3,
                rebuild / recovery.max(1e-9),
            );
            recovery_rows.push(format!(
                "{{\"checkpoint_fraction\": {:.2}, \"batches_replayed\": {}, \"recovery_ms\": {:.3}, \"rebuild_ms\": {:.3}}}",
                checkpoint_fraction,
                (n - checkpoint_at).div_ceil(BATCH),
                recovery * 1e3,
                rebuild * 1e3,
            ));
        }

        json_entries.push(format!(
            concat!(
                "  {{\n",
                "    \"dataset\": \"{}\",\n",
                "    \"entities\": {},\n",
                "    \"batch_size\": {},\n",
                "    \"plain_ingest_ms\": {:.3},\n",
                "    \"durable_ingest_ms\": {:.3},\n",
                "    \"wal_overhead_us_per_batch\": {:.3},\n",
                "    \"checkpoint_ms\": {:.3},\n",
                "    \"snapshot_bytes\": {},\n",
                "    \"recovery\": [{}]\n",
                "  }}"
            ),
            name,
            n,
            BATCH,
            plain * 1e3,
            durable_time * 1e3,
            (durable_time - plain) / batches as f64 * 1e6,
            snapshot_time * 1e3,
            snapshot_bytes,
            recovery_rows.join(", "),
        ));
    }

    Report::new("micro_persist")
        .field("repetitions", repetitions)
        .field("threads", threads)
        .rows("datasets", json_entries)
        .write("BENCH_persist.json");
    // The same run rendered as a Prometheus snapshot: nonzero WAL append /
    // fsync-latency / snapshot-bytes / recovery series from the er-obs
    // registry.
    write_bench_prometheus("BENCH_persist.prom");
}
