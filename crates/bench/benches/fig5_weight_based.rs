//! Figure 5: average performance of the weight-based pruning algorithms.
//!
//! All algorithms use the original feature set {CF-IBF, RACCB, JS, LCP} and a
//! balanced training set of 500 labelled pairs (250 per class), as in the
//! paper's pruning-algorithm-selection experiment.  The expected shape: WEP
//! and RWNP trade recall for the highest F1, WNP is recall-robust, and BLAST
//! beats the BCl baseline on every measure.

use bench::{banner, bench_repetitions, prepare_all};
use er_eval::experiment::{run_averaged, RunConfig};
use er_eval::metrics::Effectiveness;
use er_features::FeatureSet;
use meta_blocking::pruning::AlgorithmKind;

fn main() {
    banner("Figure 5: weight-based pruning algorithms (avg over all datasets)");
    let prepared = prepare_all();
    let repetitions = bench_repetitions();
    let config = RunConfig {
        feature_set: FeatureSet::original(),
        per_class: 250,
        ..Default::default()
    };

    println!(
        "{:<8} {:>8} {:>10} {:>8}",
        "algo", "recall", "precision", "F1"
    );
    for algorithm in AlgorithmKind::weight_based() {
        let mut per_dataset = Vec::new();
        for dataset in &prepared {
            let result =
                run_averaged(dataset, algorithm, &config, repetitions).expect("experiment failed");
            per_dataset.push(result.effectiveness);
        }
        let mean = Effectiveness::mean(&per_dataset);
        println!(
            "{:<8} {:>8.4} {:>10.4} {:>8.4}",
            algorithm.name(),
            mean.recall,
            mean.precision,
            mean.f1
        );
    }
}
