//! Micro-bench: corpus-size scalability of the cache-blocked radix
//! scoreboard and the streamed candidate engine (the 10^5 → 10^7-entity
//! sweep).
//!
//! For each corpus size the bench generates a bounded-memory synthetic
//! Dirty corpus (`er_datasets::generate_scalability`), runs the standard
//! blocking workflow (Token Blocking + purging + filtering), and drives the
//! fused feature + scoring pass in three modes:
//!
//! * **streamed** — the chunked [`CandidateStream`] path: the pair index
//!   never exists in memory; per-worker scratch is one reusable
//!   [`ChunkArena`] of `chunk_pairs` pairs (run *first*, before the
//!   materialised index is ever allocated, so its peak-RSS checkpoint
//!   cannot inherit the index);
//! * **tiled** — the materialised index through the cache-blocked radix
//!   scoreboard (the default engine), with a metrics sink recording the
//!   per-worker scratch high-water mark;
//! * **flat** — the retained `O(num_entities)`-scratch reference board.
//!
//! Correctness gates before any timing: all three modes must produce
//! bit-identical probabilities at every size, the streamed chunk walk must
//! emit exactly the counted number of pairs, and the tiled engine's scratch
//! must stay `O(tile + contributions)`.
//!
//! Asserted memory gate: the streamed candidate-phase footprint
//! (`CandidateStream::aggregate_bytes` + per-worker arena capacity) must be
//! at most **half** the materialised index (`CandidatePairs::index_bytes`)
//! at every size — exact allocation accounting, so the gate is
//! deterministic; peak-RSS checkpoints after each phase are recorded in the
//! artifact alongside it.  Asserted throughput gate: the *end-to-end*
//! streamed phase (stream build + fused extract/score) keeps within 10% of
//! the end-to-end materialised phase (index build + score) in pairs/s —
//! both modes pay one extraction, the streamed one just never keeps its
//! output (`GSMB_SCALA_GATE=0` disables the timing gate on noisy hosts;
//! the memory gate always holds).
//!
//! Environment: `GSMB_SCALA_SIZES` (comma-separated entity counts, default
//! `100000,1000000`), `GSMB_SCALA_TILE` (tile width override, default
//! auto), `GSMB_SCALA_CHUNK` (streamed chunk size in pairs, default
//! [`DEFAULT_CHUNK_PAIRS`]), `GSMB_SCALA_GATE` (`0` disables the
//! throughput gate), `GSMB_REPS`.  Emits `BENCH_scalability.json` when
//! `GSMB_BENCH_JSON` is set.

use std::time::Instant;

use bench::{banner, bench_repetitions, env_usize, peak_rss_json, report::Report};
use er_blocking::{
    standard_blocking_workflow_csr, BlockStats, CandidatePairs, CandidateStream, ChunkArena,
    DEFAULT_CHUNK_PAIRS,
};
use er_datasets::{generate_scalability, ScalabilityConfig};
use er_features::{
    reset_scoreboard_metrics, scoreboard_metrics, FeatureContext, FeatureMatrix, FeatureSet,
    ScoreboardConfig, StreamFeatureContext,
};

/// Corpus sizes above this skip the full-matrix equality gate (the score
/// vectors are still compared bit-for-bit at every size).
const MATRIX_GATE_LIMIT: usize = 200_000;

fn sizes() -> Vec<usize> {
    let spec = std::env::var("GSMB_SCALA_SIZES").unwrap_or_else(|_| "100000,1000000".to_string());
    let sizes: Vec<usize> = spec
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    assert!(!sizes.is_empty(), "GSMB_SCALA_SIZES parsed to no sizes");
    sizes
}

fn main() {
    banner("Micro-bench: streamed vs materialised scoring by corpus size");
    let repetitions = bench_repetitions();
    let threads = er_core::available_threads();
    let set = FeatureSet::blast_optimal();
    let tile_override = env_usize("GSMB_SCALA_TILE", 0);
    let chunk_pairs = env_usize("GSMB_SCALA_CHUNK", DEFAULT_CHUNK_PAIRS).max(1);
    let timing_gate = std::env::var("GSMB_SCALA_GATE").map_or(true, |v| v != "0");
    let score = |row: &[f64]| row.iter().sum::<f64>();
    let mut json_entries: Vec<String> = Vec::new();

    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>11} {:>9} {:>9} {:>9} {:>12} {:>12}",
        "entities",
        "gen",
        "block",
        "cands",
        "pairs",
        "streamed",
        "tiled",
        "flat",
        "mem(s)",
        "mem(m)"
    );

    for n in sizes() {
        let start = Instant::now();
        let dataset = generate_scalability(&ScalabilityConfig::at_scale(n, 0x5ca1))
            .unwrap_or_else(|e| panic!("failed to generate scal-{n}: {e}"));
        let gen_s = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let blocks = standard_blocking_workflow_csr(&dataset, threads);
        let blocking_s = start.elapsed().as_secs_f64();
        let stats = BlockStats::from_csr(&blocks);
        let rss_baseline = peak_rss_json();

        // --- Streamed phase (first, so the materialised index never
        // contributes to its RSS checkpoint). ---
        let start = Instant::now();
        let stream = CandidateStream::from_stats(&stats, threads);
        let stream_build_s = start.elapsed().as_secs_f64();
        let pairs_u64 = stream.total_pairs();
        assert!(
            pairs_u64 > 0,
            "scal-{n}: no candidate pairs survived cleaning"
        );

        // Full chunk walk through one reusable arena: verifies the chunked
        // emission covers every pair and measures the steady-state
        // per-worker arena capacity for the exact accounting below.
        let mut arena = ChunkArena::new();
        let mut walked = 0u64;
        for chunk in stream.chunks(chunk_pairs) {
            stream.extract_chunk(chunk, &mut arena);
            walked += arena.pairs().len() as u64;
        }
        assert_eq!(walked, pairs_u64, "scal-{n}: chunk walk lost pairs");
        let streamed_bytes = stream.aggregate_bytes() + threads * arena.capacity_bytes();
        drop(arena);

        let stream_context = StreamFeatureContext::new(&stats, stream.lcp_table());
        let mut streamed_config = ScoreboardConfig::default();
        if tile_override > 0 {
            streamed_config.tile_entities = Some(tile_override);
        }
        let start = Instant::now();
        let streamed_scores = FeatureMatrix::score_stream_with(
            &stream_context,
            &stream,
            set,
            threads,
            &streamed_config,
            chunk_pairs,
            score,
        );
        let streamed_s = start.elapsed().as_secs_f64();
        drop(stream_context);
        drop(stream);

        // Timed end-to-end streamed phase: stats → probabilities, the unit
        // of work the pipeline actually performs (the fused pass re-derives
        // pairs every rep; the materialised twin below pays the same
        // extraction inside `CandidatePairs::from_stats`).  Best-of-N.
        let mut streamed_total_s = f64::INFINITY;
        for _ in 0..repetitions {
            let start = Instant::now();
            let stream = CandidateStream::from_stats(&stats, threads);
            let stream_context = StreamFeatureContext::new(&stats, stream.lcp_table());
            criterion::black_box(FeatureMatrix::score_stream_with(
                &stream_context,
                &stream,
                set,
                threads,
                &streamed_config,
                chunk_pairs,
                score,
            ));
            streamed_total_s = streamed_total_s.min(start.elapsed().as_secs_f64());
        }
        let rss_streamed = peak_rss_json();

        // --- Materialised phase. ---
        let start = Instant::now();
        let candidates = CandidatePairs::from_stats(&stats, threads);
        let candidates_s = start.elapsed().as_secs_f64();
        let pairs = candidates.len();
        assert_eq!(pairs as u64, pairs_u64, "scal-{n}: pair totals diverged");
        let materialised_bytes = candidates.index_bytes();
        let context = FeatureContext::new(&stats, &candidates);

        let mut tiled_config = ScoreboardConfig::default();
        if tile_override > 0 {
            tiled_config.tile_entities = Some(tile_override);
        }
        let flat_config = ScoreboardConfig::flat();

        // Correctness gate 1: bit-identical probabilities across all three
        // modes.  The scoreboard metrics live on the global er-obs registry
        // now, so each engine's run is bracketed by a reset + snapshot to
        // read exact per-phase values (the bench is sequential).
        reset_scoreboard_metrics();
        let tiled_scores =
            FeatureMatrix::score_rows_with(&context, set, threads, &tiled_config, score);
        let tiled_metrics = scoreboard_metrics();
        reset_scoreboard_metrics();
        let flat_scores =
            FeatureMatrix::score_rows_with(&context, set, threads, &flat_config, score);
        let flat_metrics = scoreboard_metrics();
        assert_eq!(
            tiled_scores, flat_scores,
            "scal-{n}: tiled and flat scores diverged"
        );
        assert_eq!(
            streamed_scores, tiled_scores,
            "scal-{n}: streamed and materialised scores diverged"
        );
        drop(streamed_scores);
        drop(flat_scores);
        drop(tiled_scores);
        if n <= MATRIX_GATE_LIMIT {
            let tiled = FeatureMatrix::build_with(&context, set, threads, &tiled_config);
            let flat = FeatureMatrix::build_with(&context, set, threads, &flat_config);
            for (id, row) in flat.rows() {
                assert_eq!(tiled.row(id), row, "scal-{n}: matrix row {id:?} diverged");
            }
        }

        // Correctness gate 2: per-worker scratch is O(tile + contributions),
        // not O(num_entities).  The bound mirrors the board's layout — tile
        // accumulators (20 B/slot), the two counting-sort arrays (24 B per
        // contribution each, doubled for Vec growth slack), and the 4-byte
        // per-tile counters — plus fixed slack; a corpus-scaled board blows
        // straight through it.
        let tile = tiled_config.effective_tile(candidates.num_entities());
        let slots = tile.max(tiled_config.dense_remap_limit);
        let num_tiles = candidates.num_entities().div_ceil(tile);
        let scratch_tiled = tiled_metrics.scratch_bytes_hwm;
        let scratch_flat = flat_metrics.scratch_bytes_hwm;
        let bound = 64 * slots as u64
            + 96 * tiled_metrics.contributions_hwm
            + 16 * num_tiles as u64
            + 64 * 1024;
        assert!(
            scratch_tiled <= bound,
            "scal-{n}: tiled scratch {scratch_tiled} B exceeds O(tile) bound {bound} B"
        );
        assert!(
            scratch_tiled < scratch_flat,
            "scal-{n}: tiled scratch {scratch_tiled} B not below flat {scratch_flat} B"
        );

        // Memory gate: exact allocation accounting — the streamed candidate
        // phase (aggregate tables + per-worker arenas) must stay at most
        // half the materialised index, at every size.
        assert!(
            streamed_bytes * 2 <= materialised_bytes,
            "scal-{n}: streamed candidate footprint {streamed_bytes} B not ≤ half the \
             materialised index {materialised_bytes} B"
        );

        // Timed sweep: the fused feature + probability pass per
        // materialised engine, plus the end-to-end materialised twin of
        // the streamed phase (index build + scoring, best-of-N).
        let mut tiled_s = 0.0f64;
        let mut flat_s = 0.0f64;
        for _ in 0..repetitions {
            let start = Instant::now();
            criterion::black_box(FeatureMatrix::score_rows_with(
                &context,
                set,
                threads,
                &tiled_config,
                score,
            ));
            tiled_s += start.elapsed().as_secs_f64();
            let start = Instant::now();
            criterion::black_box(FeatureMatrix::score_rows_with(
                &context,
                set,
                threads,
                &flat_config,
                score,
            ));
            flat_s += start.elapsed().as_secs_f64();
        }
        tiled_s /= repetitions as f64;
        flat_s /= repetitions as f64;
        let mut materialised_total_s = f64::INFINITY;
        for _ in 0..repetitions {
            let start = Instant::now();
            let rebuilt = CandidatePairs::from_stats(&stats, threads);
            let rebuilt_context = FeatureContext::new(&stats, &rebuilt);
            criterion::black_box(FeatureMatrix::score_rows_with(
                &rebuilt_context,
                set,
                threads,
                &tiled_config,
                score,
            ));
            materialised_total_s = materialised_total_s.min(start.elapsed().as_secs_f64());
        }
        let rss_materialised = peak_rss_json();

        // Throughput gate: the end-to-end streamed phase keeps within 10%
        // of the end-to-end materialised phase — both modes pay one pair
        // extraction; the streamed one just never keeps its output.
        let streamed_pps = pairs as f64 / streamed_total_s.max(1e-9);
        let materialised_pps = pairs as f64 / materialised_total_s.max(1e-9);
        if timing_gate {
            assert!(
                streamed_pps >= 0.9 * materialised_pps,
                "scal-{n}: streamed {streamed_pps:.0} pairs/s regresses more than 10% below \
                 materialised {materialised_pps:.0} pairs/s (set GSMB_SCALA_GATE=0 on noisy hosts)"
            );
        }

        println!(
            "{:>10} {:>7.2}s {:>7.2}s {:>7.2}s {:>11} {:>8.2}s {:>8.2}s {:>8.2}s {:>9} KiB {:>9} KiB",
            n,
            gen_s,
            blocking_s,
            candidates_s,
            pairs,
            streamed_s,
            tiled_s,
            flat_s,
            streamed_bytes / 1024,
            materialised_bytes / 1024,
        );
        println!(
            "{:>10} chunk {} ({:.2}s build), tile {} ({} tiles), scratch {}/{} KiB, e2e {:.1} vs {:.1} Mpairs/s streamed/materialised",
            "",
            chunk_pairs,
            stream_build_s,
            tile,
            num_tiles,
            scratch_tiled / 1024,
            scratch_flat / 1024,
            streamed_pps / 1e6,
            materialised_pps / 1e6,
        );

        json_entries.push(format!(
            concat!(
                "  {{\n",
                "    \"entities\": {},\n",
                "    \"pairs\": {},\n",
                "    \"generate_s\": {:.3},\n",
                "    \"blocking_s\": {:.3},\n",
                "    \"candidates_s\": {:.3},\n",
                "    \"stream_build_s\": {:.3},\n",
                "    \"chunk_pairs\": {},\n",
                "    \"score_streamed_s\": {:.3},\n",
                "    \"score_tiled_s\": {:.3},\n",
                "    \"score_flat_s\": {:.3},\n",
                "    \"total_streamed_s\": {:.3},\n",
                "    \"total_materialised_s\": {:.3},\n",
                "    \"pairs_per_s_streamed\": {:.0},\n",
                "    \"pairs_per_s_materialised\": {:.0},\n",
                "    \"pairs_per_s_tiled\": {:.0},\n",
                "    \"pairs_per_s_flat\": {:.0},\n",
                "    \"candidates_peak_bytes\": {{\"streamed\": {}, \"materialised\": {}}},\n",
                "    \"tile_entities\": {},\n",
                "    \"num_tiles\": {},\n",
                "    \"scratch_tiled_bytes\": {},\n",
                "    \"scratch_flat_bytes\": {},\n",
                "    \"partners_hwm\": {},\n",
                "    \"contributions_hwm\": {},\n",
                "    \"dense_entities\": {},\n",
                "    \"radix_entities\": {},\n",
                "    \"peak_rss_baseline_bytes\": {},\n",
                "    \"peak_rss_after_streamed_bytes\": {},\n",
                "    \"peak_rss_bytes\": {}\n",
                "  }}"
            ),
            n,
            pairs,
            gen_s,
            blocking_s,
            candidates_s,
            stream_build_s,
            chunk_pairs,
            streamed_s,
            tiled_s,
            flat_s,
            streamed_total_s,
            materialised_total_s,
            streamed_pps,
            materialised_pps,
            pairs as f64 / tiled_s.max(1e-9),
            pairs as f64 / flat_s.max(1e-9),
            streamed_bytes,
            materialised_bytes,
            tile,
            num_tiles,
            scratch_tiled,
            scratch_flat,
            tiled_metrics.partners_hwm,
            tiled_metrics.contributions_hwm,
            tiled_metrics.dense_entities,
            tiled_metrics.radix_entities,
            rss_baseline,
            rss_streamed,
            rss_materialised,
        ));
    }

    Report::new("micro_scalability")
        .field("repetitions", repetitions)
        .field("threads", threads)
        .rows("sizes", json_entries)
        .write("BENCH_scalability.json");
}
