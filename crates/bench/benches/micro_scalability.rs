//! Micro-bench: corpus-size scalability of the cache-blocked radix
//! scoreboard (the 10^5 → 10^7-entity sweep).
//!
//! For each corpus size the bench generates a bounded-memory synthetic
//! Dirty corpus (`er_datasets::generate_scalability`), runs the standard
//! blocking workflow (Token Blocking + purging + filtering), extracts the
//! candidate pairs, and then drives the fused feature + scoring pass on
//! both scoreboard engines:
//!
//! * **tiled** — the cache-blocked radix scoreboard (the default engine),
//!   with a metrics sink recording the per-worker scratch high-water mark;
//! * **flat** — the retained `O(num_entities)`-scratch reference board.
//!
//! Correctness gates before any timing: the two engines must produce
//! bit-identical probabilities at every size, and the tiled engine's
//! scratch must stay `O(tile + contributions)` — it is asserted against an
//! explicit tile-derived bound *and* against a fraction of the flat
//! board's footprint, so a regression back to corpus-sized scratch fails
//! the bench rather than just slowing it down.
//!
//! Environment: `GSMB_SCALA_SIZES` (comma-separated entity counts, default
//! `100000,1000000`), `GSMB_SCALA_TILE` (tile width override, default
//! auto), `GSMB_REPS`.  Emits `BENCH_scalability.json` when
//! `GSMB_BENCH_JSON` is set.

use std::time::Instant;

use bench::{banner, bench_repetitions, env_usize, peak_rss_json, write_bench_json};
use er_blocking::{standard_blocking_workflow_csr, BlockStats, CandidatePairs};
use er_datasets::{generate_scalability, ScalabilityConfig};
use er_features::{FeatureContext, FeatureMatrix, FeatureSet, ScoreboardConfig, ScoreboardMetrics};

/// Corpus sizes above this skip the full-matrix equality gate (the score
/// vectors are still compared bit-for-bit at every size).
const MATRIX_GATE_LIMIT: usize = 200_000;

fn sizes() -> Vec<usize> {
    let spec = std::env::var("GSMB_SCALA_SIZES").unwrap_or_else(|_| "100000,1000000".to_string());
    let sizes: Vec<usize> = spec
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    assert!(!sizes.is_empty(), "GSMB_SCALA_SIZES parsed to no sizes");
    sizes
}

fn main() {
    banner("Micro-bench: radix-scoreboard scalability by corpus size");
    let repetitions = bench_repetitions();
    let threads = er_core::available_threads();
    let set = FeatureSet::blast_optimal();
    let tile_override = env_usize("GSMB_SCALA_TILE", 0);
    let score = |row: &[f64]| row.iter().sum::<f64>();
    let mut json_entries: Vec<String> = Vec::new();

    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>11} {:>9} {:>9} {:>12} {:>12}",
        "entities", "gen", "block", "cands", "pairs", "tiled", "flat", "scratch(t)", "scratch(f)"
    );

    for n in sizes() {
        let start = Instant::now();
        let dataset = generate_scalability(&ScalabilityConfig::at_scale(n, 0x5ca1))
            .unwrap_or_else(|e| panic!("failed to generate scal-{n}: {e}"));
        let gen_s = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let blocks = standard_blocking_workflow_csr(&dataset, threads);
        let blocking_s = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let stats = BlockStats::from_csr(&blocks);
        let candidates = CandidatePairs::from_stats(&stats, threads);
        let candidates_s = start.elapsed().as_secs_f64();
        let pairs = candidates.len();
        assert!(pairs > 0, "scal-{n}: no candidate pairs survived cleaning");
        let context = FeatureContext::new(&stats, &candidates);

        let tiled_metrics = ScoreboardMetrics::shared();
        let mut tiled_config = ScoreboardConfig::default().with_metrics(tiled_metrics.clone());
        if tile_override > 0 {
            tiled_config.tile_entities = Some(tile_override);
        }
        let flat_metrics = ScoreboardMetrics::shared();
        let flat_config = ScoreboardConfig::flat().with_metrics(flat_metrics.clone());

        // Correctness gate 1: bit-identical probabilities across engines.
        let tiled_scores =
            FeatureMatrix::score_rows_with(&context, set, threads, &tiled_config, score);
        let flat_scores =
            FeatureMatrix::score_rows_with(&context, set, threads, &flat_config, score);
        assert_eq!(
            tiled_scores, flat_scores,
            "scal-{n}: tiled and flat scores diverged"
        );
        drop(flat_scores);
        drop(tiled_scores);
        if n <= MATRIX_GATE_LIMIT {
            let tiled = FeatureMatrix::build_with(&context, set, threads, &tiled_config);
            let flat = FeatureMatrix::build_with(&context, set, threads, &flat_config);
            for (id, row) in flat.rows() {
                assert_eq!(tiled.row(id), row, "scal-{n}: matrix row {id:?} diverged");
            }
        }

        // Correctness gate 2: per-worker scratch is O(tile + contributions),
        // not O(num_entities).  The bound mirrors the board's layout — tile
        // accumulators (20 B/slot), the two counting-sort arrays (24 B per
        // contribution each, doubled for Vec growth slack), and the 4-byte
        // per-tile counters — plus fixed slack; a corpus-scaled board blows
        // straight through it.
        let tile = tiled_config.effective_tile(candidates.num_entities());
        let slots = tile.max(tiled_config.dense_remap_limit);
        let num_tiles = candidates.num_entities().div_ceil(tile);
        let scratch_tiled = tiled_metrics.scratch_bytes_hwm();
        let scratch_flat = flat_metrics.scratch_bytes_hwm();
        let bound =
            64 * slots + 96 * tiled_metrics.contributions_hwm() + 16 * num_tiles + 64 * 1024;
        assert!(
            scratch_tiled <= bound,
            "scal-{n}: tiled scratch {scratch_tiled} B exceeds O(tile) bound {bound} B"
        );
        assert!(
            scratch_tiled < scratch_flat,
            "scal-{n}: tiled scratch {scratch_tiled} B not below flat {scratch_flat} B"
        );

        // Timed sweep: the fused feature + probability pass per engine.
        let mut tiled_s = 0.0f64;
        let mut flat_s = 0.0f64;
        for _ in 0..repetitions {
            let start = Instant::now();
            criterion::black_box(FeatureMatrix::score_rows_with(
                &context,
                set,
                threads,
                &tiled_config,
                score,
            ));
            tiled_s += start.elapsed().as_secs_f64();
            let start = Instant::now();
            criterion::black_box(FeatureMatrix::score_rows_with(
                &context,
                set,
                threads,
                &flat_config,
                score,
            ));
            flat_s += start.elapsed().as_secs_f64();
        }
        tiled_s /= repetitions as f64;
        flat_s /= repetitions as f64;

        println!(
            "{:>10} {:>7.2}s {:>7.2}s {:>7.2}s {:>11} {:>8.2}s {:>8.2}s {:>9} KiB {:>9} KiB",
            n,
            gen_s,
            blocking_s,
            candidates_s,
            pairs,
            tiled_s,
            flat_s,
            scratch_tiled / 1024,
            scratch_flat / 1024,
        );
        println!(
            "{:>10} tile {} ({} tiles), dense/radix entities {}/{}, partners hwm {}, contributions hwm {}, {:.1} Mpairs/s tiled vs {:.1} Mpairs/s flat",
            "",
            tile,
            num_tiles,
            tiled_metrics.dense_entities(),
            tiled_metrics.radix_entities(),
            tiled_metrics.partners_hwm(),
            tiled_metrics.contributions_hwm(),
            pairs as f64 / tiled_s.max(1e-9) / 1e6,
            pairs as f64 / flat_s.max(1e-9) / 1e6,
        );

        json_entries.push(format!(
            concat!(
                "  {{\n",
                "    \"entities\": {},\n",
                "    \"pairs\": {},\n",
                "    \"generate_s\": {:.3},\n",
                "    \"blocking_s\": {:.3},\n",
                "    \"candidates_s\": {:.3},\n",
                "    \"score_tiled_s\": {:.3},\n",
                "    \"score_flat_s\": {:.3},\n",
                "    \"pairs_per_s_tiled\": {:.0},\n",
                "    \"pairs_per_s_flat\": {:.0},\n",
                "    \"tile_entities\": {},\n",
                "    \"num_tiles\": {},\n",
                "    \"scratch_tiled_bytes\": {},\n",
                "    \"scratch_flat_bytes\": {},\n",
                "    \"partners_hwm\": {},\n",
                "    \"contributions_hwm\": {},\n",
                "    \"dense_entities\": {},\n",
                "    \"radix_entities\": {},\n",
                "    \"peak_rss_bytes\": {}\n",
                "  }}"
            ),
            n,
            pairs,
            gen_s,
            blocking_s,
            candidates_s,
            tiled_s,
            flat_s,
            pairs as f64 / tiled_s.max(1e-9),
            pairs as f64 / flat_s.max(1e-9),
            tile,
            num_tiles,
            scratch_tiled,
            scratch_flat,
            tiled_metrics.partners_hwm(),
            tiled_metrics.contributions_hwm(),
            tiled_metrics.dense_entities(),
            tiled_metrics.radix_entities(),
            peak_rss_json(),
        ));
    }

    write_bench_json(
        "BENCH_scalability.json",
        &format!(
            "{{\n\"bench\": \"micro_scalability\",\n\"repetitions\": {},\n\"threads\": {},\n\"peak_rss_bytes\": {},\n\"sizes\": [\n{}\n]\n}}\n",
            repetitions,
            threads,
            peak_rss_json(),
            json_entries.join(",\n")
        ),
    );
}
