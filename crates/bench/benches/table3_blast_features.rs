//! Table 3: the top-10 feature sets for BLAST.
//!
//! Sweeps feature-set combinations, averages the effectiveness over several
//! datasets and prints the 10 sets with the highest F1.  By default only the
//! first `GSMB_SWEEP_DATASETS` (4) datasets and every combination of up to 5
//! schemes are evaluated to keep the default run short; set
//! `GSMB_FULL_SWEEP=1` for all 255 combinations.
//!
//! Expected shape: the best sets combine CF-IBF and RACCB with the new
//! normalised schemes (RS, NRS, WJS), all with nearly identical F1.

use bench::{banner, bench_repetitions, env_usize, feature_sweep, prepare_subset};
use er_features::FeatureSet;
use meta_blocking::pruning::AlgorithmKind;

fn main() {
    banner("Table 3: top-10 feature sets for BLAST");
    let prepared = prepare_subset(env_usize("GSMB_SWEEP_DATASETS", 4));
    let repetitions = bench_repetitions().min(3);
    let results = feature_sweep(AlgorithmKind::Blast, &prepared, repetitions);

    println!(
        "{:<4} {:<45} {:>8} {:>10} {:>8}",
        "ID", "feature set", "recall", "precision", "F1"
    );
    for (set, eff) in results.iter().take(10) {
        println!(
            "{:<4} {:<45} {:>8.4} {:>10.4} {:>8.4}",
            set.id(),
            set.to_string(),
            eff.recall,
            eff.precision,
            eff.f1
        );
    }
    println!(
        "\npaper-selected set {} scores F1 = {:.4} (best observed = {:.4})",
        FeatureSet::blast_optimal(),
        results
            .iter()
            .find(|(s, _)| *s == FeatureSet::blast_optimal())
            .map(|(_, e)| e.f1)
            .unwrap_or(f64::NAN),
        results.first().map(|(_, e)| e.f1).unwrap_or(f64::NAN)
    );
}
