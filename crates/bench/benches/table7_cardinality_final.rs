//! Table 7: per-dataset comparison of the final cardinality-based
//! configurations.
//!
//! (a) RCNP with 50 balanced labelled instances and
//!     {CF-IBF, RACCB, JS, LCP, WJS};
//! (b) CNP1: CNP with the same 50 instances and the same feature set;
//! (c) CNP2: the original Supervised Meta-blocking configuration — feature set
//!     {CF-IBF, RACCB, JS, LCP} and 5% of the positive pairs per class.
//!
//! Expected shape: RCNP achieves the best precision and F1 almost everywhere
//! and is several times faster than CNP2.

use bench::{banner, bench_repetitions, prepare_all};
use er_eval::experiment::{run_averaged, PreparedDataset, RunConfig};
use er_eval::tables::{render_table, TableRow};
use er_features::FeatureSet;
use er_learn::paper_baseline_per_class;
use meta_blocking::pruning::AlgorithmKind;

fn run_table(
    title: &str,
    prepared: &[PreparedDataset],
    algorithm: AlgorithmKind,
    feature_set: FeatureSet,
    per_class: impl Fn(&PreparedDataset) -> usize,
    repetitions: usize,
) {
    let mut rows = Vec::new();
    for dataset in prepared {
        let config = RunConfig {
            feature_set,
            per_class: per_class(dataset),
            ..Default::default()
        };
        match run_averaged(dataset, algorithm, &config, repetitions) {
            Ok(result) => rows.push(
                TableRow::new(dataset.dataset.name.clone(), result.effectiveness)
                    .with_rt(result.mean_rt_seconds)
                    .with_extra("retained", format!("{:.0}", result.mean_retained)),
            ),
            Err(e) => println!("{}: skipped ({e})", dataset.dataset.name),
        }
    }
    print!("{}", render_table(title, &rows));
    println!();
}

fn main() {
    banner("Table 7: cardinality-based algorithms, final configurations");
    let prepared = prepare_all();
    let repetitions = bench_repetitions();

    run_table(
        "(a) RCNP, 50 labelled instances, {CF-IBF, RACCB, JS, LCP, WJS}",
        &prepared,
        AlgorithmKind::Rcnp,
        FeatureSet::rcnp_optimal(),
        |_| 25,
        repetitions,
    );
    run_table(
        "(b) CNP1, 50 labelled instances, {CF-IBF, RACCB, JS, LCP, WJS}",
        &prepared,
        AlgorithmKind::Cnp,
        FeatureSet::rcnp_optimal(),
        |_| 25,
        repetitions,
    );
    run_table(
        "(c) CNP2, 5% of positives per class, {CF-IBF, RACCB, JS, LCP}",
        &prepared,
        AlgorithmKind::Cnp,
        FeatureSet::original(),
        |d| paper_baseline_per_class(d.dataset.num_duplicates()),
        repetitions,
    );
}
