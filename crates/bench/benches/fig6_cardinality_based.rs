//! Figure 6: average performance of the cardinality-based pruning algorithms.
//!
//! Same setup as Figure 5 (original feature set, 500 labelled pairs).
//! Expected shape: RCNP clearly wins on precision and F1 at a small recall
//! cost relative to CEP and CNP.

use bench::{banner, bench_repetitions, prepare_all};
use er_eval::experiment::{run_averaged, RunConfig};
use er_eval::metrics::Effectiveness;
use er_features::FeatureSet;
use meta_blocking::pruning::AlgorithmKind;

fn main() {
    banner("Figure 6: cardinality-based pruning algorithms (avg over all datasets)");
    let prepared = prepare_all();
    let repetitions = bench_repetitions();
    let config = RunConfig {
        feature_set: FeatureSet::original(),
        per_class: 250,
        ..Default::default()
    };

    println!(
        "{:<8} {:>8} {:>10} {:>8}",
        "algo", "recall", "precision", "F1"
    );
    for algorithm in AlgorithmKind::cardinality_based() {
        let mut per_dataset = Vec::new();
        for dataset in &prepared {
            let result =
                run_averaged(dataset, algorithm, &config, repetitions).expect("experiment failed");
            per_dataset.push(result.effectiveness);
        }
        let mean = Effectiveness::mean(&per_dataset);
        println!(
            "{:<8} {:>8.4} {:>10.4} {:>8.4}",
            algorithm.name(),
            mean.recall,
            mean.precision,
            mean.f1
        );
    }
}
