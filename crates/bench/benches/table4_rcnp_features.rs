//! Table 4: the top-10 feature sets for RCNP.
//!
//! Same sweep as Table 3 but for the cardinality-based RCNP algorithm.
//! Expected shape: the top sets include CF-IBF, RACCB and LCP combined with
//! the new normalised schemes, all with nearly identical F1.

use bench::{banner, bench_repetitions, env_usize, feature_sweep, prepare_subset};
use er_features::FeatureSet;
use meta_blocking::pruning::AlgorithmKind;

fn main() {
    banner("Table 4: top-10 feature sets for RCNP");
    let prepared = prepare_subset(env_usize("GSMB_SWEEP_DATASETS", 4));
    let repetitions = bench_repetitions().min(3);
    let results = feature_sweep(AlgorithmKind::Rcnp, &prepared, repetitions);

    println!(
        "{:<4} {:<50} {:>8} {:>10} {:>8}",
        "ID", "feature set", "recall", "precision", "F1"
    );
    for (set, eff) in results.iter().take(10) {
        println!(
            "{:<4} {:<50} {:>8.4} {:>10.4} {:>8.4}",
            set.id(),
            set.to_string(),
            eff.recall,
            eff.precision,
            eff.f1
        );
    }
    println!(
        "\npaper-selected set {} scores F1 = {:.4} (best observed = {:.4})",
        FeatureSet::rcnp_optimal(),
        results
            .iter()
            .find(|(s, _)| *s == FeatureSet::rcnp_optimal())
            .map(|(_, e)| e.f1)
            .unwrap_or(f64::NAN),
        results.first().map(|(_, e)| e.f1).unwrap_or(f64::NAN)
    );
}
