//! Micro-bench: the unified parallel block-building engine.
//!
//! Sweeps thread counts through the sharded-interner CSR builder and compares
//! against the retained sequential reference builders
//! (`er_blocking::reference`), for all three redundancy-positive schemes, on
//! the two largest Clean-Clean catalog datasets (the Figure 7/9 workload).
//! Every engine run is checked for bit-identical output against the
//! reference before timing, so the speedups below never trade determinism
//! for throughput.
//!
//! Emits `BENCH_blocking.json` when `GSMB_BENCH_JSON` is set.

use bench::{
    assert_obs_overhead, banner, bench_catalog_options, bench_repetitions, report::Report,
};
use er_blocking::reference;
use er_blocking::{
    qgrams_blocking_csr, standard_blocking_workflow_csr, suffix_array_blocking_csr,
    token_blocking_csr, BlockCollection, SuffixArrayConfig,
};
use er_core::Dataset;
use er_datasets::{generate_catalog_dataset, DatasetName};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn time(repetitions: usize, mut f: impl FnMut()) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..repetitions {
        f();
    }
    start.elapsed().as_secs_f64() / repetitions as f64
}

fn json_row(dataset: &str, scheme: &str, reference_s: f64, engine_s: &[f64]) -> String {
    let threads = THREAD_COUNTS
        .iter()
        .zip(engine_s)
        .map(|(t, s)| format!("\"{t}\": {s:.4}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        concat!(
            "  {{\n",
            "    \"dataset\": \"{}\",\n",
            "    \"scheme\": \"{}\",\n",
            "    \"reference_s\": {:.4},\n",
            "    \"engine_s\": {{ {} }}\n",
            "  }}"
        ),
        dataset, scheme, reference_s, threads
    )
}

/// Benchmarks one scheme: the sequential reference against the engine at
/// every thread count, asserting bit-identical block output.  Returns the
/// JSON artifact row.
fn sweep(
    scheme: &str,
    dataset_name: &str,
    dataset: &Dataset,
    repetitions: usize,
    reference: &dyn Fn(&Dataset) -> BlockCollection,
    engine: &dyn Fn(&Dataset, usize) -> BlockCollection,
) -> String {
    let expected = reference(dataset);
    for threads in THREAD_COUNTS {
        let produced = engine(dataset, threads);
        assert_eq!(
            produced.blocks, expected.blocks,
            "{scheme}: engine output diverged at {threads} threads"
        );
    }

    let base = time(repetitions, || {
        criterion::black_box(reference(dataset));
    });
    print!("{scheme:<14} {base:>11.3}s");
    let mut engine_s = Vec::with_capacity(THREAD_COUNTS.len());
    for threads in THREAD_COUNTS {
        let t = time(repetitions, || {
            criterion::black_box(engine(dataset, threads));
        });
        print!(" {:>7.3}s ({:>4.2}x)", t, base / t);
        engine_s.push(t);
    }
    println!();
    json_row(dataset_name, scheme, base, &engine_s)
}

fn main() {
    banner("Micro-bench: parallel block building (reference vs engine, by thread count)");
    let repetitions = bench_repetitions();
    let options = bench_catalog_options();
    let suffix_config = SuffixArrayConfig::default();
    let mut json_entries: Vec<String> = Vec::new();
    let mut gate_dataset: Option<Dataset> = None;

    for name in DatasetName::largest_two() {
        let dataset = generate_catalog_dataset(name, &options)
            .unwrap_or_else(|e| panic!("failed to generate {name}: {e}"));
        println!("\n--- {} ({} entities) ---", name, dataset.num_entities());
        println!(
            "{:<14} {:>12} {:>16} {:>16} {:>16} {:>16}",
            "scheme", "reference", "t=1", "t=2", "t=4", "t=8"
        );
        let dataset_name = name.to_string();
        json_entries.push(sweep(
            "token",
            &dataset_name,
            &dataset,
            repetitions,
            &reference::token_blocking,
            &|ds, t| token_blocking_csr(ds, t).to_block_collection(),
        ));
        json_entries.push(sweep(
            "qgrams(3)",
            &dataset_name,
            &dataset,
            repetitions,
            &|ds| reference::qgrams_blocking(ds, 3),
            &|ds, t| qgrams_blocking_csr(ds, 3, t).to_block_collection(),
        ));
        json_entries.push(sweep(
            "suffix(4,50)",
            &dataset_name,
            &dataset,
            repetitions,
            &|ds| reference::suffix_array_blocking(ds, suffix_config),
            &|ds, t| suffix_array_blocking_csr(ds, suffix_config, t).to_block_collection(),
        ));

        // The full standard workflow (blocking + purging + filtering), CSR
        // end-to-end, without materialising the nested view.
        let base = time(repetitions, || {
            criterion::black_box(er_blocking::block_filtering(
                &er_blocking::block_purging(&reference::token_blocking(&dataset)),
                er_blocking::DEFAULT_FILTERING_RATIO,
            ));
        });
        print!("{:<14} {base:>11.3}s", "workflow");
        let mut engine_s = Vec::with_capacity(THREAD_COUNTS.len());
        for threads in THREAD_COUNTS {
            let t = time(repetitions, || {
                criterion::black_box(standard_blocking_workflow_csr(&dataset, threads));
            });
            print!(" {:>7.3}s ({:>4.2}x)", t, base / t);
            engine_s.push(t);
        }
        println!();
        json_entries.push(json_row(&dataset_name, "workflow", base, &engine_s));
        gate_dataset = Some(dataset);
    }

    // Overhead gate: the instrumented hot loop (build → scatter → emit,
    // with its batched er-obs updates) must cost the same as with the
    // layer disabled, within 2%.
    println!();
    let gate_dataset = gate_dataset.expect("at least one dataset was benchmarked");
    let (disabled_s, enabled_s) = assert_obs_overhead("token_blocking_csr", 5, || {
        criterion::black_box(token_blocking_csr(&gate_dataset, 1));
    });

    Report::new("micro_blocking")
        .field("repetitions", repetitions)
        .field("obs_overhead_disabled_s", format!("{disabled_s:.4}"))
        .field("obs_overhead_enabled_s", format!("{enabled_s:.4}"))
        .rows("rows", json_entries)
        .write("BENCH_blocking.json");
}
