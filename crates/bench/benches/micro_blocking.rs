//! Micro-bench: the unified parallel block-building engine.
//!
//! Sweeps thread counts through the sharded-interner CSR builder and compares
//! against the retained sequential reference builders
//! (`er_blocking::reference`), for all three redundancy-positive schemes, on
//! the two largest Clean-Clean catalog datasets (the Figure 7/9 workload).
//! Every engine run is checked for bit-identical output against the
//! reference before timing, so the speedups below never trade determinism
//! for throughput.

use bench::{banner, bench_catalog_options, bench_repetitions};
use er_blocking::reference;
use er_blocking::{
    qgrams_blocking_csr, standard_blocking_workflow_csr, suffix_array_blocking_csr,
    token_blocking_csr, BlockCollection, SuffixArrayConfig,
};
use er_core::Dataset;
use er_datasets::{generate_catalog_dataset, DatasetName};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn time(repetitions: usize, mut f: impl FnMut()) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..repetitions {
        f();
    }
    start.elapsed().as_secs_f64() / repetitions as f64
}

/// Benchmarks one scheme: the sequential reference against the engine at
/// every thread count, asserting bit-identical block output.
fn sweep(
    scheme: &str,
    dataset: &Dataset,
    repetitions: usize,
    reference: &dyn Fn(&Dataset) -> BlockCollection,
    engine: &dyn Fn(&Dataset, usize) -> BlockCollection,
) {
    let expected = reference(dataset);
    for threads in THREAD_COUNTS {
        let produced = engine(dataset, threads);
        assert_eq!(
            produced.blocks, expected.blocks,
            "{scheme}: engine output diverged at {threads} threads"
        );
    }

    let base = time(repetitions, || {
        criterion::black_box(reference(dataset));
    });
    print!("{scheme:<14} {base:>11.3}s");
    for threads in THREAD_COUNTS {
        let t = time(repetitions, || {
            criterion::black_box(engine(dataset, threads));
        });
        print!(" {:>7.3}s ({:>4.2}x)", t, base / t);
    }
    println!();
}

fn main() {
    banner("Micro-bench: parallel block building (reference vs engine, by thread count)");
    let repetitions = bench_repetitions();
    let options = bench_catalog_options();
    let suffix_config = SuffixArrayConfig::default();

    for name in DatasetName::largest_two() {
        let dataset = generate_catalog_dataset(name, &options)
            .unwrap_or_else(|e| panic!("failed to generate {name}: {e}"));
        println!("\n--- {} ({} entities) ---", name, dataset.num_entities());
        println!(
            "{:<14} {:>12} {:>16} {:>16} {:>16} {:>16}",
            "scheme", "reference", "t=1", "t=2", "t=4", "t=8"
        );
        sweep(
            "token",
            &dataset,
            repetitions,
            &reference::token_blocking,
            &|ds, t| token_blocking_csr(ds, t).to_block_collection(),
        );
        sweep(
            "qgrams(3)",
            &dataset,
            repetitions,
            &|ds| reference::qgrams_blocking(ds, 3),
            &|ds, t| qgrams_blocking_csr(ds, 3, t).to_block_collection(),
        );
        sweep(
            "suffix(4,50)",
            &dataset,
            repetitions,
            &|ds| reference::suffix_array_blocking(ds, suffix_config),
            &|ds, t| suffix_array_blocking_csr(ds, suffix_config, t).to_block_collection(),
        );

        // The full standard workflow (blocking + purging + filtering), CSR
        // end-to-end, without materialising the nested view.
        let base = time(repetitions, || {
            criterion::black_box(er_blocking::block_filtering(
                &er_blocking::block_purging(&reference::token_blocking(&dataset)),
                er_blocking::DEFAULT_FILTERING_RATIO,
            ));
        });
        print!("{:<14} {base:>11.3}s", "workflow");
        for threads in THREAD_COUNTS {
            let t = time(repetitions, || {
                criterion::black_box(standard_blocking_workflow_csr(&dataset, threads));
            });
            print!(" {:>7.3}s ({:>4.2}x)", t, base / t);
        }
        println!();
    }
}
