//! Figure 18: speedup of the scalability analysis.
//!
//! Speedup extrapolates the run-time of the smallest Dirty ER dataset to the
//! larger ones: `speedup = (|C2|/|C1|) · (RT1/RT2)`, with values close to 1
//! indicating linear scalability.  Expected shape: BLAST and RCNP stay closer
//! to 1 on the largest datasets than BCl and CNP.

use bench::{banner, bench_catalog_options, env_usize};
use er_eval::scalability::{run_scalability, speedup_series};
use meta_blocking::pruning::AlgorithmKind;

fn main() {
    banner("Figure 18: speedup relative to the smallest Dirty ER dataset");
    let options = bench_catalog_options();
    let repetitions = env_usize("GSMB_SCALABILITY_REPS", 1);
    let algorithms = [
        AlgorithmKind::Bcl,
        AlgorithmKind::Blast,
        AlgorithmKind::Cnp,
        AlgorithmKind::Rcnp,
    ];
    let points =
        run_scalability(&options, &algorithms, repetitions).expect("scalability run failed");

    // Header: the larger datasets.
    let datasets: Vec<String> = points
        .iter()
        .filter(|p| p.algorithm == algorithms[0])
        .skip(1)
        .map(|p| p.dataset.clone())
        .collect();
    print!("{:<8}", "algo");
    for name in &datasets {
        print!(" {name:>10}");
    }
    println!();
    for algorithm in algorithms {
        let series = speedup_series(&points, algorithm);
        print!("{:<8}", algorithm.name());
        for (_, value) in &series {
            print!(" {value:>10.3}");
        }
        println!();
    }
    println!("\nvalues close to 1.0 indicate linear scalability");
}
