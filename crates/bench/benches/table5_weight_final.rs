//! Table 5: per-dataset comparison of the final weight-based configurations.
//!
//! (a) BLAST with 50 balanced labelled instances and {CF-IBF, RACCB, RS, NRS};
//! (b) BCl1: the binary-classifier baseline with the *same* 50 instances and
//!     the same new feature set;
//! (c) BCl2: the original Supervised Meta-blocking configuration — feature set
//!     {CF-IBF, RACCB, JS, LCP} and a training set of 5% of the positive
//!     pairs per class.
//!
//! Expected shape: BLAST has the best recall almost everywhere and is several
//! times faster than BCl2 (no LCP, tiny training set).

use bench::{banner, bench_repetitions, prepare_all};
use er_eval::experiment::{run_averaged, PreparedDataset, RunConfig};
use er_eval::tables::{render_table, TableRow};
use er_features::FeatureSet;
use er_learn::paper_baseline_per_class;
use meta_blocking::pruning::AlgorithmKind;

fn run_table(
    title: &str,
    prepared: &[PreparedDataset],
    algorithm: AlgorithmKind,
    feature_set: FeatureSet,
    per_class: impl Fn(&PreparedDataset) -> usize,
    repetitions: usize,
) {
    let mut rows = Vec::new();
    for dataset in prepared {
        let config = RunConfig {
            feature_set,
            per_class: per_class(dataset),
            ..Default::default()
        };
        match run_averaged(dataset, algorithm, &config, repetitions) {
            Ok(result) => rows.push(
                TableRow::new(dataset.dataset.name.clone(), result.effectiveness)
                    .with_rt(result.mean_rt_seconds)
                    .with_extra("retained", format!("{:.0}", result.mean_retained)),
            ),
            Err(e) => println!("{}: skipped ({e})", dataset.dataset.name),
        }
    }
    print!("{}", render_table(title, &rows));
    println!();
}

fn main() {
    banner("Table 5: weight-based algorithms, final configurations");
    let prepared = prepare_all();
    let repetitions = bench_repetitions();

    run_table(
        "(a) BLAST, 50 labelled instances, {CF-IBF, RACCB, RS, NRS}",
        &prepared,
        AlgorithmKind::Blast,
        FeatureSet::blast_optimal(),
        |_| 25,
        repetitions,
    );
    run_table(
        "(b) BCl1, 50 labelled instances, {CF-IBF, RACCB, RS, NRS}",
        &prepared,
        AlgorithmKind::Bcl,
        FeatureSet::blast_optimal(),
        |_| 25,
        repetitions,
    );
    run_table(
        "(c) BCl2, 5% of positives per class, {CF-IBF, RACCB, JS, LCP}",
        &prepared,
        AlgorithmKind::Bcl,
        FeatureSet::original(),
        |d| paper_baseline_per_class(d.dataset.num_duplicates()),
        repetitions,
    );
}
