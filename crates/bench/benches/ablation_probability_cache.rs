//! Ablation: cached probabilities vs re-scoring on every pass.
//!
//! The paper's pseudo-code calls `M.getProbability(c_ij)` in each of the two
//! passes of the weight-based algorithms.  This bench compares that literal
//! strategy ([`ModelScorer`]) against caching every probability once
//! ([`CachedScores`]) for WEP and BLAST on the largest dataset, justifying the
//! pipeline's choice to cache.

use std::time::Instant;

use bench::{banner, prepare};
use er_core::PairId;
use er_datasets::DatasetName;
use er_eval::experiment::{train_and_score, RunConfig};
use er_features::FeatureSet;
use er_learn::balanced_undersample;
use er_learn::{Classifier, LogisticRegression, LogisticRegressionConfig, TrainingSet};
use meta_blocking::pruning::AlgorithmKind;
use meta_blocking::scoring::ModelScorer;

fn main() {
    banner("Ablation: probability cache vs per-pass re-scoring");
    let prepared = prepare(DatasetName::Movies);
    let feature_set = FeatureSet::blast_optimal();
    let (matrix, _) = prepared.build_features(feature_set);
    let config = RunConfig {
        feature_set,
        per_class: 25,
        ..Default::default()
    };

    // Train a model directly so the same model backs both strategies.
    let mut rng = er_core::seeded_rng(config.seed);
    let sample = balanced_undersample(
        prepared.candidates.pairs(),
        &prepared.dataset.ground_truth,
        config.per_class,
        &mut rng,
    )
    .expect("sampling failed");
    let mut training = TrainingSet::new();
    for (&pair_index, &label) in sample.pair_indices.iter().zip(&sample.labels) {
        training.push(matrix.row(PairId::from(pair_index)).to_vec(), label);
    }
    let model = LogisticRegression::fit(&LogisticRegressionConfig::default(), &training)
        .expect("training failed");

    for algorithm in [AlgorithmKind::Wep, AlgorithmKind::Blast] {
        let pruner = algorithm.build_csr(&prepared.blocks);

        let scorer = ModelScorer::new(&model, &matrix);
        let start = Instant::now();
        let on_the_fly = pruner.prune(&prepared.candidates, &scorer);
        let fly_time = start.elapsed();

        let start = Instant::now();
        let (cached, _, _) =
            train_and_score(&prepared, &matrix, &config, config.seed).expect("scoring failed");
        let cache_build = start.elapsed();
        let start = Instant::now();
        let with_cache = pruner.prune(&prepared.candidates, &cached);
        let cache_prune = start.elapsed();

        println!(
            "{:<6} re-score both passes: {:>8.3}s | cache build {:>8.3}s + prune {:>8.3}s (retained {} / {})",
            algorithm.name(),
            fly_time.as_secs_f64(),
            cache_build.as_secs_f64(),
            cache_prune.as_secs_f64(),
            on_the_fly.len(),
            with_cache.len(),
        );
    }
}
