//! Figures 7 and 9: run-time of the paper's top-10 feature sets on the two
//! largest datasets (Movies and WalmartAmazon analogues).
//!
//! The measured time covers feature generation, training, scoring and pruning
//! (the paper's RT minus the fixed block-restructuring overhead).  Expected
//! shape: for BLAST the LCP-free sets are clearly cheaper; for RCNP all sets
//! include LCP and the differences are small.

use bench::{banner, bench_repetitions, prepare};
use er_datasets::DatasetName;
use er_eval::experiment::{run_once, PreparedDataset, RunConfig};
use er_features::{FeatureSet, Scheme};
use meta_blocking::pruning::AlgorithmKind;

/// The top-10 BLAST feature sets of Table 3 in the paper.
fn blast_top10() -> Vec<FeatureSet> {
    use Scheme::*;
    vec![
        FeatureSet::from_schemes([CfIbf, Raccb, Js, Rs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Js, Nrs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Js, Wjs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Rs, Nrs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Rs, Wjs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Nrs, Wjs]),
        FeatureSet::from_schemes([CfIbf, Js, Rs, Wjs]),
        FeatureSet::from_schemes([CfIbf, Js, Nrs, Wjs]),
        FeatureSet::from_schemes([CfIbf, Rs, Nrs, Wjs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Js, Rs, Nrs, Wjs]),
    ]
}

/// The top-10 RCNP feature sets of Table 4 in the paper.
fn rcnp_top10() -> Vec<FeatureSet> {
    use Scheme::*;
    vec![
        FeatureSet::from_schemes([CfIbf, Raccb, Js, Lcp, Rs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Js, Lcp, Wjs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Lcp, Rs, Nrs]),
        FeatureSet::from_schemes([CfIbf, Js, Lcp, Rs, Nrs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Js, Lcp, Rs, Nrs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Js, Lcp, Rs, Wjs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Js, Lcp, Nrs, Wjs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Lcp, Rs, Nrs, Wjs]),
        FeatureSet::from_schemes([CfIbf, Js, Lcp, Rs, Nrs, Wjs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Js, Lcp, Rs, Nrs, Wjs]),
    ]
}

fn measure(
    title: &str,
    algorithm: AlgorithmKind,
    sets: &[FeatureSet],
    datasets: &[(&str, &PreparedDataset)],
    repetitions: usize,
) {
    println!("\n--- {title} ---");
    println!("{:<50} {:>14} {:>16}", "feature set", datasets[0].0, datasets[1].0);
    for &set in sets {
        let mut cells = Vec::new();
        for &(_, prepared) in datasets {
            let config = RunConfig {
                feature_set: set,
                per_class: 250,
                ..Default::default()
            };
            let mut total = 0.0;
            for rep in 0..repetitions {
                let config = RunConfig {
                    seed: er_core::rng::derive_seed(config.seed, rep as u64),
                    ..config.clone()
                };
                let result = run_once(prepared, algorithm, &config).expect("run failed");
                total += result.total_rt().as_secs_f64();
            }
            cells.push(total / repetitions as f64);
        }
        println!(
            "{:<50} {:>12.3}s {:>14.3}s",
            set.to_string(),
            cells[0],
            cells[1]
        );
    }
}

fn main() {
    banner("Figures 7 & 9: run-time of the top-10 feature sets (largest datasets)");
    let repetitions = bench_repetitions();
    let movies = prepare(DatasetName::Movies);
    let walmart = prepare(DatasetName::WalmartAmazon);
    let datasets = [("Movies", &movies), ("WalmartAmazon", &walmart)];

    measure(
        "Figure 7: BLAST",
        AlgorithmKind::Blast,
        &blast_top10(),
        &datasets,
        repetitions,
    );
    measure(
        "Figure 9: RCNP",
        AlgorithmKind::Rcnp,
        &rcnp_top10(),
        &datasets,
        repetitions,
    );
}
