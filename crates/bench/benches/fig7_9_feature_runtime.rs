//! Figures 7 and 9: run-time of the paper's top-10 feature sets on the two
//! largest datasets (Movies and WalmartAmazon analogues).
//!
//! The measured time covers feature generation, training, scoring and pruning
//! (the paper's RT minus the fixed block-restructuring overhead).  Expected
//! shape: for BLAST the LCP-free sets are clearly cheaper; for RCNP all sets
//! include LCP and the differences are small.

use bench::{banner, bench_repetitions, prepare};
use er_datasets::DatasetName;
use er_eval::experiment::{run_once, PreparedDataset, RunConfig};
use er_features::{FeatureSet, Scheme};
use meta_blocking::pruning::AlgorithmKind;

/// The top-10 BLAST feature sets of Table 3 in the paper.
fn blast_top10() -> Vec<FeatureSet> {
    use Scheme::*;
    vec![
        FeatureSet::from_schemes([CfIbf, Raccb, Js, Rs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Js, Nrs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Js, Wjs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Rs, Nrs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Rs, Wjs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Nrs, Wjs]),
        FeatureSet::from_schemes([CfIbf, Js, Rs, Wjs]),
        FeatureSet::from_schemes([CfIbf, Js, Nrs, Wjs]),
        FeatureSet::from_schemes([CfIbf, Rs, Nrs, Wjs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Js, Rs, Nrs, Wjs]),
    ]
}

/// The top-10 RCNP feature sets of Table 4 in the paper.
fn rcnp_top10() -> Vec<FeatureSet> {
    use Scheme::*;
    vec![
        FeatureSet::from_schemes([CfIbf, Raccb, Js, Lcp, Rs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Js, Lcp, Wjs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Lcp, Rs, Nrs]),
        FeatureSet::from_schemes([CfIbf, Js, Lcp, Rs, Nrs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Js, Lcp, Rs, Nrs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Js, Lcp, Rs, Wjs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Js, Lcp, Nrs, Wjs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Lcp, Rs, Nrs, Wjs]),
        FeatureSet::from_schemes([CfIbf, Js, Lcp, Rs, Nrs, Wjs]),
        FeatureSet::from_schemes([CfIbf, Raccb, Js, Lcp, Rs, Nrs, Wjs]),
    ]
}

fn measure(
    title: &str,
    algorithm: AlgorithmKind,
    sets: &[FeatureSet],
    datasets: &[(&str, &PreparedDataset)],
    repetitions: usize,
) {
    println!("\n--- {title} ---");
    println!(
        "{:<50} {:>14} {:>16}",
        "feature set", datasets[0].0, datasets[1].0
    );
    for &set in sets {
        let mut cells = Vec::new();
        for &(_, prepared) in datasets {
            let config = RunConfig {
                feature_set: set,
                per_class: 250,
                ..Default::default()
            };
            let mut total = 0.0;
            for rep in 0..repetitions {
                let config = RunConfig {
                    seed: er_core::rng::derive_seed(config.seed, rep as u64),
                    ..config.clone()
                };
                let result = run_once(prepared, algorithm, &config).expect("run failed");
                total += result.total_rt().as_secs_f64();
            }
            cells.push(total / repetitions as f64);
        }
        println!(
            "{:<50} {:>12.3}s {:>14.3}s",
            set.to_string(),
            cells[0],
            cells[1]
        );
    }
}

/// Before/after comparison of the feature engine on this bench's workload:
/// the retained pre-refactor path (nested-vec stats, per-pair divisions and
/// logarithms, temp row per pair) against the fused CSR single-pass engine.
fn engine_comparison(datasets: &[(&str, &PreparedDataset)], repetitions: usize) {
    use er_features::reference::NaiveFeatureContext;
    use er_features::FeatureMatrix;

    println!("\n--- Feature-matrix engine: pre-refactor vs fused CSR (sequential) ---");
    println!(
        "{:<16} {:>10} {:>14} {:>12} {:>9}",
        "dataset", "pairs", "pre-refactor", "fused CSR", "speedup"
    );
    let set = er_features::FeatureSet::all_schemes();
    for &(name, prepared) in datasets {
        let context = prepared.context();
        // The retained pre-refactor engine consumes the nested view; the
        // conversion happens here, outside the timed region.
        let nested = prepared.blocks.to_block_collection();
        let naive_context = NaiveFeatureContext::new(&nested, &prepared.candidates);
        let time = |f: &mut dyn FnMut()| {
            let start = std::time::Instant::now();
            for _ in 0..repetitions {
                f();
            }
            start.elapsed().as_secs_f64() / repetitions as f64
        };
        let naive = time(&mut || {
            criterion::black_box(naive_context.build_matrix(set, 1));
        });
        let fused = time(&mut || {
            criterion::black_box(FeatureMatrix::build_with_threads(&context, set, 1));
        });
        println!(
            "{:<16} {:>10} {:>13.3}s {:>11.3}s {:>8.2}x",
            name,
            prepared.candidates.len(),
            naive,
            fused,
            naive / fused
        );
    }
}

fn main() {
    banner("Figures 7 & 9: run-time of the top-10 feature sets (largest datasets)");
    let repetitions = bench_repetitions();
    let movies = prepare(DatasetName::Movies);
    let walmart = prepare(DatasetName::WalmartAmazon);
    let datasets = [("Movies", &movies), ("WalmartAmazon", &walmart)];

    engine_comparison(&datasets, repetitions);

    measure(
        "Figure 7: BLAST",
        AlgorithmKind::Blast,
        &blast_top10(),
        &datasets,
        repetitions,
    );
    measure(
        "Figure 9: RCNP",
        AlgorithmKind::Rcnp,
        &rcnp_top10(),
        &datasets,
        repetitions,
    );
}
