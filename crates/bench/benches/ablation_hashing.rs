//! Ablation: Fx hashing vs the default SipHash in the blocking inverted
//! index.
//!
//! Token Blocking hashes every attribute-value token of every profile; the
//! performance guide recommends an Fx-style hasher for such workloads.  This
//! bench re-implements the inverted-index construction with
//! `std::collections::HashMap` (SipHash) and compares it against the
//! `FxHashMap`-based implementation used by `er-blocking`.

use std::collections::HashMap;
use std::time::Instant;

use bench::{banner, bench_catalog_options};
use er_blocking::token_blocking;
use er_core::EntityId;
use er_datasets::{generate_catalog_dataset, DatasetName};

fn main() {
    banner("Ablation: FxHash vs SipHash for the token inverted index");
    let options = bench_catalog_options();
    let dataset =
        generate_catalog_dataset(DatasetName::Movies, &options).expect("generation failed");

    let start = Instant::now();
    let fx_blocks = token_blocking(&dataset);
    let fx_time = start.elapsed();

    let start = Instant::now();
    let mut index: HashMap<String, Vec<EntityId>> = HashMap::new();
    for (i, profile) in dataset.profiles.iter().enumerate() {
        for token in profile.value_tokens() {
            index.entry(token).or_default().push(EntityId::from(i));
        }
    }
    let sip_entries: usize = index.values().map(Vec::len).sum();
    let sip_time = start.elapsed();

    println!(
        "FxHash token blocking: {:>8.3}s ({} blocks)",
        fx_time.as_secs_f64(),
        fx_blocks.num_blocks()
    );
    println!(
        "SipHash inverted index only: {:>8.3}s ({} assignments)",
        sip_time.as_secs_f64(),
        sip_entries
    );
    println!(
        "note: the FxHash figure includes block materialisation and filtering of useless blocks,"
    );
    println!("      so the honest comparison is the index-construction share of each run.");
}
