//! Table 2: performance of the input block collections.
//!
//! Reports recall, precision and F1 of the block collections produced by
//! Token Blocking + Block Purging + Block Filtering — the input every
//! supervised meta-blocking method starts from.  The paper's shape: recall
//! close to 1 (lower only for the noisiest datasets), precision below 0.05.

use bench::{banner, prepare_all};
use er_eval::tables::{render_table, TableRow};

fn main() {
    banner("Table 2: input block collection quality");
    let mut rows = Vec::new();
    for prepared in prepare_all() {
        let quality = prepared.block_quality();
        rows.push(
            TableRow::new(prepared.dataset.name.clone(), quality)
                .with_extra("|C|", prepared.num_candidates().to_string())
                .with_extra("blocks", prepared.blocks.num_blocks().to_string()),
        );
    }
    print!(
        "{}",
        render_table("Block collections given to meta-blocking", &rows)
    );
}
