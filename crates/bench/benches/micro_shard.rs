//! Micro-bench: the sharded streaming service.
//!
//! Three questions, answered on the largest Clean-Clean catalog dataset:
//!
//! 1. **Ingest scaling** — batch ingest throughput as the posting space is
//!    partitioned over 1/2/4/8 shards, in memory and with per-shard WALs.
//!    Sharding splits the per-batch index maintenance across independent
//!    posting stores; the delta pipeline (feature pass + scoring) is
//!    unchanged, so the interesting number is how much of the batch cost
//!    the partition actually touches.
//! 2. **Group commit** — fsyncs per acknowledged batch when a queue of
//!    mutations is committed as one group (one fsync per *touched WAL*,
//!    shared by every batch in the group) vs committed one by one (one
//!    fsync per batch).  The bench asserts the grouped rate is below one
//!    fsync per batch — the acceptance bar for the write-behind queue.
//! 3. **Reader latency** — epoch-published reads never block on writers: a
//!    reader thread spins on `EpochReader::load` while the writer ingests,
//!    and the bench reports the observed load latencies and how many
//!    distinct epochs the reader saw.
//!
//! Correctness is asserted before any timing: every shard count must
//! produce deltas and a compacted block collection bit-identical to the
//! single-shard service.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bench::{
    banner, bench_catalog_options, bench_repetitions, report::Report, write_bench_prometheus,
};
use er_blocking::TokenKeys;
use er_core::Dataset;
use er_datasets::{generate_catalog_dataset, DatasetName};
use er_features::FeatureSet;
use er_shard::ShardedStreamingService;
use er_stream::{MutationRecord, StreamingConfig};

const BATCH: usize = 64;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/tmp")
        .join(format!("micro-shard-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(dataset: &Dataset, threads: usize) -> StreamingConfig {
    StreamingConfig {
        feature_set: FeatureSet::blast_optimal(),
        threads,
        ..StreamingConfig::for_dataset(dataset)
    }
}

/// Ingests the whole corpus in fixed-size batches through a sharded
/// in-memory service.
fn ingest_all(
    dataset: &Dataset,
    threads: usize,
    num_shards: usize,
) -> ShardedStreamingService<TokenKeys> {
    let mut service =
        ShardedStreamingService::new(config(dataset, threads), TokenKeys, num_shards).unwrap();
    for chunk in dataset.profiles.chunks(BATCH) {
        criterion::black_box(service.ingest(chunk));
    }
    service
}

fn main() {
    banner("Micro-bench: sharded service — ingest scaling, group commit, reader latency");
    let repetitions = bench_repetitions();
    let options = bench_catalog_options();
    let threads = er_core::available_threads();
    let name = DatasetName::largest_two()[0];
    let dataset = generate_catalog_dataset(name, &options)
        .unwrap_or_else(|e| panic!("failed to generate {name}: {e}"));
    let n = dataset.num_entities();
    println!("\n--- {} ({} entities, {} threads) ---", name, n, threads);

    // Correctness gate: every shard count compacts to the single-shard
    // collection, delta for delta along the way.
    {
        let mut oracle = ShardedStreamingService::new(config(&dataset, 1), TokenKeys, 1).unwrap();
        let reference: Vec<_> = dataset
            .profiles
            .chunks(BATCH)
            .map(|chunk| oracle.ingest(chunk))
            .collect();
        let baseline = oracle.compact().to_block_collection();
        for shards in SHARD_COUNTS {
            let mut service =
                ShardedStreamingService::new(config(&dataset, threads), TokenKeys, shards).unwrap();
            for (chunk, expected) in dataset.profiles.chunks(BATCH).zip(&reference) {
                let delta = service.ingest(chunk);
                assert_eq!(delta.pairs, expected.pairs, "{shards} shards diverged");
                assert_eq!(delta.probabilities, expected.probabilities);
            }
            assert_eq!(
                service.compact().to_block_collection().blocks,
                baseline.blocks,
                "{shards} shards compacted differently"
            );
        }
    }

    // 1. Ingest throughput vs shard count, in memory and durable.
    println!(
        "{:<8} {:>14} {:>14} {:>16}",
        "shards", "in-memory", "durable", "throughput"
    );
    let mut sweep_rows: Vec<String> = Vec::new();
    for shards in SHARD_COUNTS {
        let mut memory_total = 0.0f64;
        let mut durable_total = 0.0f64;
        for _ in 0..repetitions {
            let start = Instant::now();
            criterion::black_box(ingest_all(&dataset, threads, shards));
            memory_total += start.elapsed().as_secs_f64();

            let dir = scratch(&format!("sweep-{shards}"));
            let mut durable =
                ShardedStreamingService::new(config(&dataset, threads), TokenKeys, shards)
                    .unwrap()
                    .persist_to(&dir)
                    .unwrap();
            let start = Instant::now();
            for chunk in dataset.profiles.chunks(BATCH) {
                criterion::black_box(durable.ingest(chunk).unwrap());
            }
            durable_total += start.elapsed().as_secs_f64();
        }
        let memory = memory_total / repetitions as f64;
        let durable = durable_total / repetitions as f64;
        println!(
            "{:<8} {:>12.2}ms {:>12.2}ms {:>11.0} e/s",
            shards,
            memory * 1e3,
            durable * 1e3,
            n as f64 / memory,
        );
        sweep_rows.push(format!(
            "{{\"shards\": {}, \"memory_ingest_ms\": {:.3}, \"durable_ingest_ms\": {:.3}, \"entities_per_sec\": {:.0}}}",
            shards,
            memory * 1e3,
            durable * 1e3,
            n as f64 / memory,
        ));
    }

    // 2. Group commit: fsyncs per batch for a queued group vs one-by-one.
    let group_shards = 4usize;
    let group_len = 16usize.min(n);
    let queue: Vec<MutationRecord> = dataset.profiles[..group_len]
        .iter()
        .map(|p| MutationRecord::Ingest(vec![p.clone()]))
        .collect();

    let dir = scratch("group");
    let mut grouped = ShardedStreamingService::new(config(&dataset, 1), TokenKeys, group_shards)
        .unwrap()
        .persist_to(&dir)
        .unwrap();
    let before = grouped.wal_syncs();
    grouped.apply_group_unscored(&queue).unwrap();
    let grouped_syncs = grouped.wal_syncs() - before;

    let dir = scratch("single");
    let mut single = ShardedStreamingService::new(config(&dataset, 1), TokenKeys, group_shards)
        .unwrap()
        .persist_to(&dir)
        .unwrap();
    let before = single.wal_syncs();
    for record in &queue {
        match record {
            MutationRecord::Ingest(p) => single.ingest_unscored(p).unwrap(),
            _ => unreachable!(),
        };
    }
    let single_syncs = single.wal_syncs() - before;

    let grouped_rate = grouped_syncs as f64 / group_len as f64;
    let single_rate = single_syncs as f64 / group_len as f64;
    assert!(
        grouped_rate < 1.0,
        "group commit must cost below one fsync per batch, got {grouped_rate:.2}"
    );
    println!(
        "\ngroup commit ({} batches, {} shards): {} fsyncs grouped ({:.2}/batch) vs {} individual ({:.2}/batch)",
        group_len, group_shards, grouped_syncs, grouped_rate, single_syncs, single_rate,
    );

    // 3. Reader latency while a writer ingests: epoch loads are pointer
    // flips, so they stay flat no matter what the writer is doing.
    let mut service =
        ShardedStreamingService::new(config(&dataset, threads), TokenKeys, group_shards).unwrap();
    let reader = service.reader();
    let stop = Arc::new(AtomicBool::new(false));
    let handle = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut loads = 0u64;
            let mut total_ns = 0u64;
            let mut max_ns = 0u64;
            let mut views_seen = 0u64;
            let mut last_view = u64::MAX;
            while !stop.load(Ordering::Relaxed) {
                let start = Instant::now();
                let view = criterion::black_box(reader.load());
                let elapsed = start.elapsed().as_nanos() as u64;
                loads += 1;
                total_ns += elapsed;
                max_ns = max_ns.max(elapsed);
                if view.batches_applied != last_view {
                    last_view = view.batches_applied;
                    views_seen += 1;
                }
            }
            (loads, total_ns, max_ns, views_seen)
        })
    };
    for chunk in dataset.profiles.chunks(BATCH) {
        criterion::black_box(service.ingest(chunk));
    }
    stop.store(true, Ordering::Relaxed);
    let (loads, total_ns, max_ns, views_seen) = handle.join().unwrap();
    let mean_ns = total_ns as f64 / loads.max(1) as f64;
    println!(
        "reader under write load: {} loads, mean {:.0}ns, max {}ns, {} published views observed",
        loads, mean_ns, max_ns, views_seen,
    );

    Report::new("micro_shard")
        .field("repetitions", repetitions)
        .field("threads", threads)
        .field("dataset", format!("\"{name}\""))
        .field("entities", n)
        .field("batch_size", BATCH)
        .field(
            "group_commit",
            format!(
                "{{\"batches\": {group_len}, \"shards\": {group_shards}, \
                 \"grouped_fsyncs\": {grouped_syncs}, \"individual_fsyncs\": {single_syncs}, \
                 \"grouped_fsyncs_per_batch\": {grouped_rate:.4}, \
                 \"individual_fsyncs_per_batch\": {single_rate:.4}}}"
            ),
        )
        .field(
            "reader",
            format!(
                "{{\"loads\": {loads}, \"mean_ns\": {mean_ns:.1}, \"max_ns\": {max_ns}, \
                 \"views_observed\": {views_seen}}}"
            ),
        )
        .rows("shard_sweep", sweep_rows)
        .write("BENCH_shard.json");
    // The same run as a Prometheus snapshot: group-commit fsync batches,
    // queue depths, epoch-publish latency, reader-view age.
    write_bench_prometheus("BENCH_shard.prom");
}
