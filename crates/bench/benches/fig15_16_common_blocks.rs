//! Figures 15 and 16: distribution of common blocks per duplicate pair.
//!
//! For every dataset, prints the portion of duplicate pairs sharing exactly
//! `k` blocks (k = 0, 1, …).  The bar at k = 0 is the portion missed by the
//! input block collection; the bar at k = 1 is the portion that (Generalized)
//! Supervised Meta-blocking is most likely to lose, because a single common
//! block carries no co-occurrence evidence.  Datasets with more than ~10% of
//! duplicates at k ≤ 1 are the ones whose meta-blocking recall drops below
//! 0.9 in the paper.

use bench::{banner, prepare_all};
use er_eval::report::CommonBlockDistribution;

fn main() {
    banner("Figures 15 & 16: common blocks per duplicate pair");
    for prepared in prepare_all() {
        let distribution = CommonBlockDistribution::build(&prepared);
        let limit = distribution.counts.len().min(12);
        print!("{:<15}", prepared.dataset.name);
        for k in 0..limit {
            print!(" {:>5.1}%", 100.0 * distribution.portion(k));
        }
        if distribution.counts.len() > limit {
            let rest: f64 = (limit..distribution.counts.len())
                .map(|k| distribution.portion(k))
                .sum();
            print!("  (+{:.1}% with ≥{} blocks)", 100.0 * rest, limit);
        }
        println!();
        println!(
            "{:<15} duplicates sharing ≤1 block: {:.1}%",
            "",
            100.0 * distribution.portion_at_most_one()
        );
    }
    println!("\ncolumns are k = 0, 1, 2, … common blocks");
}
