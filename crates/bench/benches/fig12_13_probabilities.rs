//! Figures 12 and 13: how the training-set size shifts the matching
//! probabilities, explaining the recall/precision trade-off.
//!
//! Figure 12 plots the probability distribution of duplicate vs non-matching
//! candidate pairs on AbtBuy as the training set grows; Figure 13 compares
//! BCl's and BLAST's recall/precision over the same sizes.  The expected
//! shape: larger training sets push the probabilities of *both* classes
//! upwards, so recall rises while precision drops.

use bench::{banner, bench_repetitions, prepare};
use er_datasets::DatasetName;
use er_eval::experiment::{run_averaged, train_and_score, RunConfig};
use er_eval::report::ProbabilityHistogram;
use er_features::FeatureSet;
use meta_blocking::pruning::AlgorithmKind;

fn main() {
    banner("Figure 12: matching-probability distribution on AbtBuy");
    let prepared = prepare(DatasetName::AbtBuy);
    let sizes = [20usize, 100, 300, 500];
    let (matrix, _) = prepared.build_features(FeatureSet::blast_optimal());

    for &size in &sizes {
        let config = RunConfig {
            feature_set: FeatureSet::blast_optimal(),
            per_class: (size / 2).max(1),
            ..Default::default()
        };
        let Ok((scores, _, _)) = train_and_score(&prepared, &matrix, &config, 0x000f_1612) else {
            println!("training size {size}: not enough labelled pairs, skipped");
            continue;
        };
        let histogram = ProbabilityHistogram::build(&prepared, &scores, 10);
        println!("\ntraining size {size}:");
        println!(
            "  mean probability  duplicates = {:.3}   non-matching = {:.3}",
            histogram.mean_probability(true),
            histogram.mean_probability(false)
        );
        println!("  bin      [0.0..0.1) ... [0.9..1.0]");
        println!("  match    {:?}", histogram.matching);
        println!("  nonmatch {:?}", histogram.non_matching);
    }

    banner("Figure 13: BCl vs BLAST recall/precision as the training set grows");
    let repetitions = bench_repetitions();
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "size", "BCl recall", "BCl prec", "BLAST recall", "BLAST prec"
    );
    for &size in &[20usize, 50, 100, 200, 300, 400, 500] {
        let config = RunConfig {
            feature_set: FeatureSet::blast_optimal(),
            per_class: (size / 2).max(1),
            ..Default::default()
        };
        let bcl = run_averaged(&prepared, AlgorithmKind::Bcl, &config, repetitions);
        let blast = run_averaged(&prepared, AlgorithmKind::Blast, &config, repetitions);
        let (Ok(bcl), Ok(blast)) = (bcl, blast) else {
            println!("{size:>6}  skipped (insufficient labelled pairs)");
            continue;
        };
        println!(
            "{:>6} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            size,
            bcl.effectiveness.recall,
            bcl.effectiveness.precision,
            blast.effectiveness.recall,
            blast.effectiveness.precision
        );
    }
}
