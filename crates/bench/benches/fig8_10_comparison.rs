//! Figures 8 and 10: best Generalized Supervised Meta-blocking algorithms
//! (BLAST, RCNP with their new optimal feature sets) against the best
//! Supervised Meta-blocking baselines (BCl, CNP with the original feature
//! set).
//!
//! Figure 8 reports average effectiveness over all datasets (500 labelled
//! pairs); Figure 10 reports run-times on the two largest datasets.  Expected
//! shape: BLAST beats BCl on every measure and runs >2× faster (no LCP);
//! RCNP trades a little recall for much higher precision/F1 than CNP.

use bench::{banner, bench_repetitions, prepare_all};
use er_datasets::DatasetName;
use er_eval::experiment::{run_averaged, RunConfig};
use er_eval::metrics::Effectiveness;
use er_features::FeatureSet;
use meta_blocking::pruning::AlgorithmKind;

fn config_for(algorithm: AlgorithmKind) -> RunConfig {
    let feature_set = match algorithm {
        AlgorithmKind::Blast => FeatureSet::blast_optimal(),
        AlgorithmKind::Rcnp => FeatureSet::rcnp_optimal(),
        _ => FeatureSet::original(),
    };
    RunConfig {
        feature_set,
        per_class: 250,
        ..Default::default()
    }
}

fn main() {
    banner("Figure 8: Supervised (BCl, CNP) vs Generalized Supervised (BLAST, RCNP)");
    let prepared = prepare_all();
    let repetitions = bench_repetitions();
    let algorithms = [
        AlgorithmKind::Bcl,
        AlgorithmKind::Blast,
        AlgorithmKind::Cnp,
        AlgorithmKind::Rcnp,
    ];

    println!(
        "{:<8} {:>8} {:>10} {:>8}",
        "algo", "recall", "precision", "F1"
    );
    let mut large_rt: Vec<(AlgorithmKind, Vec<(String, f64)>)> = Vec::new();
    for algorithm in algorithms {
        let config = config_for(algorithm);
        let mut per_dataset = Vec::new();
        let mut rts = Vec::new();
        for dataset in &prepared {
            let result =
                run_averaged(dataset, algorithm, &config, repetitions).expect("run failed");
            per_dataset.push(result.effectiveness);
            if DatasetName::largest_two()
                .iter()
                .any(|d| d.to_string() == dataset.dataset.name)
            {
                rts.push((dataset.dataset.name.clone(), result.mean_rt_seconds));
            }
        }
        let mean = Effectiveness::mean(&per_dataset);
        println!(
            "{:<8} {:>8.4} {:>10.4} {:>8.4}",
            algorithm.name(),
            mean.recall,
            mean.precision,
            mean.f1
        );
        large_rt.push((algorithm, rts));
    }

    banner("Figure 10: run-times on the two largest datasets");
    println!(
        "{:<8} {:>16} {:>18}",
        "algo", "Movies RT(s)", "WalmartAmazon RT(s)"
    );
    for (algorithm, rts) in large_rt {
        let movies = rts
            .iter()
            .find(|(name, _)| name == "Movies")
            .map(|(_, rt)| *rt)
            .unwrap_or(f64::NAN);
        let walmart = rts
            .iter()
            .find(|(name, _)| name == "WalmartAmazon")
            .map(|(_, rt)| *rt)
            .unwrap_or(f64::NAN);
        println!("{:<8} {:>16.3} {:>18.3}", algorithm.name(), movies, walmart);
    }
}
