//! Ablation: the cost of the LCP feature.
//!
//! The paper attributes BLAST's >2× run-time advantage over the LCP-based
//! feature sets to the cost of computing LCP, which in a naive implementation
//! iterates over all blocks of an entity to gather its distinct candidates.
//! This repository pre-computes the per-entity candidate counts while
//! deduplicating the comparisons, so LCP becomes O(1) per pair; this bench
//! quantifies both the naive cost the paper refers to and the per-scheme cost
//! of feature generation in this implementation.

use std::time::Instant;

use bench::{banner, prepare};
use er_core::{EntityId, FxHashSet};
use er_datasets::DatasetName;
use er_eval::experiment::PreparedDataset;
use er_features::{FeatureMatrix, FeatureSet, Scheme};

/// Naive LCP: recompute the distinct candidates of an entity by walking its
/// blocks, the way the paper describes the feature's cost.
fn naive_lcp(prepared: &PreparedDataset, entity: EntityId) -> usize {
    let mut distinct: FxHashSet<EntityId> = FxHashSet::default();
    for &block in prepared.stats.blocks_of(entity) {
        for &other in prepared.blocks.entities(block.index()) {
            if prepared.blocks.is_comparable(entity, other) {
                distinct.insert(other);
            }
        }
    }
    distinct.len()
}

fn main() {
    banner("Ablation: LCP cost and per-scheme feature-generation time");
    let prepared = prepare(DatasetName::Movies);
    println!(
        "dataset Movies: {} candidate pairs, {} entities",
        prepared.num_candidates(),
        prepared.dataset.num_entities()
    );

    // Naive (per-pair recomputation) LCP over a sample of pairs.
    let sample: Vec<_> = prepared
        .candidates
        .pairs()
        .iter()
        .step_by((prepared.num_candidates() / 20_000).max(1))
        .copied()
        .collect();
    let start = Instant::now();
    let mut checksum = 0usize;
    for &(a, b) in &sample {
        checksum += naive_lcp(&prepared, a) + naive_lcp(&prepared, b);
    }
    let naive = start.elapsed();
    let start = Instant::now();
    for &(a, b) in &sample {
        checksum += prepared.candidates.candidates_of(a) as usize
            + prepared.candidates.candidates_of(b) as usize;
    }
    let precomputed = start.elapsed();
    println!(
        "LCP on {} sampled pairs: naive recomputation {:.3}s vs precomputed {:.6}s (checksum {})",
        sample.len(),
        naive.as_secs_f64(),
        precomputed.as_secs_f64(),
        checksum
    );

    // Per-scheme full feature-generation time.
    println!("\nfull-matrix generation time per single-scheme feature set:");
    let context = prepared.context();
    for scheme in Scheme::ALL {
        let set = FeatureSet::from_schemes([scheme]);
        let start = Instant::now();
        let matrix = FeatureMatrix::build(&context, set);
        let elapsed = start.elapsed();
        println!(
            "  {:<8} {:>8.3}s  ({} pairs × {} feature(s))",
            scheme.name(),
            elapsed.as_secs_f64(),
            matrix.num_pairs(),
            matrix.num_features()
        );
    }

    // The two selected feature sets.
    for set in [FeatureSet::blast_optimal(), FeatureSet::rcnp_optimal()] {
        let start = Instant::now();
        let _ = FeatureMatrix::build(&context, set);
        println!(
            "  {:<40} {:>8.3}s",
            set.to_string(),
            start.elapsed().as_secs_f64()
        );
    }
}
