//! Table 6: variance of the logistic-regression model across sampling
//! iterations on the D100K analogue.
//!
//! Three models are trained with different random 25+25 samples; the table
//! reports the learned coefficients (in the standardised feature space), the
//! number of candidate pairs BLAST retains and the duplicates detected.
//! Expected shape: the coefficients vary noticeably between iterations while
//! recall stays high — the behaviour the paper uses to explain the outliers
//! of its scalability figures.

use bench::{banner, bench_catalog_options};
use er_core::PairId;
use er_datasets::{dirty_catalog, generate_dirty};
use er_eval::experiment::PreparedDataset;
use er_eval::metrics::Effectiveness;
use er_features::{FeatureSet, Scheme};
use er_learn::{
    balanced_undersample, Classifier, LogisticRegression, LogisticRegressionConfig,
    ProbabilisticClassifier, TrainingSet,
};
use meta_blocking::pruning::AlgorithmKind;
use meta_blocking::scoring::CachedScores;

fn main() {
    banner("Table 6: logistic-regression models over D100K (BLAST, 3 iterations)");
    let options = bench_catalog_options();
    let configs = dirty_catalog(&options);
    // D100K is the middle entry of the dirty catalog.
    let config = &configs[2];
    println!(
        "dataset {} ({} entities at dirty scale {})",
        config.name, config.num_entities, options.dirty_scale
    );
    let dataset = generate_dirty(config).expect("generation failed");
    let prepared = PreparedDataset::prepare(dataset).expect("blocking failed");
    let feature_set = FeatureSet::blast_optimal();
    let (matrix, _) = prepared.build_features(feature_set);
    let schemes: Vec<Scheme> = feature_set.schemes();

    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "coefficient", "iteration 1", "iteration 2", "iteration 3"
    );
    let mut weights_per_iteration: Vec<Vec<f64>> = Vec::new();
    let mut intercepts = Vec::new();
    let mut candidates_retained = Vec::new();
    let mut duplicates_detected = Vec::new();
    let mut recalls = Vec::new();

    for iteration in 0..3u64 {
        let mut rng = er_core::seeded_rng(0x7ab1e6 + iteration);
        let sample = balanced_undersample(
            prepared.candidates.pairs(),
            &prepared.dataset.ground_truth,
            25,
            &mut rng,
        )
        .expect("sampling failed");
        let mut training = TrainingSet::new();
        for (&pair_index, &label) in sample.pair_indices.iter().zip(&sample.labels) {
            training.push(matrix.row(PairId::from(pair_index)).to_vec(), label);
        }
        let model = LogisticRegression::fit(&LogisticRegressionConfig::default(), &training)
            .expect("training failed");
        weights_per_iteration.push(model.weights().to_vec());
        intercepts.push(model.intercept());

        let probabilities: Vec<f64> = (0..matrix.num_pairs())
            .map(|i| {
                model
                    .probability(matrix.row(PairId::from(i)))
                    .clamp(0.0, 1.0)
            })
            .collect();
        let scores = CachedScores::new(probabilities);
        let blast = AlgorithmKind::Blast.build_csr(&prepared.blocks);
        let retained = blast.prune(&prepared.candidates, &scores);
        let retained_pairs: Vec<_> = retained
            .iter()
            .map(|&id| prepared.candidates.pair(id))
            .collect();
        let eff = Effectiveness::evaluate(
            &retained_pairs,
            &prepared.dataset.ground_truth,
            prepared.dataset.num_duplicates(),
        );
        candidates_retained.push(retained.len());
        duplicates_detected.push((eff.recall * prepared.dataset.num_duplicates() as f64).round());
        recalls.push(eff.recall);
    }

    for (row, scheme) in schemes.iter().enumerate() {
        println!(
            "{:<12} {:>12.4} {:>12.4} {:>12.4}",
            scheme.name(),
            weights_per_iteration[0][row],
            weights_per_iteration[1][row],
            weights_per_iteration[2][row]
        );
    }
    println!(
        "{:<12} {:>12.4} {:>12.4} {:>12.4}",
        "Intercept", intercepts[0], intercepts[1], intercepts[2]
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "Candidates", candidates_retained[0], candidates_retained[1], candidates_retained[2]
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "Duplicates", duplicates_detected[0], duplicates_detected[1], duplicates_detected[2]
    );
    println!(
        "{:<12} {:>12.4} {:>12.4} {:>12.4}",
        "Recall", recalls[0], recalls[1], recalls[2]
    );
}
