//! Criterion micro-benchmarks of the hot components: common-block merges,
//! feature-vector computation, classifier prediction and the pruning
//! algorithms.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use er_core::{EntityId, PairId};
use er_datasets::{generate_catalog_dataset, CatalogOptions, DatasetName};
use er_eval::experiment::PreparedDataset;
use er_features::{FeatureMatrix, FeatureSet, Scheme};
use er_learn::balanced_undersample;
use er_learn::{
    Classifier, LogisticRegression, LogisticRegressionConfig, ProbabilisticClassifier, TrainingSet,
};
use meta_blocking::pruning::AlgorithmKind;
use meta_blocking::scoring::CachedScores;

fn prepared() -> PreparedDataset {
    let options = CatalogOptions {
        scale: 0.35,
        ..CatalogOptions::default()
    };
    let dataset = generate_catalog_dataset(DatasetName::DblpAcm, &options).unwrap();
    PreparedDataset::prepare(dataset).unwrap()
}

fn bench_common_blocks(c: &mut Criterion) {
    let prepared = prepared();
    let pairs: Vec<(EntityId, EntityId)> = prepared
        .candidates
        .pairs()
        .iter()
        .take(1000)
        .copied()
        .collect();
    c.bench_function("stats/common_blocks_1000_pairs", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &(x, y) in &pairs {
                total += prepared.stats.common_blocks(x, y);
            }
            black_box(total)
        })
    });
}

fn bench_feature_vector(c: &mut Criterion) {
    let prepared = prepared();
    let context = prepared.context();
    let pairs: Vec<(EntityId, EntityId)> = prepared
        .candidates
        .pairs()
        .iter()
        .take(1000)
        .copied()
        .collect();
    let mut group = c.benchmark_group("features/vector_1000_pairs");
    for set in [
        ("original", FeatureSet::original()),
        ("blast_optimal", FeatureSet::blast_optimal()),
        ("all_schemes", FeatureSet::all_schemes()),
    ] {
        group.bench_function(set.0, |b| {
            let mut out = Vec::new();
            b.iter(|| {
                let mut acc = 0.0f64;
                for &(x, y) in &pairs {
                    context.pair_features(x, y, set.1, &mut out);
                    acc += out.iter().sum::<f64>();
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_single_scheme(c: &mut Criterion) {
    let prepared = prepared();
    let context = prepared.context();
    let pairs: Vec<(EntityId, EntityId)> = prepared
        .candidates
        .pairs()
        .iter()
        .take(1000)
        .copied()
        .collect();
    let mut group = c.benchmark_group("features/single_scheme_1000_pairs");
    for scheme in [Scheme::CfIbf, Scheme::Js, Scheme::Wjs, Scheme::Nrs] {
        group.bench_function(scheme.name(), |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for &(x, y) in &pairs {
                    acc += context.score(scheme, x, y);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_classifier_and_pruning(c: &mut Criterion) {
    let prepared = prepared();
    let (matrix, _) = prepared.build_features(FeatureSet::blast_optimal());
    let mut rng = er_core::seeded_rng(42);
    let sample = balanced_undersample(
        prepared.candidates.pairs(),
        &prepared.dataset.ground_truth,
        25,
        &mut rng,
    )
    .unwrap();
    let mut training = TrainingSet::new();
    for (&pair_index, &label) in sample.pair_indices.iter().zip(&sample.labels) {
        training.push(matrix.row(PairId::from(pair_index)).to_vec(), label);
    }
    let model = LogisticRegression::fit(&LogisticRegressionConfig::default(), &training).unwrap();

    c.bench_function("learn/logistic_fit_50_instances", |b| {
        b.iter(|| {
            LogisticRegression::fit(&LogisticRegressionConfig::default(), black_box(&training))
                .unwrap()
        })
    });

    c.bench_function("learn/predict_all_candidates", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..matrix.num_pairs() {
                acc += model.probability(matrix.row(PairId::from(i)));
            }
            black_box(acc)
        })
    });

    let probabilities: Vec<f64> = (0..matrix.num_pairs())
        .map(|i| {
            model
                .probability(matrix.row(PairId::from(i)))
                .clamp(0.0, 1.0)
        })
        .collect();
    let scores = CachedScores::new(probabilities);
    let mut group = c.benchmark_group("pruning");
    for algorithm in AlgorithmKind::all() {
        let pruner = algorithm.build_csr(&prepared.blocks);
        group.bench_function(algorithm.name(), |b| {
            b.iter(|| black_box(pruner.prune(&prepared.candidates, &scores)).len())
        });
    }
    group.finish();
}

fn bench_matrix_build(c: &mut Criterion) {
    let prepared = prepared();
    let context = prepared.context();
    let mut group = c.benchmark_group("features/full_matrix");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| FeatureMatrix::build_with_threads(&context, FeatureSet::blast_optimal(), 1))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| FeatureMatrix::build_parallel(&context, FeatureSet::blast_optimal()))
    });
    group.finish();
}

/// Before/after: the retained pre-refactor engine against the fused CSR
/// engine, plus the fused feature → probability path.
fn bench_engine_comparison(c: &mut Criterion) {
    use er_features::reference::NaiveFeatureContext;

    let prepared = prepared();
    let context = prepared.context();
    let nested = prepared.blocks.to_block_collection();
    let naive_context = NaiveFeatureContext::new(&nested, &prepared.candidates);
    let set = FeatureSet::all_schemes();

    let mut group = c.benchmark_group("features/engine_comparison");
    group.sample_size(10);
    group.bench_function("pre_refactor_sequential", |b| {
        b.iter(|| black_box(naive_context.build_matrix(set, 1)))
    });
    group.bench_function("fused_csr_sequential", |b| {
        b.iter(|| black_box(FeatureMatrix::build_with_threads(&context, set, 1)))
    });
    group.bench_function("fused_csr_parallel", |b| {
        b.iter(|| black_box(FeatureMatrix::build_parallel(&context, set)))
    });
    group.bench_function("fused_score_rows", |b| {
        b.iter(|| {
            black_box(FeatureMatrix::score_rows(&context, set, 1, |row| {
                row.iter().sum::<f64>()
            }))
        })
    });
    group.finish();
}

/// Before/after: hash-based candidate extraction against the hash-free CSR
/// enumeration.
fn bench_candidate_extraction(c: &mut Criterion) {
    use er_blocking::reference::naive_candidate_pairs;
    use er_blocking::CandidatePairs;

    let prepared = prepared();
    let nested = prepared.blocks.to_block_collection();
    let mut group = c.benchmark_group("candidates/extraction");
    group.sample_size(10);
    group.bench_function("naive_hash_set", |b| {
        b.iter(|| black_box(naive_candidate_pairs(&nested)))
    });
    group.bench_function("csr_sequential", |b| {
        b.iter(|| black_box(CandidatePairs::from_blocks(&nested)))
    });
    group.bench_function("csr_parallel", |b| {
        b.iter(|| {
            black_box(CandidatePairs::from_blocks_with_stats(
                &nested,
                &prepared.stats,
                er_core::available_threads(),
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_common_blocks,
    bench_feature_vector,
    bench_single_scheme,
    bench_classifier_and_pruning,
    bench_matrix_build,
    bench_engine_comparison,
    bench_candidate_extraction
);
criterion_main!(benches);
