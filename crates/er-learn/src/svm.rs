//! Linear support-vector machine with Platt-scaled probabilities.
//!
//! The paper's default classifier is scikit-learn's SVC with probability
//! calibration enabled.  We reproduce the linear-kernel behaviour with a
//! Pegasos-style sub-gradient descent on the L2-regularised hinge loss and
//! calibrate the decision values with [`PlattScaler`].

use er_core::{Error, Result};
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use crate::dataset::TrainingSet;
use crate::model::{Classifier, ProbabilisticClassifier};
use crate::platt::PlattScaler;
use crate::scale::Standardizer;

/// Training hyper-parameters for [`LinearSvm`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearSvmConfig {
    /// Regularisation strength λ of the Pegasos objective.
    pub lambda: f64,
    /// Number of passes over the (shuffled) training set.
    pub epochs: usize,
    /// Seed for the per-epoch shuffling.
    pub seed: u64,
}

impl Default for LinearSvmConfig {
    fn default() -> Self {
        LinearSvmConfig {
            lambda: 1e-3,
            epochs: 200,
            seed: 0x5e_ed,
        }
    }
}

/// A trained linear SVM with probability calibration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearSvm {
    pub(crate) scaler: Standardizer,
    pub(crate) weights: Vec<f64>,
    pub(crate) bias: f64,
    pub(crate) platt: PlattScaler,
}

impl LinearSvm {
    /// The learned weight vector in the standardised feature space.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// The raw (uncalibrated) decision value of a feature vector.
    pub fn decision_value(&self, features: &[f64]) -> f64 {
        let scaled = self.scaler.transform(features);
        self.bias
            + scaled
                .iter()
                .zip(&self.weights)
                .map(|(x, w)| x * w)
                .sum::<f64>()
    }
}

impl Classifier for LinearSvm {
    type Config = LinearSvmConfig;

    fn fit(config: &Self::Config, training: &TrainingSet) -> Result<Self> {
        training.validate()?;
        if config.lambda <= 0.0 || config.epochs == 0 {
            return Err(Error::InvalidParameter(
                "lambda and epochs must be positive".into(),
            ));
        }

        let num_features = training.num_features();
        let scaler = Standardizer::fit(training.features().iter().map(Vec::as_slice), num_features);
        let rows: Vec<Vec<f64>> = training
            .features()
            .iter()
            .map(|r| scaler.transform(r))
            .collect();
        let targets: Vec<f64> = training
            .labels()
            .iter()
            .map(|&l| if l { 1.0 } else { -1.0 })
            .collect();

        let mut weights = vec![0.0f64; num_features];
        let mut bias = 0.0f64;
        let mut order: Vec<usize> = (0..rows.len()).collect();
        let mut rng = er_core::seeded_rng(config.seed);
        let mut step_count = 0usize;

        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                step_count += 1;
                let eta = 1.0 / (config.lambda * step_count as f64);
                let row = &rows[i];
                let y = targets[i];
                let margin = y * (bias + row.iter().zip(&weights).map(|(x, w)| x * w).sum::<f64>());
                // L2 shrinkage on the weights (not the bias).
                let shrink = 1.0 - eta * config.lambda;
                for w in &mut weights {
                    *w *= shrink;
                }
                if margin < 1.0 {
                    for (w, x) in weights.iter_mut().zip(row) {
                        *w += eta * y * x;
                    }
                    bias += eta * y;
                }
            }
        }

        if weights.iter().any(|w| !w.is_finite()) || !bias.is_finite() {
            return Err(Error::Model("linear SVM diverged".into()));
        }

        // Calibrate the decision values on the training set.
        let decisions: Vec<f64> = rows
            .iter()
            .map(|row| bias + row.iter().zip(&weights).map(|(x, w)| x * w).sum::<f64>())
            .collect();
        let platt = PlattScaler::fit(&decisions, training.labels())?;

        Ok(LinearSvm {
            scaler,
            weights,
            bias,
            platt,
        })
    }
}

impl ProbabilisticClassifier for LinearSvm {
    fn probability(&self, features: &[f64]) -> f64 {
        self.platt.probability(self.decision_value(features))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn separable_training(n: usize, seed: u64) -> TrainingSet {
        let mut rng = er_core::seeded_rng(seed);
        let mut set = TrainingSet::new();
        for _ in 0..n {
            let label = rng.gen_bool(0.5);
            let base = if label { 1.5 } else { -1.5 };
            set.push(
                vec![base + rng.gen_range(-0.5..0.5), rng.gen_range(-1.0..1.0)],
                label,
            );
        }
        set
    }

    #[test]
    fn learns_a_separable_problem() {
        let training = separable_training(200, 11);
        let model = LinearSvm::fit(&LinearSvmConfig::default(), &training).unwrap();
        let correct = training
            .iter()
            .filter(|(f, l)| model.classify(f) == *l)
            .count();
        assert!(correct as f64 / training.len() as f64 > 0.95);
    }

    #[test]
    fn probabilities_follow_the_margin() {
        let training = separable_training(200, 12);
        let model = LinearSvm::fit(&LinearSvmConfig::default(), &training).unwrap();
        assert!(model.probability(&[2.5, 0.0]) > 0.8);
        assert!(model.probability(&[-2.5, 0.0]) < 0.2);
        assert!(model.probability(&[2.5, 0.0]) > model.probability(&[0.2, 0.0]));
    }

    #[test]
    fn deterministic_given_seed() {
        let training = separable_training(150, 13);
        let a = LinearSvm::fit(&LinearSvmConfig::default(), &training).unwrap();
        let b = LinearSvm::fit(&LinearSvmConfig::default(), &training).unwrap();
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.bias(), b.bias());
    }

    #[test]
    fn agrees_with_logistic_regression_on_easy_data() {
        use crate::logistic::{LogisticRegression, LogisticRegressionConfig};
        let training = separable_training(300, 14);
        let svm = LinearSvm::fit(&LinearSvmConfig::default(), &training).unwrap();
        let logistic =
            LogisticRegression::fit(&LogisticRegressionConfig::default(), &training).unwrap();
        // The paper reports SVC and logistic regression give almost identical
        // results; on separable data the hard classifications must agree on
        // the overwhelming majority of points.
        let agree = training
            .iter()
            .filter(|(f, _)| svm.classify(f) == logistic.classify(f))
            .count();
        assert!(agree as f64 / training.len() as f64 > 0.95);
    }

    #[test]
    fn rejects_invalid_config() {
        let training = separable_training(50, 15);
        let config = LinearSvmConfig {
            lambda: 0.0,
            ..Default::default()
        };
        assert!(LinearSvm::fit(&config, &training).is_err());
    }
}
