//! Logistic regression trained with full-batch gradient descent.
//!
//! The training sets in the paper are tiny (50–500 balanced instances) and the
//! feature vectors short (4–9 values), so full-batch gradient descent with a
//! fixed learning rate converges in a few hundred epochs.  Features are
//! standardised internally; the learned weights can be read back in the
//! *standardised* space (used to reproduce Table 6's model-variance analysis).

use er_core::{Error, Result};
use serde::{Deserialize, Serialize};

use crate::dataset::TrainingSet;
use crate::model::{Classifier, ProbabilisticClassifier};
use crate::scale::Standardizer;

/// Training hyper-parameters for [`LogisticRegression`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegressionConfig {
    /// Gradient-descent learning rate.
    pub learning_rate: f64,
    /// Number of full-batch epochs.
    pub epochs: usize,
    /// L2 regularisation strength.
    pub l2: f64,
}

impl Default for LogisticRegressionConfig {
    fn default() -> Self {
        LogisticRegressionConfig {
            learning_rate: 0.3,
            epochs: 800,
            l2: 1e-3,
        }
    }
}

/// A trained logistic-regression model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    pub(crate) scaler: Standardizer,
    pub(crate) weights: Vec<f64>,
    pub(crate) intercept: f64,
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// The learned weights in the standardised feature space.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned intercept in the standardised feature space.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The decision value (log-odds) for a raw feature vector.
    pub fn decision_value(&self, features: &[f64]) -> f64 {
        let scaled = self.scaler.transform(features);
        self.intercept
            + scaled
                .iter()
                .zip(&self.weights)
                .map(|(x, w)| x * w)
                .sum::<f64>()
    }
}

impl Classifier for LogisticRegression {
    type Config = LogisticRegressionConfig;

    fn fit(config: &Self::Config, training: &TrainingSet) -> Result<Self> {
        training.validate()?;
        if config.learning_rate <= 0.0 || config.epochs == 0 {
            return Err(Error::InvalidParameter(
                "learning rate and epochs must be positive".into(),
            ));
        }

        let num_features = training.num_features();
        let scaler = Standardizer::fit(training.features().iter().map(Vec::as_slice), num_features);
        let rows: Vec<Vec<f64>> = training
            .features()
            .iter()
            .map(|r| scaler.transform(r))
            .collect();
        let labels: Vec<f64> = training
            .labels()
            .iter()
            .map(|&l| if l { 1.0 } else { 0.0 })
            .collect();

        let n = rows.len() as f64;
        let mut weights = vec![0.0; num_features];
        let mut intercept = 0.0;
        for _ in 0..config.epochs {
            let mut grad_w = vec![0.0; num_features];
            let mut grad_b = 0.0;
            for (row, &y) in rows.iter().zip(&labels) {
                let z = intercept + row.iter().zip(&weights).map(|(x, w)| x * w).sum::<f64>();
                let err = sigmoid(z) - y;
                for (g, x) in grad_w.iter_mut().zip(row) {
                    *g += err * x;
                }
                grad_b += err;
            }
            for (w, g) in weights.iter_mut().zip(&grad_w) {
                *w -= config.learning_rate * (g / n + config.l2 * *w);
            }
            intercept -= config.learning_rate * grad_b / n;
        }

        if weights.iter().any(|w| !w.is_finite()) || !intercept.is_finite() {
            return Err(Error::Model("logistic regression diverged".into()));
        }

        Ok(LogisticRegression {
            scaler,
            weights,
            intercept,
        })
    }
}

impl ProbabilisticClassifier for LogisticRegression {
    fn probability(&self, features: &[f64]) -> f64 {
        sigmoid(self.decision_value(features))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A linearly separable toy problem: positives have large first feature.
    fn separable_training(n: usize, seed: u64) -> TrainingSet {
        let mut rng = er_core::seeded_rng(seed);
        let mut set = TrainingSet::new();
        for _ in 0..n {
            let label = rng.gen_bool(0.5);
            let base = if label { 2.0 } else { -2.0 };
            let x0 = base + rng.gen_range(-0.5..0.5);
            let x1 = rng.gen_range(-1.0..1.0);
            set.push(vec![x0, x1], label);
        }
        set
    }

    #[test]
    fn learns_a_separable_problem() {
        let training = separable_training(200, 1);
        let model =
            LogisticRegression::fit(&LogisticRegressionConfig::default(), &training).unwrap();
        let mut correct = 0usize;
        for (features, label) in training.iter() {
            if model.classify(features) == label {
                correct += 1;
            }
        }
        assert!(correct as f64 / training.len() as f64 > 0.95);
    }

    #[test]
    fn probabilities_are_calibrated_to_class_direction() {
        let training = separable_training(200, 2);
        let model =
            LogisticRegression::fit(&LogisticRegressionConfig::default(), &training).unwrap();
        assert!(model.probability(&[3.0, 0.0]) > 0.9);
        assert!(model.probability(&[-3.0, 0.0]) < 0.1);
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        let training = separable_training(100, 3);
        let model =
            LogisticRegression::fit(&LogisticRegressionConfig::default(), &training).unwrap();
        for x in [-100.0, -1.0, 0.0, 1.0, 100.0] {
            let p = model.probability(&[x, x]);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn training_is_deterministic() {
        let training = separable_training(120, 4);
        let a = LogisticRegression::fit(&LogisticRegressionConfig::default(), &training).unwrap();
        let b = LogisticRegression::fit(&LogisticRegressionConfig::default(), &training).unwrap();
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.intercept(), b.intercept());
    }

    #[test]
    fn rejects_invalid_config() {
        let training = separable_training(50, 5);
        let config = LogisticRegressionConfig {
            learning_rate: 0.0,
            ..Default::default()
        };
        assert!(LogisticRegression::fit(&config, &training).is_err());
    }

    #[test]
    fn rejects_single_class_training() {
        let mut set = TrainingSet::new();
        set.push(vec![1.0], true);
        set.push(vec![2.0], true);
        assert!(LogisticRegression::fit(&LogisticRegressionConfig::default(), &set).is_err());
    }

    #[test]
    fn weight_magnitude_reflects_informative_features() {
        let training = separable_training(300, 6);
        let model =
            LogisticRegression::fit(&LogisticRegressionConfig::default(), &training).unwrap();
        // Feature 0 is informative, feature 1 is noise.
        assert!(model.weights()[0].abs() > model.weights()[1].abs());
    }
}
