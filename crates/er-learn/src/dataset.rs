//! Labelled training sets.

use er_core::{Error, Result};
use serde::{Deserialize, Serialize};

/// A labelled training set: one feature vector and boolean label per instance
/// (`true` = the pair is a match).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainingSet {
    features: Vec<Vec<f64>>,
    labels: Vec<bool>,
}

impl TrainingSet {
    /// Creates an empty training set.
    pub fn new() -> Self {
        TrainingSet::default()
    }

    /// Builds a training set from parallel feature/label vectors.
    pub fn from_parts(features: Vec<Vec<f64>>, labels: Vec<bool>) -> Result<Self> {
        if features.len() != labels.len() {
            return Err(Error::InvalidParameter(format!(
                "feature rows ({}) and labels ({}) differ in length",
                features.len(),
                labels.len()
            )));
        }
        let set = TrainingSet { features, labels };
        set.validate()?;
        Ok(set)
    }

    /// Appends one labelled instance.
    pub fn push(&mut self, features: Vec<f64>, label: bool) {
        self.features.push(features);
        self.labels.push(label);
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the set has no instances.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per instance (0 for an empty set).
    pub fn num_features(&self) -> usize {
        self.features.first().map(Vec::len).unwrap_or(0)
    }

    /// Number of positive (matching) instances.
    pub fn num_positives(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Number of negative (non-matching) instances.
    pub fn num_negatives(&self) -> usize {
        self.len() - self.num_positives()
    }

    /// The feature rows.
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// The labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Iterates `(features, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], bool)> {
        self.features
            .iter()
            .map(Vec::as_slice)
            .zip(self.labels.iter().copied())
    }

    /// Checks the set is trainable: non-empty, rectangular and containing both
    /// classes.
    pub fn validate(&self) -> Result<()> {
        if self.is_empty() {
            return Err(Error::EmptyInput("training set is empty".into()));
        }
        let width = self.num_features();
        if width == 0 {
            return Err(Error::InvalidParameter("feature vectors are empty".into()));
        }
        if let Some(bad) = self.features.iter().position(|f| f.len() != width) {
            return Err(Error::InvalidParameter(format!(
                "feature row {bad} has {} features, expected {width}",
                self.features[bad].len()
            )));
        }
        if self.num_positives() == 0 || self.num_negatives() == 0 {
            return Err(Error::Model(
                "training set must contain both positive and negative instances".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainingSet {
        TrainingSet::from_parts(
            vec![vec![1.0, 0.5], vec![0.2, 0.1], vec![0.9, 0.8]],
            vec![true, false, true],
        )
        .unwrap()
    }

    #[test]
    fn counts_and_shape() {
        let set = sample();
        assert_eq!(set.len(), 3);
        assert_eq!(set.num_features(), 2);
        assert_eq!(set.num_positives(), 2);
        assert_eq!(set.num_negatives(), 1);
        assert!(!set.is_empty());
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(TrainingSet::from_parts(vec![vec![1.0]], vec![true, false]).is_err());
    }

    #[test]
    fn ragged_rows_rejected() {
        let set = TrainingSet::from_parts(vec![vec![1.0, 2.0], vec![3.0]], vec![true, false]);
        assert!(set.is_err());
    }

    #[test]
    fn single_class_rejected() {
        let set = TrainingSet::from_parts(vec![vec![1.0], vec![2.0]], vec![true, true]);
        assert!(set.is_err());
    }

    #[test]
    fn empty_set_rejected_by_validate() {
        assert!(TrainingSet::new().validate().is_err());
    }

    #[test]
    fn iter_yields_rows_in_order() {
        let set = sample();
        let collected: Vec<(Vec<f64>, bool)> = set.iter().map(|(f, l)| (f.to_vec(), l)).collect();
        assert_eq!(collected[0], (vec![1.0, 0.5], true));
        assert_eq!(collected[1], (vec![0.2, 0.1], false));
    }

    #[test]
    fn push_grows_the_set() {
        let mut set = sample();
        set.push(vec![0.3, 0.4], false);
        assert_eq!(set.len(), 4);
        assert_eq!(set.num_negatives(), 2);
    }
}
