//! Balanced undersampling of labelled candidate pairs.
//!
//! ER suffers from extreme class imbalance: almost every candidate pair is a
//! non-match.  The paper therefore builds training sets by undersampling —
//! picking the same number of positive and negative pairs at random — and
//! shows that as few as 25 instances per class suffice.

use er_core::{EntityId, Error, GroundTruth, Result};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A balanced sample of labelled candidate pairs, expressed as indices into
/// the candidate-pair list it was drawn from.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BalancedSample {
    /// Indices of the sampled pairs in the original candidate list.
    pub pair_indices: Vec<usize>,
    /// Labels aligned with `pair_indices` (`true` = match).
    pub labels: Vec<bool>,
}

impl BalancedSample {
    /// Number of sampled instances.
    pub fn len(&self) -> usize {
        self.pair_indices.len()
    }

    /// True if the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.pair_indices.is_empty()
    }

    /// Number of positive instances in the sample.
    pub fn num_positives(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }
}

/// Draws a balanced sample of `per_class` positive and `per_class` negative
/// candidate pairs.
///
/// Returns an error if the candidate list does not contain enough pairs of
/// either class.
pub fn balanced_undersample(
    pairs: &[(EntityId, EntityId)],
    truth: &GroundTruth,
    per_class: usize,
    rng: &mut impl Rng,
) -> Result<BalancedSample> {
    if per_class == 0 {
        return Err(Error::InvalidParameter(
            "per_class must be at least 1".into(),
        ));
    }
    let mut positives = Vec::new();
    let mut negatives = Vec::new();
    for (idx, &(a, b)) in pairs.iter().enumerate() {
        if truth.is_match(a, b) {
            positives.push(idx);
        } else {
            negatives.push(idx);
        }
    }
    for (class, available) in [(&positives, positives.len()), (&negatives, negatives.len())] {
        let _ = class;
        if available < per_class {
            return Err(Error::InsufficientTrainingData {
                requested: per_class,
                available,
            });
        }
    }

    positives.shuffle(rng);
    negatives.shuffle(rng);
    let mut pair_indices = Vec::with_capacity(2 * per_class);
    let mut labels = Vec::with_capacity(2 * per_class);
    for &idx in positives.iter().take(per_class) {
        pair_indices.push(idx);
        labels.push(true);
    }
    for &idx in negatives.iter().take(per_class) {
        pair_indices.push(idx);
        labels.push(false);
    }
    Ok(BalancedSample {
        pair_indices,
        labels,
    })
}

/// The per-class training-set size used by the original Supervised
/// Meta-blocking paper: 5% of the positive pairs in the ground truth (at least
/// one).
pub fn paper_baseline_per_class(num_duplicates: usize) -> usize {
    ((num_duplicates as f64) * 0.05).ceil().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Vec<(EntityId, EntityId)>, GroundTruth) {
        // 10 pairs, the first 4 are matches.
        let pairs: Vec<(EntityId, EntityId)> = (0..10u32)
            .map(|i| (EntityId(i), EntityId(i + 100)))
            .collect();
        let truth = GroundTruth::from_pairs(pairs[..4].to_vec());
        (pairs, truth)
    }

    #[test]
    fn sample_is_balanced() {
        let (pairs, truth) = toy();
        let mut rng = er_core::seeded_rng(1);
        let sample = balanced_undersample(&pairs, &truth, 3, &mut rng).unwrap();
        assert_eq!(sample.len(), 6);
        assert_eq!(sample.num_positives(), 3);
    }

    #[test]
    fn labels_match_ground_truth() {
        let (pairs, truth) = toy();
        let mut rng = er_core::seeded_rng(2);
        let sample = balanced_undersample(&pairs, &truth, 2, &mut rng).unwrap();
        for (&idx, &label) in sample.pair_indices.iter().zip(&sample.labels) {
            let (a, b) = pairs[idx];
            assert_eq!(truth.is_match(a, b), label);
        }
    }

    #[test]
    fn sampling_is_seed_dependent_but_deterministic() {
        let (pairs, truth) = toy();
        let a = balanced_undersample(&pairs, &truth, 3, &mut er_core::seeded_rng(7)).unwrap();
        let b = balanced_undersample(&pairs, &truth, 3, &mut er_core::seeded_rng(7)).unwrap();
        assert_eq!(a.pair_indices, b.pair_indices);
    }

    #[test]
    fn errors_when_not_enough_positives() {
        let (pairs, truth) = toy();
        let mut rng = er_core::seeded_rng(3);
        let err = balanced_undersample(&pairs, &truth, 5, &mut rng).unwrap_err();
        match err {
            Error::InsufficientTrainingData {
                requested,
                available,
            } => {
                assert_eq!(requested, 5);
                assert_eq!(available, 4);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn zero_per_class_rejected() {
        let (pairs, truth) = toy();
        let mut rng = er_core::seeded_rng(4);
        assert!(balanced_undersample(&pairs, &truth, 0, &mut rng).is_err());
    }

    #[test]
    fn no_duplicate_indices_in_sample() {
        let (pairs, truth) = toy();
        let mut rng = er_core::seeded_rng(5);
        let sample = balanced_undersample(&pairs, &truth, 4, &mut rng).unwrap();
        let unique: std::collections::HashSet<_> = sample.pair_indices.iter().collect();
        assert_eq!(unique.len(), sample.len());
    }

    #[test]
    fn paper_baseline_size_is_five_percent() {
        assert_eq!(paper_baseline_per_class(1000), 50);
        assert_eq!(paper_baseline_per_class(1075), 54);
        assert_eq!(paper_baseline_per_class(3), 1);
        assert_eq!(paper_baseline_per_class(0), 1);
    }
}
