//! Platt scaling: mapping SVM decision values to calibrated probabilities.
//!
//! Platt scaling fits a sigmoid `P(match | f) = 1 / (1 + exp(A·f + B))` to the
//! decision values of a trained margin classifier.  scikit-learn's
//! `SVC(probability=True)` performs the same calibration internally, so this
//! is the piece that turns our hand-built [`crate::LinearSvm`] into the
//! probabilistic classifier required by Generalized Supervised Meta-blocking.
//!
//! The implementation follows the Lin–Weng–Keerthi improved Newton method with
//! the usual target smoothing for numerical robustness.

use er_core::{Error, Result};
use serde::{Deserialize, Serialize};

/// A fitted Platt sigmoid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlattScaler {
    pub(crate) a: f64,
    pub(crate) b: f64,
}

impl PlattScaler {
    /// Fits the sigmoid on decision values and binary labels.
    pub fn fit(decision_values: &[f64], labels: &[bool]) -> Result<Self> {
        if decision_values.len() != labels.len() || decision_values.is_empty() {
            return Err(Error::InvalidParameter(
                "Platt scaling needs equally many decision values and labels".into(),
            ));
        }
        let num_positive = labels.iter().filter(|&&l| l).count() as f64;
        let num_negative = labels.len() as f64 - num_positive;
        if num_positive == 0.0 || num_negative == 0.0 {
            return Err(Error::Model(
                "Platt scaling needs both classes in the calibration set".into(),
            ));
        }

        // Smoothed target probabilities (Platt 1999).
        let high_target = (num_positive + 1.0) / (num_positive + 2.0);
        let low_target = 1.0 / (num_negative + 2.0);
        let targets: Vec<f64> = labels
            .iter()
            .map(|&l| if l { high_target } else { low_target })
            .collect();

        let mut a = 0.0f64;
        let mut b = ((num_negative + 1.0) / (num_positive + 1.0)).ln();
        let min_step = 1e-10;
        let sigma = 1e-12;

        let objective = |a: f64, b: f64| -> f64 {
            decision_values
                .iter()
                .zip(&targets)
                .map(|(&f, &t)| {
                    let apb = a * f + b;
                    if apb >= 0.0 {
                        t * apb + (1.0 + (-apb).exp()).ln()
                    } else {
                        (t - 1.0) * apb + (1.0 + apb.exp()).ln()
                    }
                })
                .sum()
        };

        let mut fval = objective(a, b);
        for _ in 0..100 {
            // Gradient and Hessian.
            let (mut h11, mut h22, mut h21) = (sigma, sigma, 0.0);
            let (mut g1, mut g2) = (0.0, 0.0);
            for (&f, &t) in decision_values.iter().zip(&targets) {
                let apb = a * f + b;
                let p = if apb >= 0.0 {
                    (-apb).exp() / (1.0 + (-apb).exp())
                } else {
                    1.0 / (1.0 + apb.exp())
                };
                let q = 1.0 - p;
                let d2 = p * q;
                h11 += f * f * d2;
                h22 += d2;
                h21 += f * d2;
                let d1 = t - p;
                g1 += f * d1;
                g2 += d1;
            }
            if g1.abs() < 1e-5 && g2.abs() < 1e-5 {
                break;
            }
            // Newton direction.
            let det = h11 * h22 - h21 * h21;
            let da = -(h22 * g1 - h21 * g2) / det;
            let db = -(-h21 * g1 + h11 * g2) / det;
            let gd = g1 * da + g2 * db;

            // Backtracking line search.
            let mut step = 1.0;
            let mut improved = false;
            while step >= min_step {
                let new_a = a + step * da;
                let new_b = b + step * db;
                let new_f = objective(new_a, new_b);
                if new_f < fval + 1e-4 * step * gd {
                    a = new_a;
                    b = new_b;
                    fval = new_f;
                    improved = true;
                    break;
                }
                step /= 2.0;
            }
            if !improved {
                break;
            }
        }

        if !a.is_finite() || !b.is_finite() {
            return Err(Error::Model("Platt scaling diverged".into()));
        }
        Ok(PlattScaler { a, b })
    }

    /// The probability assigned to a decision value.
    pub fn probability(&self, decision_value: f64) -> f64 {
        let z = self.a * decision_value + self.b;
        if z >= 0.0 {
            (-z).exp() / (1.0 + (-z).exp())
        } else {
            1.0 / (1.0 + z.exp())
        }
    }

    /// The fitted slope `A` (negative when larger decision values mean more
    /// likely positive).
    pub fn slope(&self) -> f64 {
        self.a
    }

    /// The fitted offset `B`.
    pub fn offset(&self) -> f64 {
        self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrates_a_separable_margin() {
        // Positives have positive decision values, negatives negative.
        let decisions: Vec<f64> = (-20..20).map(|i| i as f64 / 4.0).collect();
        let labels: Vec<bool> = decisions.iter().map(|&d| d > 0.0).collect();
        let scaler = PlattScaler::fit(&decisions, &labels).unwrap();
        assert!(scaler.probability(3.0) > 0.85);
        assert!(scaler.probability(-3.0) < 0.15);
        assert!(scaler.probability(5.0) > scaler.probability(1.0));
    }

    #[test]
    fn probability_is_monotone_in_decision_value() {
        let decisions = vec![-2.0, -1.5, -1.0, -0.5, 0.5, 1.0, 1.5, 2.0];
        let labels = vec![false, false, false, false, true, true, true, true];
        let scaler = PlattScaler::fit(&decisions, &labels).unwrap();
        let mut last = 0.0;
        for d in [-4.0, -2.0, 0.0, 2.0, 4.0] {
            let p = scaler.probability(d);
            assert!(p >= last, "not monotone at {d}");
            last = p;
        }
    }

    #[test]
    fn noisy_labels_still_give_probabilities_in_range() {
        let decisions = vec![-1.0, -0.8, 0.2, -0.1, 0.5, 1.0, -0.4, 0.9];
        let labels = vec![false, true, false, true, true, true, false, false];
        let scaler = PlattScaler::fit(&decisions, &labels).unwrap();
        for &d in &decisions {
            let p = scaler.probability(d);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn rejects_single_class_or_empty() {
        assert!(PlattScaler::fit(&[], &[]).is_err());
        assert!(PlattScaler::fit(&[1.0, 2.0], &[true, true]).is_err());
        assert!(PlattScaler::fit(&[1.0], &[true, false]).is_err());
    }
}
