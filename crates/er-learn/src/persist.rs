//! Trained-model persistence: explicit binary codecs for every classifier
//! this crate trains, plus [`SavedModel`] — the tagged union a snapshot
//! stores so recovery can re-attach the exact model without knowing its
//! concrete type up front.
//!
//! Every learned parameter travels as its IEEE-754 bit pattern, so a loaded
//! model produces **bit-identical** probabilities to the one that was
//! saved.

use std::path::Path;

use er_core::{PersistError, PersistResult};
use er_persist::{read_snapshot, write_snapshot, Decode, Encode, Reader, Writer};

use crate::logistic::LogisticRegression;
use crate::model::ProbabilisticClassifier;
use crate::platt::PlattScaler;
use crate::scale::Standardizer;
use crate::svm::LinearSvm;

/// Snapshot payload tag for model files.
pub const MODEL_SNAPSHOT_TAG: u32 = 0x4d44_4c31; // "MDL1"

impl Encode for Standardizer {
    fn encode(&self, w: &mut Writer) {
        self.means.encode(w);
        self.stds.encode(w);
    }
}

impl Decode for Standardizer {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        let means = Vec::<f64>::decode(r)?;
        let stds = Vec::<f64>::decode(r)?;
        if means.len() != stds.len() {
            return Err(PersistError::Corrupt(format!(
                "standardizer has {} means but {} deviations",
                means.len(),
                stds.len()
            )));
        }
        Ok(Standardizer { means, stds })
    }
}

impl Encode for PlattScaler {
    fn encode(&self, w: &mut Writer) {
        w.write_f64(self.a);
        w.write_f64(self.b);
    }
}

impl Decode for PlattScaler {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        Ok(PlattScaler {
            a: r.read_f64()?,
            b: r.read_f64()?,
        })
    }
}

impl Encode for LogisticRegression {
    fn encode(&self, w: &mut Writer) {
        self.scaler.encode(w);
        self.weights.encode(w);
        w.write_f64(self.intercept);
    }
}

impl Decode for LogisticRegression {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        let scaler = Standardizer::decode(r)?;
        let weights = Vec::<f64>::decode(r)?;
        let intercept = r.read_f64()?;
        if weights.len() != scaler.num_features() {
            return Err(PersistError::Corrupt(format!(
                "logistic model has {} weights for {} scaled features",
                weights.len(),
                scaler.num_features()
            )));
        }
        Ok(LogisticRegression {
            scaler,
            weights,
            intercept,
        })
    }
}

impl Encode for LinearSvm {
    fn encode(&self, w: &mut Writer) {
        self.scaler.encode(w);
        self.weights.encode(w);
        w.write_f64(self.bias);
        self.platt.encode(w);
    }
}

impl Decode for LinearSvm {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        let scaler = Standardizer::decode(r)?;
        let weights = Vec::<f64>::decode(r)?;
        let bias = r.read_f64()?;
        let platt = PlattScaler::decode(r)?;
        if weights.len() != scaler.num_features() {
            return Err(PersistError::Corrupt(format!(
                "svm model has {} weights for {} scaled features",
                weights.len(),
                scaler.num_features()
            )));
        }
        Ok(LinearSvm {
            scaler,
            weights,
            bias,
            platt,
        })
    }
}

/// A trained classifier in a form snapshots can store and recovery can
/// re-attach: the concrete model behind a type tag.
#[derive(Debug, Clone)]
pub enum SavedModel {
    /// A trained [`LogisticRegression`].
    Logistic(LogisticRegression),
    /// A trained [`LinearSvm`] with its Platt calibration.
    Svm(LinearSvm),
}

impl SavedModel {
    /// Number of raw features the model scores.
    pub fn num_features(&self) -> usize {
        match self {
            SavedModel::Logistic(model) => model.scaler.num_features(),
            SavedModel::Svm(model) => model.scaler.num_features(),
        }
    }

    /// Short display name of the wrapped classifier.
    pub fn name(&self) -> &'static str {
        match self {
            SavedModel::Logistic(_) => "LogisticRegression",
            SavedModel::Svm(_) => "LinearSVM",
        }
    }
}

impl ProbabilisticClassifier for SavedModel {
    fn probability(&self, features: &[f64]) -> f64 {
        match self {
            SavedModel::Logistic(model) => model.probability(features),
            SavedModel::Svm(model) => model.probability(features),
        }
    }
}

impl From<LogisticRegression> for SavedModel {
    fn from(model: LogisticRegression) -> Self {
        SavedModel::Logistic(model)
    }
}

impl From<LinearSvm> for SavedModel {
    fn from(model: LinearSvm) -> Self {
        SavedModel::Svm(model)
    }
}

impl Encode for SavedModel {
    fn encode(&self, w: &mut Writer) {
        match self {
            SavedModel::Logistic(model) => {
                w.write_u8(0);
                model.encode(w);
            }
            SavedModel::Svm(model) => {
                w.write_u8(1);
                model.encode(w);
            }
        }
    }
}

impl Decode for SavedModel {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        match r.read_u8()? {
            0 => Ok(SavedModel::Logistic(LogisticRegression::decode(r)?)),
            1 => Ok(SavedModel::Svm(LinearSvm::decode(r)?)),
            other => Err(PersistError::Corrupt(format!(
                "unknown saved-model tag {other}"
            ))),
        }
    }
}

/// Writes a trained model to its own atomic snapshot file.  The header
/// fingerprint records the feature-vector width, so loading a model trained
/// for a different feature set fails cleanly.
pub fn save_model(path: &Path, model: &SavedModel) -> PersistResult<()> {
    write_snapshot(path, MODEL_SNAPSHOT_TAG, model.num_features() as u64, model)
}

/// Loads a model snapshot written by [`save_model`].
/// `expected_features` of `Some(n)` enforces the feature-vector width.
pub fn load_model(path: &Path, expected_features: Option<usize>) -> PersistResult<SavedModel> {
    let (model, _) = read_snapshot::<SavedModel>(
        path,
        MODEL_SNAPSHOT_TAG,
        expected_features.map(|n| n as u64),
    )?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TrainingSet;
    use crate::model::Classifier;
    use crate::{LinearSvmConfig, LogisticRegressionConfig};
    use er_persist::{decode_from_slice, encode_to_vec};

    /// A tiny separable training set.
    fn training_set() -> TrainingSet {
        let mut training = TrainingSet::new();
        for i in 0..20 {
            let x = i as f64 / 10.0;
            training.push(vec![x, 1.0 - x], x > 0.9);
        }
        training
    }

    fn probe_rows() -> Vec<Vec<f64>> {
        (0..40)
            .map(|i| vec![i as f64 * 0.07 - 0.3, (40 - i) as f64 * 0.05])
            .collect()
    }

    fn assert_bit_identical(a: &SavedModel, b: &SavedModel) {
        for row in probe_rows() {
            assert_eq!(
                a.probability(&row).to_bits(),
                b.probability(&row).to_bits(),
                "probabilities diverged on {row:?}"
            );
        }
    }

    #[test]
    fn logistic_model_round_trips_bit_identically() {
        let model =
            LogisticRegression::fit(&LogisticRegressionConfig::default(), &training_set()).unwrap();
        let saved = SavedModel::from(model);
        let back: SavedModel = decode_from_slice(&encode_to_vec(&saved)).unwrap();
        assert_eq!(back.name(), "LogisticRegression");
        assert_eq!(back.num_features(), 2);
        assert_bit_identical(&saved, &back);
    }

    #[test]
    fn svm_model_round_trips_bit_identically() {
        let model = LinearSvm::fit(&LinearSvmConfig::default(), &training_set()).unwrap();
        let saved = SavedModel::from(model);
        let back: SavedModel = decode_from_slice(&encode_to_vec(&saved)).unwrap();
        assert_eq!(back.name(), "LinearSVM");
        assert_bit_identical(&saved, &back);
    }

    #[test]
    fn unknown_model_tag_is_corrupt() {
        let err = decode_from_slice::<SavedModel>(&[7]).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)));
    }

    #[test]
    fn inconsistent_widths_are_corrupt() {
        let mut w = Writer::new();
        vec![0.0f64; 3].encode(&mut w); // 3 means
        vec![1.0f64; 2].encode(&mut w); // but 2 deviations
        let err = decode_from_slice::<Standardizer>(w.as_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)));
    }
}
