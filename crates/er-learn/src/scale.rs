//! Feature standardisation (z-scoring).
//!
//! The weighting schemes live on wildly different scales (JS in `[0,1]`, LCP
//! in the hundreds), so gradient-based training needs the features centred
//! and scaled.  The standardiser is fitted on the training sample only and
//! then applied to every candidate pair at prediction time, exactly like
//! scikit-learn's `StandardScaler` inside a pipeline.

use serde::{Deserialize, Serialize};

/// Per-feature mean/standard-deviation scaler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Standardizer {
    pub(crate) means: Vec<f64>,
    pub(crate) stds: Vec<f64>,
}

impl Standardizer {
    /// Fits the scaler on a set of feature rows.
    ///
    /// Constant features receive a standard deviation of 1 so they map to 0
    /// rather than NaN.
    pub fn fit<'a>(rows: impl Iterator<Item = &'a [f64]> + Clone, num_features: usize) -> Self {
        let mut means = vec![0.0; num_features];
        let mut count = 0usize;
        for row in rows.clone() {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
            count += 1;
        }
        if count > 0 {
            for m in &mut means {
                *m /= count as f64;
            }
        }
        let mut vars = vec![0.0; num_features];
        for row in rows {
            for ((var, v), m) in vars.iter_mut().zip(row).zip(&means) {
                let d = v - m;
                *var += d * d;
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let std = if count > 1 {
                    (v / (count as f64 - 1.0)).sqrt()
                } else {
                    0.0
                };
                if std > 1e-12 {
                    std
                } else {
                    1.0
                }
            })
            .collect();
        Standardizer { means, stds }
    }

    /// Number of features the scaler was fitted on.
    pub fn num_features(&self) -> usize {
        self.means.len()
    }

    /// Standardises a feature row in place.
    pub fn transform_in_place(&self, row: &mut [f64]) {
        for ((v, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = (*v - m) / s;
        }
    }

    /// Returns the standardised copy of a feature row.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardised_columns_have_zero_mean_unit_variance() {
        let rows = [
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ];
        let scaler = Standardizer::fit(rows.iter().map(Vec::as_slice), 2);
        let transformed: Vec<Vec<f64>> = rows.iter().map(|r| scaler.transform(r)).collect();
        for col in 0..2 {
            let mean: f64 = transformed.iter().map(|r| r[col]).sum::<f64>() / 4.0;
            let var: f64 = transformed
                .iter()
                .map(|r| (r[col] - mean).powi(2))
                .sum::<f64>()
                / 3.0;
            assert!(mean.abs() < 1e-12, "column {col} mean {mean}");
            assert!((var - 1.0).abs() < 1e-9, "column {col} variance {var}");
        }
    }

    #[test]
    fn constant_feature_maps_to_zero() {
        let rows = [vec![5.0], vec![5.0], vec![5.0]];
        let scaler = Standardizer::fit(rows.iter().map(Vec::as_slice), 1);
        assert_eq!(scaler.transform(&[5.0]), vec![0.0]);
    }

    #[test]
    fn transform_in_place_matches_transform() {
        let rows = [vec![1.0, -1.0], vec![3.0, 4.0]];
        let scaler = Standardizer::fit(rows.iter().map(Vec::as_slice), 2);
        let mut row = vec![2.0, 1.0];
        let expected = scaler.transform(&row);
        scaler.transform_in_place(&mut row);
        assert_eq!(row, expected);
    }

    #[test]
    fn empty_fit_does_not_panic() {
        let rows: Vec<Vec<f64>> = vec![];
        let scaler = Standardizer::fit(rows.iter().map(Vec::as_slice), 3);
        assert_eq!(scaler.num_features(), 3);
        assert_eq!(scaler.transform(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }
}
