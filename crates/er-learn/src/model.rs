//! Classifier traits.

use er_core::Result;

use crate::dataset::TrainingSet;

/// A binary probabilistic classifier over raw (unscaled) feature vectors.
///
/// This is the abstraction Generalized Supervised Meta-blocking builds on:
/// whatever model is used, every candidate pair must receive a matching
/// probability in `[0, 1]`.
pub trait ProbabilisticClassifier: Send + Sync {
    /// The probability that the pair described by `features` is a match.
    fn probability(&self, features: &[f64]) -> f64;

    /// Hard classification at the 0.5 threshold (the behaviour of the
    /// original Supervised Meta-blocking binary classifier, BCl).
    fn classify(&self, features: &[f64]) -> bool {
        self.probability(features) >= 0.5
    }
}

/// A trainable classifier.
pub trait Classifier: Sized {
    /// Configuration type of the training procedure.
    type Config;

    /// Trains the classifier on a labelled set of raw feature vectors.
    fn fit(config: &Self::Config, training: &TrainingSet) -> Result<Self>;
}

impl<T: ProbabilisticClassifier + ?Sized> ProbabilisticClassifier for Box<T> {
    fn probability(&self, features: &[f64]) -> f64 {
        (**self).probability(features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant(f64);

    impl ProbabilisticClassifier for Constant {
        fn probability(&self, _features: &[f64]) -> f64 {
            self.0
        }
    }

    #[test]
    fn default_classify_uses_half_threshold() {
        assert!(Constant(0.7).classify(&[]));
        assert!(Constant(0.5).classify(&[]));
        assert!(!Constant(0.49).classify(&[]));
    }

    #[test]
    fn boxed_classifier_delegates() {
        let boxed: Box<dyn ProbabilisticClassifier> = Box::new(Constant(0.9));
        assert!((boxed.probability(&[]) - 0.9).abs() < 1e-12);
        assert!(boxed.classify(&[]));
    }
}
