//! Hand-built probabilistic classifiers and training-set sampling.
//!
//! The paper trains a scikit-learn SVC (with probability calibration) or a
//! Weka logistic regression over the feature vectors of a small, balanced
//! sample of labelled candidate pairs, and reports that the two classifiers
//! give almost identical results.  This crate provides both from scratch:
//!
//! * [`LogisticRegression`] — full-batch gradient descent with L2
//!   regularisation, producing calibrated probabilities directly;
//! * [`LinearSvm`] — a Pegasos-style hinge-loss SVM whose decision values are
//!   turned into probabilities with [Platt scaling](platt);
//! * [`Standardizer`] — z-score feature scaling fitted on the training set;
//! * [`sampling`] — balanced undersampling of labelled pairs (the paper's
//!   50-to-500-instance training sets).
//!
//! All training is deterministic given a seed.

pub mod dataset;
pub mod logistic;
pub mod model;
pub mod persist;
pub mod platt;
pub mod sampling;
pub mod scale;
pub mod svm;

pub use dataset::TrainingSet;
pub use logistic::{LogisticRegression, LogisticRegressionConfig};
pub use model::{Classifier, ProbabilisticClassifier};
pub use persist::{load_model, save_model, SavedModel};
pub use platt::PlattScaler;
pub use sampling::{balanced_undersample, paper_baseline_per_class, BalancedSample};
pub use scale::Standardizer;
pub use svm::{LinearSvm, LinearSvmConfig};
