//! Dirty ER dataset generation (the scalability datasets D10K…D300K).
//!
//! A dirty dataset is a single collection containing duplicate *clusters*: a
//! base record plus one or more noised copies.  The ground truth consists of
//! every within-cluster pair.  Cluster sizes follow the configuration's
//! `max_cluster_size`; non-duplicated background entities fill the remainder.

use er_core::{Dataset, EntityCollection, EntityId, EntityProfile, GroundTruth, Result};
use rand::Rng;

use crate::config::DirtyConfig;
use crate::noise::apply_noise;
use crate::vocab::Vocabulary;

const ATTRIBUTE_NAMES: [&str; 3] = ["name", "address", "details"];

fn base_record(cfg: &DirtyConfig, vocab: &Vocabulary, rng: &mut impl Rng) -> Vec<usize> {
    let len = rng.gen_range(cfg.min_tokens..=cfg.max_tokens);
    let distinctive = ((len as f64) * cfg.distinctive_fraction).round() as usize;
    let mut tokens = Vec::with_capacity(len);
    for _ in 0..distinctive {
        tokens.push(vocab.sample_tail(rng, 0.5));
    }
    for _ in distinctive..len {
        tokens.push(vocab.sample(rng));
    }
    tokens
}

fn render_profile(external_id: String, tokens: &[usize], vocab: &Vocabulary) -> EntityProfile {
    let mut profile = EntityProfile::new(external_id);
    if tokens.is_empty() {
        return profile;
    }
    let per_attr = tokens.len().div_ceil(ATTRIBUTE_NAMES.len()).max(1);
    for (i, chunk) in tokens.chunks(per_attr).enumerate() {
        let value = chunk
            .iter()
            .map(|&t| vocab.token(t))
            .collect::<Vec<_>>()
            .join(" ");
        profile.push_attribute(ATTRIBUTE_NAMES[i % ATTRIBUTE_NAMES.len()], value);
    }
    profile
}

/// Generates a Dirty ER dataset according to the configuration.
pub fn generate_dirty(cfg: &DirtyConfig) -> Result<Dataset> {
    cfg.validate()?;
    let vocab = Vocabulary::new(cfg.vocab_size, cfg.zipf_exponent);
    let mut rng = er_core::seeded_rng(cfg.seed);

    let mut profiles: Vec<EntityProfile> = Vec::with_capacity(cfg.num_entities);
    let mut truth: Vec<(EntityId, EntityId)> = Vec::new();
    let mut bases: Vec<Vec<usize>> = Vec::new();

    while profiles.len() < cfg.num_entities {
        // Hard negatives: some records are confusable variants of an earlier
        // one (they share about half of its tokens without being duplicates).
        let base = if !bases.is_empty() && rng.gen::<f64>() < cfg.confusable_fraction {
            let source = bases[rng.gen_range(0..bases.len())].clone();
            source
                .iter()
                .map(|&token| {
                    if rng.gen::<f64>() < 0.7 {
                        token
                    } else if rng.gen::<f64>() < cfg.distinctive_fraction {
                        vocab.sample_tail(&mut rng, 0.5)
                    } else {
                        vocab.sample(&mut rng)
                    }
                })
                .collect()
        } else {
            base_record(cfg, &vocab, &mut rng)
        };
        bases.push(base.clone());
        let idx = profiles.len();
        profiles.push(render_profile(format!("{}-{idx}", cfg.name), &base, &vocab));

        // Decide whether this record spawns a duplicate cluster.
        if rng.gen::<f64>() < cfg.duplicate_fraction && profiles.len() < cfg.num_entities {
            let copies = rng.gen_range(1..cfg.max_cluster_size);
            let mut cluster = vec![EntityId::from(idx)];
            for _ in 0..copies {
                if profiles.len() >= cfg.num_entities {
                    break;
                }
                let copy_tokens = apply_noise(&base, &cfg.noise, &vocab, &mut rng);
                let copy_idx = profiles.len();
                profiles.push(render_profile(
                    format!("{}-{copy_idx}", cfg.name),
                    &copy_tokens,
                    &vocab,
                ));
                cluster.push(EntityId::from(copy_idx));
            }
            // All within-cluster pairs are duplicates.
            for i in 0..cluster.len() {
                for j in i + 1..cluster.len() {
                    truth.push((cluster[i], cluster[j]));
                }
            }
        }
    }

    Dataset::dirty(
        cfg.name.clone(),
        EntityCollection::new(cfg.name.clone(), profiles),
        GroundTruth::from_pairs(truth),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NoiseConfig;
    use er_core::DatasetKind;

    fn config(num_entities: usize, seed: u64) -> DirtyConfig {
        DirtyConfig {
            name: "dirty-test".into(),
            num_entities,
            duplicate_fraction: 0.3,
            max_cluster_size: 4,
            vocab_size: 3000,
            zipf_exponent: 1.05,
            min_tokens: 5,
            max_tokens: 12,
            distinctive_fraction: 0.5,
            confusable_fraction: 0.4,
            noise: NoiseConfig::light(),
            seed,
        }
    }

    #[test]
    fn entity_count_matches() {
        let ds = generate_dirty(&config(500, 1)).unwrap();
        assert_eq!(ds.kind, DatasetKind::Dirty);
        assert_eq!(ds.num_entities(), 500);
    }

    #[test]
    fn has_duplicates_and_they_are_valid() {
        let ds = generate_dirty(&config(800, 2)).unwrap();
        assert!(ds.num_duplicates() > 0);
        let n = ds.num_entities() as u32;
        for &(a, b) in ds.ground_truth.pairs() {
            assert!(a.0 < n && b.0 < n && a != b);
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = generate_dirty(&config(300, 5)).unwrap();
        let b = generate_dirty(&config(300, 5)).unwrap();
        assert_eq!(a.profiles, b.profiles);
        assert_eq!(a.ground_truth.pairs(), b.ground_truth.pairs());
    }

    #[test]
    fn duplicate_fraction_influences_truth_size() {
        let few = generate_dirty(&DirtyConfig {
            duplicate_fraction: 0.05,
            ..config(1000, 3)
        })
        .unwrap();
        let many = generate_dirty(&DirtyConfig {
            duplicate_fraction: 0.45,
            ..config(1000, 3)
        })
        .unwrap();
        assert!(many.num_duplicates() > few.num_duplicates());
    }

    #[test]
    fn larger_datasets_have_more_duplicates() {
        let small = generate_dirty(&config(300, 4)).unwrap();
        let large = generate_dirty(&config(1500, 4)).unwrap();
        assert!(large.num_duplicates() > small.num_duplicates());
    }
}
