//! Generator configuration types.

use serde::{Deserialize, Serialize};

/// How a duplicate copy of a base record is perturbed.
///
/// The noise level controls how many blocks a duplicate pair ends up sharing
/// after Token Blocking, which is the quantity the paper identifies as the
/// driver of meta-blocking recall (Figures 15/16): heavily noised datasets
/// have many duplicates sharing a single block and therefore lower recall.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Probability that each token of the base record is dropped in the copy.
    pub drop_probability: f64,
    /// Probability that each surviving token is replaced by a random
    /// vocabulary token.
    pub replace_probability: f64,
    /// Number of extra random tokens appended to the copy.
    pub extra_tokens: usize,
}

impl NoiseConfig {
    /// Light noise: duplicates keep most of their tokens.
    pub fn light() -> Self {
        NoiseConfig {
            drop_probability: 0.05,
            replace_probability: 0.02,
            extra_tokens: 1,
        }
    }

    /// Moderate noise.
    pub fn moderate() -> Self {
        NoiseConfig {
            drop_probability: 0.25,
            replace_probability: 0.10,
            extra_tokens: 2,
        }
    }

    /// Heavy noise: a sizeable fraction of duplicates will share only one
    /// block (or none at all), capping the achievable recall as in
    /// AbtBuy / AmazonGP.
    pub fn heavy() -> Self {
        NoiseConfig {
            drop_probability: 0.50,
            replace_probability: 0.22,
            extra_tokens: 3,
        }
    }

    /// Validates probability ranges.
    pub fn validate(&self) -> er_core::Result<()> {
        for (name, p) in [
            ("drop_probability", self.drop_probability),
            ("replace_probability", self.replace_probability),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(er_core::Error::InvalidParameter(format!(
                    "{name} must be in [0,1], got {p}"
                )));
            }
        }
        Ok(())
    }
}

/// Configuration of a synthetic Clean-Clean ER dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CleanCleanConfig {
    /// Dataset name.
    pub name: String,
    /// Number of entities in the first collection, |E1|.
    pub e1_size: usize,
    /// Number of entities in the second collection, |E2|.
    pub e2_size: usize,
    /// Number of true duplicate pairs, |D| (each duplicate has one copy in E1
    /// and one in E2).
    pub num_duplicates: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Zipf exponent of the vocabulary.
    pub zipf_exponent: f64,
    /// Minimum number of tokens per entity profile.
    pub min_tokens: usize,
    /// Maximum number of tokens per entity profile.
    pub max_tokens: usize,
    /// Fraction of each base record's tokens drawn from the distinctive tail
    /// of the vocabulary (the rest come from the Zipfian head).
    pub distinctive_fraction: f64,
    /// Fraction of the background (non-matching) entities that are generated
    /// as *confusable* variants of some real record: they share roughly half
    /// of its tokens without being a match.  These hard negatives reproduce
    /// the real datasets' property that many superfluous pairs have strong
    /// co-occurrence patterns, keeping meta-blocking precision well below 1.
    pub confusable_fraction: f64,
    /// Noise applied to the E2 copy of each duplicate.
    pub noise: NoiseConfig,
    /// Seed for the generator.
    pub seed: u64,
}

impl CleanCleanConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> er_core::Result<()> {
        if self.num_duplicates > self.e1_size || self.num_duplicates > self.e2_size {
            return Err(er_core::Error::InvalidDataset(format!(
                "{}: more duplicates ({}) than entities ({} / {})",
                self.name, self.num_duplicates, self.e1_size, self.e2_size
            )));
        }
        if self.min_tokens == 0 || self.min_tokens > self.max_tokens {
            return Err(er_core::Error::InvalidParameter(format!(
                "{}: invalid token range {}..{}",
                self.name, self.min_tokens, self.max_tokens
            )));
        }
        if !(0.0..=1.0).contains(&self.distinctive_fraction) {
            return Err(er_core::Error::InvalidParameter(format!(
                "{}: distinctive_fraction must be in [0,1]",
                self.name
            )));
        }
        if !(0.0..=1.0).contains(&self.confusable_fraction) {
            return Err(er_core::Error::InvalidParameter(format!(
                "{}: confusable_fraction must be in [0,1]",
                self.name
            )));
        }
        self.noise.validate()
    }
}

/// Configuration of a synthetic Dirty ER dataset (used by the scalability
/// analysis, Figures 17/18).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DirtyConfig {
    /// Dataset name (e.g. "D10K").
    pub name: String,
    /// Total number of entity profiles.
    pub num_entities: usize,
    /// Fraction of profiles that are duplicates of an earlier profile.
    pub duplicate_fraction: f64,
    /// Maximum duplicates per cluster (including the original).
    pub max_cluster_size: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Zipf exponent of the vocabulary.
    pub zipf_exponent: f64,
    /// Minimum number of tokens per entity profile.
    pub min_tokens: usize,
    /// Maximum number of tokens per entity profile.
    pub max_tokens: usize,
    /// Fraction of tokens drawn from the distinctive tail.
    pub distinctive_fraction: f64,
    /// Fraction of non-duplicated entities generated as confusable variants
    /// of an earlier record (hard negatives); see
    /// [`CleanCleanConfig::confusable_fraction`].
    pub confusable_fraction: f64,
    /// Noise applied to duplicate copies.
    pub noise: NoiseConfig,
    /// Seed for the generator.
    pub seed: u64,
}

impl DirtyConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> er_core::Result<()> {
        if self.num_entities < 2 {
            return Err(er_core::Error::InvalidDataset(format!(
                "{}: need at least two entities",
                self.name
            )));
        }
        if !(0.0..1.0).contains(&self.duplicate_fraction) {
            return Err(er_core::Error::InvalidParameter(format!(
                "{}: duplicate_fraction must be in [0,1)",
                self.name
            )));
        }
        if self.max_cluster_size < 2 {
            return Err(er_core::Error::InvalidParameter(format!(
                "{}: max_cluster_size must be at least 2",
                self.name
            )));
        }
        if self.min_tokens == 0 || self.min_tokens > self.max_tokens {
            return Err(er_core::Error::InvalidParameter(format!(
                "{}: invalid token range {}..{}",
                self.name, self.min_tokens, self.max_tokens
            )));
        }
        if !(0.0..=1.0).contains(&self.confusable_fraction) {
            return Err(er_core::Error::InvalidParameter(format!(
                "{}: confusable_fraction must be in [0,1]",
                self.name
            )));
        }
        self.noise.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_clean() -> CleanCleanConfig {
        CleanCleanConfig {
            name: "test".into(),
            e1_size: 100,
            e2_size: 120,
            num_duplicates: 80,
            vocab_size: 500,
            zipf_exponent: 1.0,
            min_tokens: 4,
            max_tokens: 10,
            distinctive_fraction: 0.5,
            confusable_fraction: 0.5,
            noise: NoiseConfig::moderate(),
            seed: 1,
        }
    }

    #[test]
    fn valid_config_passes() {
        assert!(base_clean().validate().is_ok());
    }

    #[test]
    fn too_many_duplicates_rejected() {
        let mut cfg = base_clean();
        cfg.num_duplicates = 101;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn invalid_token_range_rejected() {
        let mut cfg = base_clean();
        cfg.min_tokens = 12;
        assert!(cfg.validate().is_err());
        cfg.min_tokens = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn noise_probabilities_validated() {
        let mut cfg = base_clean();
        cfg.noise.drop_probability = 1.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn dirty_config_validation() {
        let cfg = DirtyConfig {
            name: "D10K".into(),
            num_entities: 1000,
            duplicate_fraction: 0.3,
            max_cluster_size: 4,
            vocab_size: 2000,
            zipf_exponent: 1.0,
            min_tokens: 4,
            max_tokens: 10,
            distinctive_fraction: 0.5,
            confusable_fraction: 0.5,
            noise: NoiseConfig::light(),
            seed: 9,
        };
        assert!(cfg.validate().is_ok());
        let mut bad = cfg.clone();
        bad.duplicate_fraction = 1.0;
        assert!(bad.validate().is_err());
        let mut bad = cfg;
        bad.max_cluster_size = 1;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn noise_presets_are_ordered() {
        assert!(NoiseConfig::light().drop_probability < NoiseConfig::moderate().drop_probability);
        assert!(NoiseConfig::moderate().drop_probability < NoiseConfig::heavy().drop_probability);
    }
}
