//! Synthetic dataset generators for the GSMB reproduction.
//!
//! The paper evaluates on nine real-world Clean-Clean ER benchmarks and five
//! synthetic Dirty ER datasets.  The real benchmarks are not redistributable
//! here, so this crate generates *structural analogues*: datasets whose block
//! co-occurrence structure (redundancy level, block-size skew, class
//! imbalance, fraction of duplicates sharing only one block) matches the
//! published characteristics.  Meta-blocking never inspects raw values — only
//! the co-occurrence structure — so these analogues exercise exactly the same
//! code paths and preserve the paper's qualitative results.
//!
//! See `DESIGN.md` §5 for the substitution rationale.

pub mod catalog;
pub mod clean_clean;
pub mod config;
pub mod dirty;
pub mod noise;
pub mod scalability;
pub mod vocab;

pub use catalog::{
    clean_clean_catalog, dirty_catalog, generate_catalog_dataset, CatalogOptions, DatasetName,
};
pub use clean_clean::generate_clean_clean;
pub use config::{CleanCleanConfig, DirtyConfig, NoiseConfig};
pub use dirty::generate_dirty;
pub use scalability::{generate_scalability, ScalabilityConfig};
pub use vocab::Vocabulary;
