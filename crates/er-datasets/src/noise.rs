//! Token-level noise applied to duplicate copies.

use rand::Rng;

use crate::config::NoiseConfig;
use crate::vocab::Vocabulary;

/// Applies the configured noise to a base token-index list, producing the
/// token list of the duplicate copy.
///
/// Guarantees that the result is never empty: if every token would be dropped,
/// the first base token is kept so the copy still has a blocking signature.
pub fn apply_noise(
    base: &[usize],
    noise: &NoiseConfig,
    vocab: &Vocabulary,
    rng: &mut impl Rng,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(base.len() + noise.extra_tokens);
    for &token in base {
        if rng.gen::<f64>() < noise.drop_probability {
            continue;
        }
        if rng.gen::<f64>() < noise.replace_probability {
            out.push(vocab.sample(rng));
        } else {
            out.push(token);
        }
    }
    if out.is_empty() && !base.is_empty() {
        out.push(base[0]);
    }
    for _ in 0..noise.extra_tokens {
        out.push(vocab.sample(rng));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::seeded_rng;

    #[test]
    fn zero_noise_preserves_tokens() {
        let vocab = Vocabulary::new(100, 1.0);
        let noise = NoiseConfig {
            drop_probability: 0.0,
            replace_probability: 0.0,
            extra_tokens: 0,
        };
        let mut rng = seeded_rng(1);
        let base = vec![1, 2, 3];
        assert_eq!(apply_noise(&base, &noise, &vocab, &mut rng), base);
    }

    #[test]
    fn full_drop_still_keeps_one_token() {
        let vocab = Vocabulary::new(100, 1.0);
        let noise = NoiseConfig {
            drop_probability: 1.0,
            replace_probability: 0.0,
            extra_tokens: 0,
        };
        let mut rng = seeded_rng(2);
        let out = apply_noise(&[7, 8, 9], &noise, &vocab, &mut rng);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn extra_tokens_are_appended() {
        let vocab = Vocabulary::new(100, 1.0);
        let noise = NoiseConfig {
            drop_probability: 0.0,
            replace_probability: 0.0,
            extra_tokens: 3,
        };
        let mut rng = seeded_rng(3);
        let out = apply_noise(&[1], &noise, &vocab, &mut rng);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], 1);
    }

    #[test]
    fn heavier_noise_preserves_fewer_original_tokens() {
        let vocab = Vocabulary::new(1000, 1.0);
        let mut rng = seeded_rng(4);
        let base: Vec<usize> = (100..150).collect();
        let count_preserved = |noise: &NoiseConfig, rng: &mut rand::rngs::StdRng| {
            let mut preserved = 0usize;
            for _ in 0..200 {
                let out = apply_noise(&base, noise, &vocab, rng);
                preserved += out.iter().filter(|t| base.contains(t)).count();
            }
            preserved
        };
        let light = count_preserved(&NoiseConfig::light(), &mut rng);
        let heavy = count_preserved(&NoiseConfig::heavy(), &mut rng);
        assert!(
            light > heavy,
            "light {light} should preserve more than heavy {heavy}"
        );
    }

    #[test]
    fn empty_base_stays_empty_except_extras() {
        let vocab = Vocabulary::new(10, 1.0);
        let noise = NoiseConfig {
            drop_probability: 0.5,
            replace_probability: 0.5,
            extra_tokens: 2,
        };
        let mut rng = seeded_rng(5);
        let out = apply_noise(&[], &noise, &vocab, &mut rng);
        assert_eq!(out.len(), 2);
    }
}
