//! Clean-Clean ER dataset generation.
//!
//! Each dataset consists of two duplicate-free collections E1 and E2 that
//! overlap on `num_duplicates` real-world objects.  A *base record* (a token
//! multiset mixing distinctive tail tokens with frequent head tokens) is
//! generated per object; E1 receives the base record and E2 receives a noised
//! copy.  Both collections are padded with non-matching background entities
//! whose head tokens create the superfluous co-occurrences that make the raw
//! block collections so imprecise (Table 2 of the paper).

use er_core::{Dataset, EntityCollection, EntityId, EntityProfile, GroundTruth, Result};
use rand::Rng;

use crate::config::CleanCleanConfig;
use crate::noise::apply_noise;
use crate::vocab::Vocabulary;

/// Attribute names cycled through when rendering token lists into profiles.
/// The names themselves are irrelevant to schema-agnostic blocking.
const ATTRIBUTE_NAMES: [&str; 3] = ["title", "description", "misc"];

/// Generates a base record: a mixture of distinctive (tail) and frequent
/// (head) tokens.
fn base_record(cfg: &CleanCleanConfig, vocab: &Vocabulary, rng: &mut impl Rng) -> Vec<usize> {
    let len = rng.gen_range(cfg.min_tokens..=cfg.max_tokens);
    let distinctive = ((len as f64) * cfg.distinctive_fraction).round() as usize;
    let mut tokens = Vec::with_capacity(len);
    for _ in 0..distinctive {
        tokens.push(vocab.sample_tail(rng, 0.5));
    }
    for _ in distinctive..len {
        tokens.push(vocab.sample(rng));
    }
    tokens
}

/// Generates a *confusable* background record: a non-matching entity that
/// shares roughly half of its tokens with an existing base record (products of
/// the same family, papers by the same authors, …).  These hard negatives keep
/// the classification task realistically difficult.
fn confusable_record(
    source: &[usize],
    cfg: &CleanCleanConfig,
    vocab: &Vocabulary,
    rng: &mut impl Rng,
) -> Vec<usize> {
    source
        .iter()
        .map(|&token| {
            if rng.gen::<f64>() < 0.7 {
                token
            } else if rng.gen::<f64>() < cfg.distinctive_fraction {
                vocab.sample_tail(rng, 0.5)
            } else {
                vocab.sample(rng)
            }
        })
        .collect()
}

/// Renders a token-index list into an entity profile, spreading the tokens
/// over a few attributes.
fn render_profile(external_id: String, tokens: &[usize], vocab: &Vocabulary) -> EntityProfile {
    let mut profile = EntityProfile::new(external_id);
    if tokens.is_empty() {
        return profile;
    }
    let per_attr = tokens.len().div_ceil(ATTRIBUTE_NAMES.len()).max(1);
    for (i, chunk) in tokens.chunks(per_attr).enumerate() {
        let value = chunk
            .iter()
            .map(|&t| vocab.token(t))
            .collect::<Vec<_>>()
            .join(" ");
        profile.push_attribute(ATTRIBUTE_NAMES[i % ATTRIBUTE_NAMES.len()], value);
    }
    profile
}

/// Generates a Clean-Clean ER dataset according to the configuration.
pub fn generate_clean_clean(cfg: &CleanCleanConfig) -> Result<Dataset> {
    cfg.validate()?;
    let vocab = Vocabulary::new(cfg.vocab_size, cfg.zipf_exponent);
    let mut rng = er_core::seeded_rng(cfg.seed);

    let mut e1_profiles = Vec::with_capacity(cfg.e1_size);
    let mut e2_profiles = Vec::with_capacity(cfg.e2_size);
    let mut truth = Vec::with_capacity(cfg.num_duplicates);
    let mut bases: Vec<Vec<usize>> = Vec::with_capacity(cfg.num_duplicates);

    // Matched objects: base record in E1, noised copy in E2.
    for d in 0..cfg.num_duplicates {
        let base = base_record(cfg, &vocab, &mut rng);
        let copy = apply_noise(&base, &cfg.noise, &vocab, &mut rng);
        e1_profiles.push(render_profile(format!("{}-a{d}", cfg.name), &base, &vocab));
        e2_profiles.push(render_profile(format!("{}-b{d}", cfg.name), &copy, &vocab));
        truth.push((EntityId::from(d), EntityId::from(cfg.e1_size + d)));
        bases.push(base);
    }

    // Background (non-matching) entities: either fresh records or confusable
    // variants of an existing one.
    let background = |rng: &mut rand::rngs::StdRng, bases: &[Vec<usize>]| -> Vec<usize> {
        if !bases.is_empty() && rng.gen::<f64>() < cfg.confusable_fraction {
            let source = &bases[rng.gen_range(0..bases.len())];
            confusable_record(source, cfg, &vocab, rng)
        } else {
            base_record(cfg, &vocab, rng)
        }
    };
    for i in cfg.num_duplicates..cfg.e1_size {
        let tokens = background(&mut rng, &bases);
        e1_profiles.push(render_profile(
            format!("{}-a{i}", cfg.name),
            &tokens,
            &vocab,
        ));
    }
    for i in cfg.num_duplicates..cfg.e2_size {
        let tokens = background(&mut rng, &bases);
        e2_profiles.push(render_profile(
            format!("{}-b{i}", cfg.name),
            &tokens,
            &vocab,
        ));
    }

    Dataset::clean_clean(
        cfg.name.clone(),
        EntityCollection::new(format!("{}-E1", cfg.name), e1_profiles),
        EntityCollection::new(format!("{}-E2", cfg.name), e2_profiles),
        GroundTruth::from_pairs(truth),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NoiseConfig;
    use er_core::DatasetKind;

    fn config(seed: u64) -> CleanCleanConfig {
        CleanCleanConfig {
            name: "synthetic".into(),
            e1_size: 200,
            e2_size: 250,
            num_duplicates: 150,
            vocab_size: 1500,
            zipf_exponent: 1.05,
            min_tokens: 5,
            max_tokens: 12,
            distinctive_fraction: 0.5,
            confusable_fraction: 0.5,
            noise: NoiseConfig::moderate(),
            seed,
        }
    }

    #[test]
    fn sizes_match_configuration() {
        let ds = generate_clean_clean(&config(1)).unwrap();
        assert_eq!(ds.kind, DatasetKind::CleanClean);
        assert_eq!(ds.len_e1(), 200);
        assert_eq!(ds.len_e2(), 250);
        assert_eq!(ds.num_duplicates(), 150);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_clean_clean(&config(7)).unwrap();
        let b = generate_clean_clean(&config(7)).unwrap();
        assert_eq!(a.profiles, b.profiles);
        assert_eq!(a.ground_truth.pairs(), b.ground_truth.pairs());
    }

    #[test]
    fn different_seeds_give_different_data() {
        let a = generate_clean_clean(&config(1)).unwrap();
        let b = generate_clean_clean(&config(2)).unwrap();
        assert_ne!(a.profiles, b.profiles);
    }

    #[test]
    fn duplicates_share_tokens_usually() {
        let ds = generate_clean_clean(&config(3)).unwrap();
        let mut sharing = 0usize;
        for &(a, b) in ds.ground_truth.pairs() {
            let ta: std::collections::HashSet<_> =
                ds.profile(a).value_tokens().into_iter().collect();
            let tb: std::collections::HashSet<_> =
                ds.profile(b).value_tokens().into_iter().collect();
            if ta.intersection(&tb).next().is_some() {
                sharing += 1;
            }
        }
        // With moderate noise the vast majority of duplicates must still share
        // at least one token (otherwise blocking recall would collapse).
        assert!(
            sharing as f64 / ds.num_duplicates() as f64 > 0.9,
            "only {sharing} of {} duplicates share a token",
            ds.num_duplicates()
        );
    }

    #[test]
    fn no_profile_is_empty() {
        let ds = generate_clean_clean(&config(4)).unwrap();
        assert!(ds.profiles.iter().all(|p| !p.is_effectively_empty()));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = config(1);
        cfg.num_duplicates = 10_000;
        assert!(generate_clean_clean(&cfg).is_err());
    }
}
