//! Zipfian token vocabulary.
//!
//! Real attribute values mix very frequent tokens (stop-word-like, e.g.
//! "smartphone") with rare, distinctive ones (model numbers).  A Zipfian
//! vocabulary reproduces that skew: token `r` (rank starting at 1) is sampled
//! with probability proportional to `1 / r^s`.  The skew determines the
//! block-size distribution after Token Blocking, which in turn drives every
//! weighting scheme.

use rand::Rng;

/// A token vocabulary with a Zipfian sampling distribution.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    /// Cumulative sampling weights, normalised to end at 1.0.
    cumulative: Vec<f64>,
    /// Zipf exponent used to build the distribution.
    exponent: f64,
}

impl Vocabulary {
    /// Creates a vocabulary of `size` tokens with Zipf exponent `exponent`.
    ///
    /// # Panics
    /// Panics if `size` is zero or `exponent` is negative.
    pub fn new(size: usize, exponent: f64) -> Self {
        assert!(size > 0, "vocabulary size must be positive");
        assert!(exponent >= 0.0, "Zipf exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(size);
        let mut acc = 0.0;
        for rank in 1..=size {
            acc += 1.0 / (rank as f64).powf(exponent);
            cumulative.push(acc);
        }
        let total = acc;
        for value in &mut cumulative {
            *value /= total;
        }
        Vocabulary {
            cumulative,
            exponent,
        }
    }

    /// Number of tokens in the vocabulary.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if the vocabulary is empty (never the case after construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// The Zipf exponent this vocabulary was built with.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Samples a token index according to the Zipf distribution
    /// (index 0 is the most frequent token).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let x: f64 = rng.gen();
        self.cumulative
            .partition_point(|&c| c < x)
            .min(self.len() - 1)
    }

    /// Samples a token index uniformly from the rarest `tail_fraction` of the
    /// vocabulary.  Used to give duplicate pairs distinctive shared tokens.
    pub fn sample_tail(&self, rng: &mut impl Rng, tail_fraction: f64) -> usize {
        let tail_fraction = tail_fraction.clamp(0.0001, 1.0);
        let start = ((1.0 - tail_fraction) * self.len() as f64) as usize;
        rng.gen_range(start..self.len())
    }

    /// Renders a token index as its string form (`tok<index>`).
    pub fn token(&self, index: usize) -> String {
        format!("tok{index}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::seeded_rng;

    #[test]
    fn head_tokens_are_sampled_more_often() {
        let vocab = Vocabulary::new(1000, 1.0);
        let mut rng = seeded_rng(1);
        let mut head = 0usize;
        let mut tail = 0usize;
        for _ in 0..20_000 {
            let idx = vocab.sample(&mut rng);
            if idx < 10 {
                head += 1;
            } else if idx >= 500 {
                tail += 1;
            }
        }
        assert!(head > tail, "head {head} should exceed tail {tail}");
    }

    #[test]
    fn zero_exponent_is_uniform_like() {
        let vocab = Vocabulary::new(100, 0.0);
        let mut rng = seeded_rng(2);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[vocab.sample(&mut rng)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 2.0, "uniform sampling too skewed: {min}..{max}");
    }

    #[test]
    fn sample_tail_stays_in_tail() {
        let vocab = Vocabulary::new(1000, 1.2);
        let mut rng = seeded_rng(3);
        for _ in 0..1000 {
            let idx = vocab.sample_tail(&mut rng, 0.25);
            assert!(idx >= 750, "tail sample {idx} outside tail");
        }
    }

    #[test]
    fn sample_never_exceeds_bounds() {
        let vocab = Vocabulary::new(5, 1.0);
        let mut rng = seeded_rng(4);
        for _ in 0..1000 {
            assert!(vocab.sample(&mut rng) < 5);
        }
    }

    #[test]
    fn token_rendering() {
        let vocab = Vocabulary::new(3, 1.0);
        assert_eq!(vocab.token(2), "tok2");
        assert_eq!(vocab.len(), 3);
        assert!(!vocab.is_empty());
    }

    #[test]
    #[should_panic(expected = "vocabulary size")]
    fn zero_size_panics() {
        let _ = Vocabulary::new(0, 1.0);
    }
}
