//! Size-parameterised synthetic corpora for the scalability harness
//! (10^5 → 10^7 entities).
//!
//! The catalog's Dirty generator ([`crate::generate_dirty`]) keeps every
//! base record alive for the whole run so any later entity can become a
//! confusable variant of it — `O(num_entities)` token lists of working
//! memory on top of the profiles.  That is fine at the paper's D300K scale
//! and wasteful at 10^7.  This generator produces the same *structure*
//! (Zipfian vocabulary, duplicate clusters, confusable hard negatives)
//! with working memory bounded by a fixed ring of recent base records:
//!
//! * the vocabulary grows with the corpus (`vocab_per_entity`) and the token
//!   distribution is mildly Zipfian (exponent 0.5), so the candidate load
//!   per entity stays near-flat as the corpus grows and total work scales
//!   linearly — the load must be bounded *by construction*, not by block
//!   purging, because the purging threshold itself shifts with scale;
//! * duplicates are emitted immediately after their base (cluster locality,
//!   as in the catalog generator);
//! * confusables draw from the last [`ScalabilityConfig::RING`] bases only.
//!
//! Generation is single-pass and deterministic per seed.

use std::collections::VecDeque;

use er_core::{Dataset, EntityCollection, EntityId, EntityProfile, GroundTruth, Result};
use rand::Rng;

use crate::config::NoiseConfig;
use crate::noise::apply_noise;
use crate::vocab::Vocabulary;

const ATTRIBUTE_NAMES: [&str; 3] = ["name", "address", "details"];

/// Configuration of a scalability corpus.
#[derive(Debug, Clone)]
pub struct ScalabilityConfig {
    /// Dataset name (e.g. "scal-1000000").
    pub name: String,
    /// Total number of entity profiles.
    pub num_entities: usize,
    /// Fraction of profiles that spawn a duplicate cluster.
    pub duplicate_fraction: f64,
    /// Maximum duplicates per cluster (including the original).
    pub max_cluster_size: usize,
    /// Vocabulary tokens per entity; the vocabulary is
    /// `max(1000, num_entities as f64 * vocab_per_entity)` so block sizes
    /// stay flat across corpus sizes.
    pub vocab_per_entity: f64,
    /// Zipf exponent of the vocabulary.
    pub zipf_exponent: f64,
    /// Minimum tokens per profile.
    pub min_tokens: usize,
    /// Maximum tokens per profile.
    pub max_tokens: usize,
    /// Fraction of each base record's tokens drawn from the distinctive
    /// vocabulary tail.
    pub distinctive_fraction: f64,
    /// Fraction of background entities generated as confusable variants of
    /// a recent record (hard negatives).
    pub confusable_fraction: f64,
    /// Fraction of entities generated as *hubs*: all their tokens come from
    /// a compact shared pool (sized `num_entities / 1000`, at least 512), so
    /// they land in mid-size blocks that survive cleaning and carry
    /// candidate lists of several hundred partners.  Hubs keep the
    /// high-degree tail of real dirty corpora present at every scale — the
    /// regime where the radix scoreboard path (rather than the dense remap
    /// fast path) engages.
    pub hub_fraction: f64,
    /// Noise applied to duplicate copies.
    pub noise: NoiseConfig,
    /// Generator seed.
    pub seed: u64,
}

impl ScalabilityConfig {
    /// Number of recent base records kept for confusable generation; the
    /// generator's working set beyond the emitted profiles.
    pub const RING: usize = 512;

    /// The default corpus shape at a given entity count.
    pub fn at_scale(num_entities: usize, seed: u64) -> Self {
        ScalabilityConfig {
            name: format!("scal-{num_entities}"),
            num_entities,
            duplicate_fraction: 0.2,
            max_cluster_size: 4,
            vocab_per_entity: 4.0,
            // With exponent s and vocabulary V ∝ n, per-entity candidate
            // load after cleaning grows like n·Σp² — ~flat (ln V) at s=0.5
            // but superlinear at the catalog's s≈1, which at 10^6+ entities
            // blows past the u32 pair-index limit.  0.5 keeps load bounded
            // by construction while still giving purging a skewed head.
            zipf_exponent: 0.5,
            min_tokens: 5,
            max_tokens: 12,
            distinctive_fraction: 0.5,
            confusable_fraction: 0.3,
            hub_fraction: 0.01,
            noise: NoiseConfig::light(),
            seed,
        }
    }

    /// The vocabulary size this configuration yields.
    pub fn vocab_size(&self) -> usize {
        ((self.num_entities as f64 * self.vocab_per_entity) as usize).max(1000)
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.num_entities == 0 {
            return Err(er_core::Error::InvalidParameter(format!(
                "{}: num_entities must be positive",
                self.name
            )));
        }
        if self.min_tokens == 0 || self.min_tokens > self.max_tokens {
            return Err(er_core::Error::InvalidParameter(format!(
                "{}: invalid token range {}..{}",
                self.name, self.min_tokens, self.max_tokens
            )));
        }
        if self.max_cluster_size < 2 {
            return Err(er_core::Error::InvalidParameter(format!(
                "{}: max_cluster_size must be at least 2",
                self.name
            )));
        }
        for (field, value) in [
            ("duplicate_fraction", self.duplicate_fraction),
            ("distinctive_fraction", self.distinctive_fraction),
            ("confusable_fraction", self.confusable_fraction),
            ("hub_fraction", self.hub_fraction),
        ] {
            if !(0.0..=1.0).contains(&value) {
                return Err(er_core::Error::InvalidParameter(format!(
                    "{}: {field} must be in [0,1], got {value}",
                    self.name
                )));
            }
        }
        self.noise.validate()
    }
}

fn base_record(cfg: &ScalabilityConfig, vocab: &Vocabulary, rng: &mut impl Rng) -> Vec<usize> {
    let len = rng.gen_range(cfg.min_tokens..=cfg.max_tokens);
    let distinctive = ((len as f64) * cfg.distinctive_fraction).round() as usize;
    let mut tokens = Vec::with_capacity(len);
    for _ in 0..distinctive {
        tokens.push(vocab.sample_tail(rng, 0.5));
    }
    for _ in distinctive..len {
        tokens.push(vocab.sample(rng));
    }
    tokens
}

fn render_profile(external_id: String, tokens: &[usize], vocab: &Vocabulary) -> EntityProfile {
    let mut profile = EntityProfile::new(external_id);
    if tokens.is_empty() {
        return profile;
    }
    let per_attr = tokens.len().div_ceil(ATTRIBUTE_NAMES.len()).max(1);
    for (i, chunk) in tokens.chunks(per_attr).enumerate() {
        let value = chunk
            .iter()
            .map(|&t| vocab.token(t))
            .collect::<Vec<_>>()
            .join(" ");
        profile.push_attribute(ATTRIBUTE_NAMES[i % ATTRIBUTE_NAMES.len()], value);
    }
    profile
}

/// Generates a Dirty ER scalability corpus.
pub fn generate_scalability(cfg: &ScalabilityConfig) -> Result<Dataset> {
    cfg.validate()?;
    let vocab = Vocabulary::new(cfg.vocab_size(), cfg.zipf_exponent);
    let mut rng = er_core::seeded_rng(cfg.seed);

    let mut profiles: Vec<EntityProfile> = Vec::with_capacity(cfg.num_entities);
    let mut truth: Vec<(EntityId, EntityId)> = Vec::new();
    let mut recent: VecDeque<Vec<usize>> = VecDeque::with_capacity(ScalabilityConfig::RING);
    // Hub tokens are the *last* pool of the vocabulary — deep-tail ranks
    // that background entities almost never sample at this exponent, so
    // hub block sizes are set by the hub population alone and stay flat
    // relative to the corpus (pool ∝ num_entities).
    let hub_pool = (cfg.num_entities / 1000).clamp(512, vocab.len());

    while profiles.len() < cfg.num_entities {
        // Hubs first: every token from the shared pool.
        let base: Vec<usize> = if rng.gen::<f64>() < cfg.hub_fraction {
            let len = rng.gen_range(cfg.min_tokens..=cfg.max_tokens);
            (0..len)
                .map(|_| vocab.len() - 1 - rng.gen_range(0..hub_pool))
                .collect()
        // Hard negatives: confusable variants of a *recent* record share
        // about half of its tokens without being duplicates.
        } else if !recent.is_empty() && rng.gen::<f64>() < cfg.confusable_fraction {
            let source = &recent[rng.gen_range(0..recent.len())];
            source
                .iter()
                .map(|&token| {
                    if rng.gen::<f64>() < 0.7 {
                        token
                    } else if rng.gen::<f64>() < cfg.distinctive_fraction {
                        vocab.sample_tail(&mut rng, 0.5)
                    } else {
                        vocab.sample(&mut rng)
                    }
                })
                .collect()
        } else {
            base_record(cfg, &vocab, &mut rng)
        };
        let idx = profiles.len();
        profiles.push(render_profile(format!("{}-{idx}", cfg.name), &base, &vocab));

        // Duplicate clusters are emitted right behind their base, so no
        // base needs to stay alive past the ring.
        if rng.gen::<f64>() < cfg.duplicate_fraction && profiles.len() < cfg.num_entities {
            let copies = rng.gen_range(1..cfg.max_cluster_size);
            let mut cluster = vec![EntityId::from(idx)];
            for _ in 0..copies {
                if profiles.len() >= cfg.num_entities {
                    break;
                }
                let copy_tokens = apply_noise(&base, &cfg.noise, &vocab, &mut rng);
                let copy_idx = profiles.len();
                profiles.push(render_profile(
                    format!("{}-{copy_idx}", cfg.name),
                    &copy_tokens,
                    &vocab,
                ));
                cluster.push(EntityId::from(copy_idx));
            }
            for i in 0..cluster.len() {
                for j in i + 1..cluster.len() {
                    truth.push((cluster[i], cluster[j]));
                }
            }
        }

        if recent.len() == ScalabilityConfig::RING {
            recent.pop_front();
        }
        recent.push_back(base);
    }

    Dataset::dirty(
        cfg.name.clone(),
        EntityCollection::new(cfg.name.clone(), profiles),
        GroundTruth::from_pairs(truth),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::DatasetKind;

    #[test]
    fn corpus_has_requested_size_and_truth() {
        let ds = generate_scalability(&ScalabilityConfig::at_scale(2000, 7)).unwrap();
        assert_eq!(ds.kind, DatasetKind::Dirty);
        assert_eq!(ds.profiles.len(), 2000);
        assert!(!ds.ground_truth.pairs().is_empty());
        assert!(ds.profiles.iter().all(|p| !p.attributes.is_empty()));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_scalability(&ScalabilityConfig::at_scale(1000, 3)).unwrap();
        let b = generate_scalability(&ScalabilityConfig::at_scale(1000, 3)).unwrap();
        let c = generate_scalability(&ScalabilityConfig::at_scale(1000, 4)).unwrap();
        for (pa, pb) in a.profiles.iter().zip(&b.profiles) {
            assert_eq!(pa.attributes, pb.attributes);
        }
        assert_eq!(a.ground_truth.pairs(), b.ground_truth.pairs());
        assert!(
            a.profiles
                .iter()
                .zip(&c.profiles)
                .any(|(pa, pc)| pa.attributes != pc.attributes),
            "different seeds should differ"
        );
    }

    #[test]
    fn vocabulary_scales_with_corpus() {
        let small = ScalabilityConfig::at_scale(10_000, 1);
        let large = ScalabilityConfig::at_scale(1_000_000, 1);
        assert_eq!(small.vocab_size(), 40_000);
        assert_eq!(large.vocab_size(), 4_000_000);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = ScalabilityConfig::at_scale(100, 1);
        cfg.num_entities = 0;
        assert!(generate_scalability(&cfg).is_err());
        let mut cfg = ScalabilityConfig::at_scale(100, 1);
        cfg.duplicate_fraction = 1.5;
        assert!(generate_scalability(&cfg).is_err());
    }
}
