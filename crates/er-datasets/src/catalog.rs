//! Named dataset recipes mirroring the paper's benchmarks.
//!
//! Each entry of [`clean_clean_catalog`] is a structural analogue of one of
//! the nine real-world Clean-Clean ER datasets in Table 1 of the paper, and
//! [`dirty_catalog`] mirrors the five synthetic Dirty ER datasets used in the
//! scalability analysis (Figures 17/18).
//!
//! Entity counts are scaled down from the originals so the full experiment
//! suite runs on a laptop (the two largest datasets stay the largest, which is
//! the only property the paper's run-time comparisons rely on); the relative
//! ordering of |C| and the noise level (which controls how many duplicates
//! share only one block, and therefore the achievable recall) follow Table 1
//! and Table 2.  Pass a larger [`CatalogOptions::scale`] to approach the
//! original sizes.

use er_core::{Dataset, Result};
use serde::{Deserialize, Serialize};

use crate::clean_clean::generate_clean_clean;
use crate::config::{CleanCleanConfig, DirtyConfig, NoiseConfig};
use crate::dirty::generate_dirty;

/// The nine Clean-Clean ER benchmarks of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetName {
    /// Products from Abt.com and Buy.com (noisy, recall-limited).
    AbtBuy,
    /// Bibliographic records from DBLP and ACM (clean, near-perfect recall).
    DblpAcm,
    /// Bibliographic records from Google Scholar and DBLP.
    ScholarDblp,
    /// Products from Amazon and Google Products (the noisiest dataset).
    AmazonGP,
    /// Movies from IMDB and TheMovieDB.
    ImdbTmdb,
    /// Movies/series from IMDB and TheTVDB.
    ImdbTvdb,
    /// Movies/series from TheMovieDB and TheTVDB.
    TmdbTvdb,
    /// Films from imdb.com and dbpedia.org (largest candidate set).
    Movies,
    /// Products from Walmart.com and Amazon.com (second largest candidate set).
    WalmartAmazon,
}

impl DatasetName {
    /// All nine datasets in the order of Table 1 (increasing |C|).
    pub fn all() -> [DatasetName; 9] {
        [
            DatasetName::AbtBuy,
            DatasetName::DblpAcm,
            DatasetName::ScholarDblp,
            DatasetName::AmazonGP,
            DatasetName::ImdbTmdb,
            DatasetName::ImdbTvdb,
            DatasetName::TmdbTvdb,
            DatasetName::Movies,
            DatasetName::WalmartAmazon,
        ]
    }

    /// The two run-time comparison datasets (the largest by |C|).
    pub fn largest_two() -> [DatasetName; 2] {
        [DatasetName::Movies, DatasetName::WalmartAmazon]
    }
}

impl std::fmt::Display for DatasetName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DatasetName::AbtBuy => "AbtBuy",
            DatasetName::DblpAcm => "DblpAcm",
            DatasetName::ScholarDblp => "ScholarDblp",
            DatasetName::AmazonGP => "AmazonGP",
            DatasetName::ImdbTmdb => "ImdbTmdb",
            DatasetName::ImdbTvdb => "ImdbTvdb",
            DatasetName::TmdbTvdb => "TmdbTvdb",
            DatasetName::Movies => "Movies",
            DatasetName::WalmartAmazon => "WalmartAmazon",
        };
        f.write_str(s)
    }
}

/// Options controlling the size of the generated analogues.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CatalogOptions {
    /// Multiplier on the (already laptop-scaled) entity counts of each recipe.
    pub scale: f64,
    /// Multiplier on the nominal entity counts of the Dirty scalability
    /// datasets (D10K…D300K); the default of 0.05 yields 500…15 000 entities.
    pub dirty_scale: f64,
    /// Base random seed; each dataset derives its own seed from this.
    pub seed: u64,
}

impl Default for CatalogOptions {
    fn default() -> Self {
        CatalogOptions {
            scale: 1.0,
            dirty_scale: 0.05,
            seed: 0x5eed_0001,
        }
    }
}

impl CatalogOptions {
    /// A reduced-size catalog for fast unit/integration tests.
    pub fn tiny() -> Self {
        CatalogOptions {
            scale: 0.2,
            dirty_scale: 0.01,
            seed: 0x5eed_0002,
        }
    }
}

fn scaled(value: usize, scale: f64) -> usize {
    ((value as f64 * scale).round() as usize).max(10)
}

/// Returns the configuration of one named Clean-Clean benchmark analogue.
pub fn clean_clean_config(name: DatasetName, options: &CatalogOptions) -> CleanCleanConfig {
    // (e1, e2, duplicates, vocab, zipf, min_tok, max_tok, distinctive,
    //  confusable, noise)
    let (e1, e2, dups, vocab, zipf, min_tok, max_tok, distinctive, confusable, noise) = match name {
        DatasetName::AbtBuy => (
            1100,
            1100,
            1050,
            6_000,
            0.95,
            5,
            11,
            0.45,
            0.60,
            NoiseConfig::heavy(),
        ),
        DatasetName::DblpAcm => (
            2600,
            2300,
            2200,
            14_000,
            0.90,
            7,
            14,
            0.55,
            0.35,
            NoiseConfig::light(),
        ),
        DatasetName::ScholarDblp => (
            2500,
            6100,
            2300,
            28_000,
            0.90,
            7,
            14,
            0.55,
            0.55,
            NoiseConfig::light(),
        ),
        DatasetName::AmazonGP => (
            1400,
            3300,
            1300,
            9_000,
            0.95,
            5,
            11,
            0.40,
            0.70,
            NoiseConfig::heavy(),
        ),
        DatasetName::ImdbTmdb => (
            2550,
            3000,
            950,
            12_000,
            0.95,
            5,
            12,
            0.50,
            0.45,
            NoiseConfig::moderate(),
        ),
        DatasetName::ImdbTvdb => (
            2550,
            3900,
            550,
            13_000,
            0.95,
            5,
            12,
            0.45,
            0.60,
            NoiseConfig::heavy(),
        ),
        DatasetName::TmdbTvdb => (
            3000,
            3900,
            550,
            13_000,
            0.95,
            5,
            12,
            0.45,
            0.60,
            NoiseConfig::heavy(),
        ),
        DatasetName::Movies => (
            5000,
            4200,
            4000,
            10_000,
            1.00,
            6,
            13,
            0.45,
            0.70,
            NoiseConfig::moderate(),
        ),
        DatasetName::WalmartAmazon => (
            2500,
            8000,
            1000,
            9_000,
            1.00,
            5,
            12,
            0.40,
            0.85,
            NoiseConfig::light(),
        ),
    };
    let dups = scaled(dups, options.scale)
        .min(scaled(e1, options.scale))
        .min(scaled(e2, options.scale));
    CleanCleanConfig {
        name: name.to_string(),
        e1_size: scaled(e1, options.scale),
        e2_size: scaled(e2, options.scale),
        num_duplicates: dups,
        vocab_size: scaled(vocab, options.scale.max(0.25)),
        zipf_exponent: zipf,
        min_tokens: min_tok,
        max_tokens: max_tok,
        distinctive_fraction: distinctive,
        confusable_fraction: confusable,
        noise,
        seed: er_core::rng::derive_seed(options.seed, name as u64),
    }
}

/// The configurations of all nine Clean-Clean benchmark analogues.
pub fn clean_clean_catalog(options: &CatalogOptions) -> Vec<CleanCleanConfig> {
    DatasetName::all()
        .into_iter()
        .map(|name| clean_clean_config(name, options))
        .collect()
}

/// Generates one named Clean-Clean benchmark analogue.
pub fn generate_catalog_dataset(name: DatasetName, options: &CatalogOptions) -> Result<Dataset> {
    generate_clean_clean(&clean_clean_config(name, options))
}

/// The configurations of the five Dirty ER scalability datasets
/// (D10K, D50K, D100K, D200K, D300K).
pub fn dirty_catalog(options: &CatalogOptions) -> Vec<DirtyConfig> {
    let nominal = [10_000usize, 50_000, 100_000, 200_000, 300_000];
    let names = ["D10K", "D50K", "D100K", "D200K", "D300K"];
    nominal
        .iter()
        .zip(names)
        .map(|(&n, name)| {
            let entities = scaled(n, options.dirty_scale).max(100);
            DirtyConfig {
                name: name.to_string(),
                num_entities: entities,
                duplicate_fraction: 0.30,
                max_cluster_size: 4,
                vocab_size: (entities * 6).max(1000),
                zipf_exponent: 0.95,
                min_tokens: 6,
                max_tokens: 12,
                distinctive_fraction: 0.5,
                confusable_fraction: 0.5,
                noise: NoiseConfig::light(),
                seed: er_core::rng::derive_seed(options.seed, 100 + n as u64),
            }
        })
        .collect()
}

/// Generates all five Dirty ER scalability datasets.
pub fn generate_dirty_catalog(options: &CatalogOptions) -> Result<Vec<Dataset>> {
    dirty_catalog(options).iter().map(generate_dirty).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_nine_entries_in_table1_order() {
        let configs = clean_clean_catalog(&CatalogOptions::default());
        assert_eq!(configs.len(), 9);
        assert_eq!(configs[0].name, "AbtBuy");
        assert_eq!(configs[8].name, "WalmartAmazon");
    }

    #[test]
    fn configs_are_valid() {
        for cfg in clean_clean_catalog(&CatalogOptions::default()) {
            assert!(cfg.validate().is_ok(), "{} invalid", cfg.name);
        }
        for cfg in dirty_catalog(&CatalogOptions::default()) {
            assert!(cfg.validate().is_ok(), "{} invalid", cfg.name);
        }
    }

    #[test]
    fn scaling_shrinks_entity_counts() {
        let full = clean_clean_config(DatasetName::Movies, &CatalogOptions::default());
        let tiny = clean_clean_config(DatasetName::Movies, &CatalogOptions::tiny());
        assert!(tiny.e1_size < full.e1_size);
        assert!(tiny.num_duplicates <= tiny.e1_size.min(tiny.e2_size));
    }

    #[test]
    fn tiny_catalog_generates_quickly_and_correctly() {
        let options = CatalogOptions::tiny();
        let ds = generate_catalog_dataset(DatasetName::AbtBuy, &options).unwrap();
        assert!(ds.num_entities() > 0);
        assert!(ds.num_duplicates() > 0);
    }

    #[test]
    fn dirty_catalog_sizes_increase() {
        let configs = dirty_catalog(&CatalogOptions::default());
        assert_eq!(configs.len(), 5);
        assert_eq!(configs[0].name, "D10K");
        assert_eq!(configs[4].name, "D300K");
        for w in configs.windows(2) {
            assert!(w[0].num_entities < w[1].num_entities);
        }
    }

    #[test]
    fn seeds_differ_across_datasets() {
        let options = CatalogOptions::default();
        let seeds: std::collections::HashSet<u64> = clean_clean_catalog(&options)
            .into_iter()
            .map(|c| c.seed)
            .collect();
        assert_eq!(seeds.len(), 9);
    }

    #[test]
    fn largest_two_are_movies_and_walmart() {
        assert_eq!(
            DatasetName::largest_two(),
            [DatasetName::Movies, DatasetName::WalmartAmazon]
        );
    }
}
