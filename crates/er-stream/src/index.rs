//! The mutable blocking index behind [`crate::StreamingMetaBlocker`].
//!
//! A [`StreamingIndex`] holds the complete blocking state of a growing
//! corpus in a delta-over-baseline layout:
//!
//! * an interned key dictionary (`key → u32`, every key string allocated
//!   once plus one lookup copy),
//! * per-key posting lists split into a **compacted baseline CSR** (the
//!   state at the last [`StreamingIndex::compact`] epoch) and a per-key
//!   **delta vector** of entities ingested since,
//! * per-key statistics (`|b|`, first-source counts, `||b||` and the
//!   reciprocal tables) updated in place on every insertion, together with
//!   the global live-block aggregates (`|B|`, `||B||`),
//! * the entity → key adjacency as an append-only CSR (an entity's key set
//!   is fixed at ingestion, so rows are only ever appended), and
//! * the per-entity distinct-candidate counts (the LCP feature), maintained
//!   incrementally from the emitted delta pairs and their retractions.
//!
//! # Liveness
//!
//! The batch engine ([`er_blocking::build_blocks`]) drops blocks that cannot
//! produce a comparison or exceed the scheme's size cap.  The streaming
//! index cannot discard those postings — a Clean-Clean block whose members
//! are all from E1 produces zero comparisons today but becomes useful the
//! moment an E2 entity joins it — so every key keeps its full posting list
//! and carries a *live* flag instead: live blocks are exactly the blocks the
//! batch engine would emit for the current corpus.  Because `||b||` never
//! decreases under insertions, a block leaves the live set only by crossing
//! the size cap, and that transition triggers the retraction scan that keeps
//! the candidate invariant exact (see [`StreamingIndex::insert_entity`]).
//!
//! # Determinism
//!
//! Per-entity key lists are stored in lexicographic key order — the order in
//! which the batch engine assigns block ids — so every floating-point
//! accumulation over a key list (partner scoreboards, per-entity aggregate
//! tables) adds terms in exactly the order the batch
//! [`er_features::FeatureContext`] would, making streaming feature values
//! bit-identical to a batch rebuild of the current corpus.

use std::sync::Arc;

use er_blocking::{comparisons_from_first, sorted_key_order, CsrBlockCollection, KeyStore};
use er_core::{DatasetKind, EntityId, FxHashMap};
use er_features::{EntityAggregates, PairCooccurrence};

/// Reusable per-worker scoreboard for delta-pair aggregation: one
/// [`PairCooccurrence`] slot per partner touched by the current new entity.
///
/// Backed by a hash map rather than a corpus-sized dense array so that the
/// per-batch cost of [`StreamingIndex::collect_delta_pairs`] scales with the
/// number of partners, not with the number of entities ever ingested.
#[derive(Debug, Default)]
pub struct PartnerBoard {
    acc: FxHashMap<u32, PairCooccurrence>,
}

impl PartnerBoard {
    /// Drains the board into a partner list sorted by entity id.
    fn drain_sorted(&mut self) -> Vec<(EntityId, PairCooccurrence)> {
        let mut partners: Vec<(EntityId, PairCooccurrence)> = self
            .acc
            .drain()
            .map(|(p, agg)| (EntityId(p), agg))
            .collect();
        partners.sort_unstable_by_key(|&(p, _)| p);
        partners
    }
}

/// The mutable blocking index: interned keys, delta-over-baseline postings,
/// in-place block statistics and incremental candidate counts.
#[derive(Debug)]
pub struct StreamingIndex {
    dataset_name: String,
    kind: DatasetKind,
    /// E1/E2 boundary of the id space (Clean-Clean only; ignored for Dirty).
    split: usize,
    /// The scheme's block-size cap (`usize::MAX` when the scheme has none).
    cap: usize,
    num_entities: usize,
    /// Interned key strings, indexed by stream key id.
    keys: Vec<Box<str>>,
    /// Key → stream id lookup (holds the one extra copy of each key).
    lookup: FxHashMap<Box<str>, u32>,
    /// Baseline CSR offsets (state at the last compaction); keys interned
    /// after the last compaction lie beyond `base_offsets.len() - 1` and
    /// have an empty baseline slice.
    base_offsets: Vec<u32>,
    /// Baseline CSR arena: concatenated postings at the last compaction.
    base_entities: Vec<EntityId>,
    /// Per key, the entities ingested since the last compaction.
    delta: Vec<Vec<EntityId>>,
    /// `|b|` per key.
    sizes: Vec<u32>,
    /// First-source member count per key (equals `|b|` for Dirty ER).
    first_counts: Vec<u32>,
    /// `||b||` per key.
    comparisons: Vec<u64>,
    /// `1/||b||` per key (0 when the block has no comparisons).
    inv_comparisons: Vec<f64>,
    /// `1/|b|` per key (0 when the block is empty).
    inv_sizes: Vec<f64>,
    /// Whether the batch engine would emit this block for the current corpus.
    live: Vec<bool>,
    /// `|B|` over live blocks.
    num_live: usize,
    /// `||B||` over live blocks.
    total_live_comparisons: u64,
    /// Entity → key adjacency offsets (`num_entities + 1` entries).
    entity_offsets: Vec<u32>,
    /// Adjacency arena: each entity's key ids in lexicographic key order.
    entity_keys: Vec<u32>,
    /// Distinct-candidate count per entity (the LCP feature), kept exact
    /// under emissions and cap retractions.
    entity_candidates: Vec<u32>,
    /// Number of completed compactions.
    epoch: u64,
}

impl StreamingIndex {
    /// Creates an empty index.
    ///
    /// `split` is the fixed E1/E2 boundary of the entity id space for
    /// Clean-Clean ER (entities with an id below it belong to E1); it is
    /// ignored for Dirty ER.  `cap` is the blocking scheme's maximum block
    /// size ([`er_blocking::KeyGenerator::max_block_size`]), `usize::MAX`
    /// when the scheme has none.
    pub fn new(
        dataset_name: impl Into<String>,
        kind: DatasetKind,
        split: usize,
        cap: usize,
    ) -> Self {
        StreamingIndex {
            dataset_name: dataset_name.into(),
            kind,
            split,
            cap,
            num_entities: 0,
            keys: Vec::new(),
            lookup: FxHashMap::default(),
            base_offsets: vec![0],
            base_entities: Vec::new(),
            delta: Vec::new(),
            sizes: Vec::new(),
            first_counts: Vec::new(),
            comparisons: Vec::new(),
            inv_comparisons: Vec::new(),
            inv_sizes: Vec::new(),
            live: Vec::new(),
            num_live: 0,
            total_live_comparisons: 0,
            entity_offsets: vec![0],
            entity_keys: Vec::new(),
            entity_candidates: Vec::new(),
            epoch: 0,
        }
    }

    /// Number of entities ingested so far.
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    /// Number of distinct keys ever interned (live or not).
    pub fn num_keys(&self) -> usize {
        self.keys.len()
    }

    /// `|B|`: the number of blocks the batch engine would emit right now.
    pub fn num_live_blocks(&self) -> usize {
        self.num_live
    }

    /// `||B||`: total comparisons over the live blocks.
    pub fn total_comparisons(&self) -> u64 {
        self.total_live_comparisons
    }

    /// Number of completed compactions.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The ER kind of the stream.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// The current number of distinct candidates of an entity (LCP).
    pub fn candidates_of(&self, entity: EntityId) -> u32 {
        self.entity_candidates[entity.index()]
    }

    /// Interns a key, returning its stream id (stable across compactions).
    pub fn intern(&mut self, key: &str) -> u32 {
        if let Some(&id) = self.lookup.get(key) {
            return id;
        }
        let id = self.keys.len() as u32;
        self.keys.push(key.into());
        self.lookup.insert(key.into(), id);
        self.delta.push(Vec::new());
        self.sizes.push(0);
        self.first_counts.push(0);
        self.comparisons.push(0);
        self.inv_comparisons.push(0.0);
        self.inv_sizes.push(0.0);
        self.live.push(false);
        id
    }

    /// The baseline posting slice of a key (empty for keys interned after
    /// the last compaction).
    #[inline]
    fn base_slice(&self, key: u32) -> &[EntityId] {
        let k = key as usize;
        if k + 1 < self.base_offsets.len() {
            &self.base_entities[self.base_offsets[k] as usize..self.base_offsets[k + 1] as usize]
        } else {
            &[]
        }
    }

    /// Iterates a key's full posting list (baseline, then delta) in
    /// ascending entity-id order.
    #[inline]
    fn members(&self, key: u32) -> impl Iterator<Item = EntityId> + '_ {
        self.base_slice(key)
            .iter()
            .copied()
            .chain(self.delta[key as usize].iter().copied())
    }

    /// An entity's key ids in lexicographic key order.
    #[inline]
    fn keys_of(&self, entity: usize) -> &[u32] {
        &self.entity_keys
            [self.entity_offsets[entity] as usize..self.entity_offsets[entity + 1] as usize]
    }

    /// True if two entities may be compared (delegates to the workspace's
    /// single comparability rule, [`DatasetKind::comparable`]).
    #[inline]
    fn pair_comparable(&self, a: EntityId, b: EntityId) -> bool {
        self.kind.comparable(self.split, a, b)
    }

    /// Inserts the next entity (id `num_entities`) given the raw key ids
    /// emitted for its profile (duplicates allowed).  Updates postings,
    /// per-key statistics and liveness in place; any pair of *pre-batch*
    /// entities that stops being a candidate because a block crossed the
    /// size cap is appended to `retracted` (and its LCP counts are
    /// decremented).  `batch_start` is the id of the first entity of the
    /// current batch: pairs involving in-batch entities are never retracted
    /// here because they are only emitted later, against end-of-batch state.
    ///
    /// Returns the id assigned to the entity.
    pub fn insert_entity(
        &mut self,
        raw_keys: &mut Vec<u32>,
        batch_start: usize,
        retracted: &mut Vec<(EntityId, EntityId)>,
    ) -> EntityId {
        raw_keys.sort_unstable();
        raw_keys.dedup();
        // Lexicographic order: downstream float accumulations must add terms
        // in the batch engine's block-id order (see module docs).
        raw_keys.sort_unstable_by(|&a, &b| self.keys[a as usize].cmp(&self.keys[b as usize]));

        let e = EntityId(self.num_entities as u32);
        self.num_entities += 1;
        self.entity_candidates.push(0);

        let mut cap_deaths: Vec<u32> = Vec::new();
        for &k in raw_keys.iter() {
            let ki = k as usize;
            self.delta[ki].push(e);
            let was_live = self.live[ki];
            let old_comparisons = self.comparisons[ki];
            self.sizes[ki] += 1;
            if self.kind == DatasetKind::Dirty || e.index() < self.split {
                self.first_counts[ki] += 1;
            }
            let size = self.sizes[ki];
            let comparisons =
                comparisons_from_first(self.kind, self.first_counts[ki], size as usize);
            self.comparisons[ki] = comparisons;
            self.inv_comparisons[ki] = if comparisons > 0 {
                1.0 / comparisons as f64
            } else {
                0.0
            };
            self.inv_sizes[ki] = 1.0 / f64::from(size);
            let now_live = comparisons > 0 && size as usize <= self.cap;
            if was_live {
                self.num_live -= 1;
                self.total_live_comparisons -= old_comparisons;
            }
            if now_live {
                self.num_live += 1;
                self.total_live_comparisons += comparisons;
            }
            self.live[ki] = now_live;
            // `||b||` never decreases under insertion, so live → dead means
            // the block crossed the size cap.
            if was_live && !now_live {
                cap_deaths.push(k);
            }
        }

        self.entity_keys.extend_from_slice(raw_keys);
        self.entity_offsets.push(self.entity_keys.len() as u32);

        if !cap_deaths.is_empty() {
            // One insertion can push several blocks over the cap at once; a
            // pair belonging to two of them (and nothing else live) shows up
            // in both scans, so collect first and deduplicate before
            // touching the counters.
            let mut dying: Vec<(EntityId, EntityId)> = Vec::new();
            for key in cap_deaths {
                self.scan_retractions(key, batch_start, &mut dying);
            }
            dying.sort_unstable();
            dying.dedup();
            for &(a, b) in &dying {
                self.entity_candidates[a.index()] -= 1;
                self.entity_candidates[b.index()] -= 1;
            }
            retracted.extend(dying);
        }
        e
    }

    /// A block just crossed the size cap: every candidate pair it supported
    /// alone ceases to exist in the batch view of the corpus.  Scans the
    /// pre-batch members pairwise and collects the pairs that share no other
    /// live key (the caller deduplicates across same-insert deaths before
    /// decrementing the LCP counters).  The scan is bounded by the cap (at
    /// most `cap + 1` members ever participate) and runs at most once per
    /// key, so its amortised cost stays batch-proportional.
    fn scan_retractions(
        &self,
        key: u32,
        batch_start: usize,
        dying: &mut Vec<(EntityId, EntityId)>,
    ) {
        let members: Vec<EntityId> = self
            .members(key)
            .take_while(|m| m.index() < batch_start)
            .collect();
        for i in 0..members.len() {
            for j in i + 1..members.len() {
                let (a, b) = (members[i], members[j]);
                if !self.pair_comparable(a, b) {
                    continue;
                }
                if self.shares_other_live_key(a, b, key) {
                    continue;
                }
                dying.push((a, b));
            }
        }
    }

    /// True if the two entities share a live key other than `excluded`
    /// (merge over the two lexicographically sorted key lists).
    fn shares_other_live_key(&self, a: EntityId, b: EntityId, excluded: u32) -> bool {
        let la = self.keys_of(a.index());
        let lb = self.keys_of(b.index());
        let (mut i, mut j) = (0, 0);
        while i < la.len() && j < lb.len() {
            let (x, y) = (la[i], lb[j]);
            if x == y {
                if x != excluded && self.live[x as usize] {
                    return true;
                }
                i += 1;
                j += 1;
            } else if self.keys[x as usize] < self.keys[y as usize] {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// Gathers the delta pairs of one newly ingested entity: every strictly
    /// smaller comparable entity sharing at least one live block, together
    /// with the pair's co-occurrence aggregates — the scoreboard pass of the
    /// batch feature engine, scoped to a single entity.
    ///
    /// Requires every entity of the batch to be inserted first (partners are
    /// judged against end-of-batch block state); restricting partners to
    /// smaller ids makes each in-batch pair come out of exactly one call.
    /// Contributions accumulate in lexicographic key order, so the sums are
    /// bit-identical to a batch [`er_features::FeatureContext`] merge.
    pub fn collect_delta_pairs(
        &self,
        e: EntityId,
        board: &mut PartnerBoard,
    ) -> Vec<(EntityId, PairCooccurrence)> {
        let ei = e.index();
        for &k in self.keys_of(ei) {
            let ki = k as usize;
            if !self.live[ki] {
                continue;
            }
            let inv_comparisons = self.inv_comparisons[ki];
            let inv_sizes = self.inv_sizes[ki];
            for p in self.members(k) {
                let pi = p.index();
                if pi >= ei {
                    // Postings are ascending: no smaller partner follows.
                    break;
                }
                if !self.pair_comparable(p, e) {
                    continue;
                }
                let slot = board.acc.entry(p.0).or_default();
                slot.common_blocks += 1;
                slot.inv_comparisons_sum += inv_comparisons;
                slot.inv_sizes_sum += inv_sizes;
            }
        }
        board.drain_sorted()
    }

    /// Records one freshly emitted candidate pair (both LCP counters).
    pub fn record_candidate(&mut self, a: EntityId, b: EntityId) {
        self.entity_candidates[a.index()] += 1;
        self.entity_candidates[b.index()] += 1;
    }

    /// The per-entity aggregates of one entity over the *live* blocks — the
    /// quantities [`er_features::FeatureContext`] precomputes corpus-wide,
    /// recomputed here in `O(|B_i|)` for exactly the entities a batch
    /// touches.  Terms are added in lexicographic key order, so the values
    /// are bit-identical to the batch tables for the same corpus.
    pub fn entity_aggregates(&self, entity: EntityId) -> EntityAggregates {
        let mut live_blocks = 0usize;
        let mut inv_comparisons = 0.0f64;
        let mut inv_sizes = 0.0f64;
        let mut entity_comparisons = 0u64;
        for &k in self.keys_of(entity.index()) {
            let ki = k as usize;
            if !self.live[ki] {
                continue;
            }
            live_blocks += 1;
            inv_comparisons += self.inv_comparisons[ki];
            inv_sizes += self.inv_sizes[ki];
            entity_comparisons += self.comparisons[ki];
        }
        let blocks_of = live_blocks as f64;
        let num_blocks = self.num_live as f64;
        let ibf = if blocks_of > 0.0 && num_blocks > 0.0 {
            (num_blocks / blocks_of).ln()
        } else {
            0.0
        };
        let own = entity_comparisons as f64;
        let total = self.total_live_comparisons as f64;
        let icf = if own > 0.0 && total > 0.0 {
            (total / own).ln()
        } else {
            0.0
        };
        EntityAggregates {
            num_blocks: blocks_of,
            inv_comparisons,
            inv_sizes,
            ibf,
            icf,
            lcp: f64::from(self.entity_candidates[entity.index()]),
        }
    }

    /// The batch view of the current corpus: exactly the
    /// [`CsrBlockCollection`] that [`er_blocking::build_blocks`] would
    /// produce for the entities ingested so far (lexicographic block order,
    /// cap and zero-comparison blocks dropped, sorted entity lists).
    ///
    /// `threads` parallelises the key sort; the output is identical for any
    /// thread count.
    pub fn view(&self, threads: usize) -> CsrBlockCollection {
        let order = sorted_key_order(&self.keys, threads);
        let mut store = KeyStore::with_capacity(self.keys.len() / 2, 0);
        let mut key_ids = Vec::new();
        let mut entity_offsets = vec![0u32];
        let mut entities: Vec<EntityId> = Vec::new();
        let mut first_counts = Vec::new();
        for &k in &order {
            let ki = k as usize;
            if self.sizes[ki] as usize > self.cap || self.comparisons[ki] == 0 {
                continue;
            }
            key_ids.push(store.push(&self.keys[ki]));
            entities.extend_from_slice(self.base_slice(k));
            entities.extend_from_slice(&self.delta[ki]);
            entity_offsets.push(entities.len() as u32);
            first_counts.push(self.first_counts[ki]);
        }
        let split = match self.kind {
            DatasetKind::CleanClean => self.split.min(self.num_entities),
            DatasetKind::Dirty => self.num_entities,
        };
        CsrBlockCollection::from_raw(
            self.dataset_name.clone(),
            self.kind,
            split,
            self.num_entities,
            Arc::new(store),
            key_ids,
            entity_offsets,
            entities,
            first_counts,
        )
    }

    /// Ends the epoch: folds every delta posting into a fresh baseline CSR
    /// (stream key ids stay stable) and returns the batch view of the
    /// compacted state via [`StreamingIndex::view`].
    pub fn compact(&mut self, threads: usize) -> CsrBlockCollection {
        let key_count = self.keys.len();
        let grown: usize = self.delta.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(key_count + 1);
        offsets.push(0u32);
        let mut entities = Vec::with_capacity(self.base_entities.len() + grown);
        for k in 0..key_count {
            entities.extend_from_slice(self.base_slice(k as u32));
            entities.extend_from_slice(&self.delta[k]);
            self.delta[k].clear();
            offsets.push(entities.len() as u32);
        }
        self.base_offsets = offsets;
        self.base_entities = entities;
        self.epoch += 1;
        self.view(threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(kind: DatasetKind, split: usize, cap: usize) -> StreamingIndex {
        StreamingIndex::new("t", kind, split, cap)
    }

    /// Interns the keys and inserts the entity, returning any retractions.
    fn insert(
        idx: &mut StreamingIndex,
        keys: &[&str],
        batch_start: usize,
    ) -> (EntityId, Vec<(EntityId, EntityId)>) {
        let mut ids: Vec<u32> = keys.iter().map(|k| idx.intern(k)).collect();
        let mut retracted = Vec::new();
        let e = idx.insert_entity(&mut ids, batch_start, &mut retracted);
        (e, retracted)
    }

    #[test]
    fn interning_is_idempotent_and_stable() {
        let mut idx = index(DatasetKind::Dirty, 0, usize::MAX);
        let a = idx.intern("apple");
        let b = idx.intern("pear");
        assert_eq!(idx.intern("apple"), a);
        assert_ne!(a, b);
        assert_eq!(idx.num_keys(), 2);
    }

    #[test]
    fn dirty_stats_update_in_place() {
        let mut idx = index(DatasetKind::Dirty, 0, usize::MAX);
        insert(&mut idx, &["a", "b"], 0);
        insert(&mut idx, &["a"], 1);
        insert(&mut idx, &["a", "b"], 2);
        // Block "a" has 3 members → 3 comparisons; "b" has 2 → 1.
        assert_eq!(idx.num_live_blocks(), 2);
        assert_eq!(idx.total_comparisons(), 4);
    }

    #[test]
    fn clean_clean_blocks_go_live_only_cross_source() {
        let mut idx = index(DatasetKind::CleanClean, 2, usize::MAX);
        insert(&mut idx, &["k"], 0);
        insert(&mut idx, &["k"], 1);
        // Both members are E1 → no comparisons, block not live.
        assert_eq!(idx.num_live_blocks(), 0);
        insert(&mut idx, &["k"], 2);
        // E2 member arrives → ||k|| = 2 · 1 = 2.
        assert_eq!(idx.num_live_blocks(), 1);
        assert_eq!(idx.total_comparisons(), 2);
    }

    #[test]
    fn cap_crossing_retracts_orphaned_pairs() {
        // Cap 2: pairs supported only by a block of size 3 must retract.
        let mut idx = index(DatasetKind::Dirty, 0, 2);
        let (e0, _) = insert(&mut idx, &["x", "shared"], 0);
        let (e1, _) = insert(&mut idx, &["x", "shared"], 1);
        idx.record_candidate(e0, e1); // as the blocker would after emission
        let (e2, _) = insert(&mut idx, &["y"], 2);
        assert!(idx.num_live_blocks() > 0);
        // Entity 3 pushes "x" to size 3 (> cap).  e0–e1 still share the
        // live "shared" block, so nothing retracts.
        let (_, retracted) = insert(&mut idx, &["x"], 3);
        assert!(retracted.is_empty());
        assert_eq!(idx.candidates_of(e0), 1);
        let _ = e2;

        // Same again, but without a second shared key: retraction fires.
        let mut idx = index(DatasetKind::Dirty, 0, 2);
        let (a0, _) = insert(&mut idx, &["x"], 0);
        let (a1, _) = insert(&mut idx, &["x"], 1);
        idx.record_candidate(a0, a1);
        let (_, retracted) = insert(&mut idx, &["x"], 2);
        assert_eq!(retracted, vec![(a0, a1)]);
        assert_eq!(idx.candidates_of(a0), 0);
        assert_eq!(idx.candidates_of(a1), 0);
    }

    #[test]
    fn delta_pairs_cover_only_smaller_comparable_partners() {
        let mut idx = index(DatasetKind::CleanClean, 2, usize::MAX);
        insert(&mut idx, &["k", "m"], 0);
        insert(&mut idx, &["k"], 1);
        let (e2, _) = insert(&mut idx, &["k", "m"], 2);
        let mut board = PartnerBoard::default();
        let partners = idx.collect_delta_pairs(e2, &mut board);
        // Both E1 entities share the live "k" block with e2; entity 0 also
        // shares "m" (live once e2 joined it).
        assert_eq!(partners.len(), 2);
        assert_eq!(partners[0].0, EntityId(0));
        assert_eq!(partners[0].1.common_blocks, 2);
        assert_eq!(partners[1].0, EntityId(1));
        assert_eq!(partners[1].1.common_blocks, 1);
    }

    #[test]
    fn compact_folds_deltas_and_preserves_the_view() {
        let mut idx = index(DatasetKind::Dirty, 0, usize::MAX);
        insert(&mut idx, &["b", "a"], 0);
        insert(&mut idx, &["a"], 1);
        let before = idx.view(1);
        let compacted = idx.compact(1);
        assert_eq!(idx.epoch(), 1);
        assert_eq!(
            before.to_block_collection().blocks,
            compacted.to_block_collection().blocks
        );
        // Ingest more after compaction; the view still merges base + delta.
        insert(&mut idx, &["a", "b"], 2);
        let after = idx.view(1);
        assert_eq!(after.num_blocks(), 2);
        assert_eq!(after.key(0), "a");
        assert_eq!(after.entities(0), &[EntityId(0), EntityId(1), EntityId(2)]);
    }
}
