//! The mutable blocking index behind [`crate::StreamingMetaBlocker`].
//!
//! A [`StreamingIndex`] holds the complete blocking state of a churning
//! corpus — inserts, deletes *and* updates — in a delta-over-baseline
//! layout:
//!
//! * an interned key dictionary (`key → u32`, every key string allocated
//!   once plus one lookup copy),
//! * per-key posting lists split into a **compacted baseline CSR** (the
//!   state at the last [`StreamingIndex::compact`] epoch), a per-key
//!   sorted **delta vector** of entities that joined the block since, and a
//!   per-key sorted **tombstone vector** of baseline entities that left it
//!   (deletions and re-keying updates cannot edit the shared baseline
//!   arena, so departures are recorded as tombstones and physically
//!   dropped at the next compaction),
//! * per-key statistics (`|b|`, first-source counts, `||b||` and the
//!   reciprocal tables) updated **exactly** — incrementally on insertion,
//!   decrementally on removal — together with the global live-block
//!   aggregates (`|B|`, `||B||`),
//! * the entity → key adjacency as a baseline CSR plus an overlay map for
//!   mutated entities (an update replaces the row, a deletion empties it;
//!   the overlay folds back into the CSR at compaction), and
//! * the per-entity distinct-candidate counts (the LCP feature), maintained
//!   incrementally from emitted candidate additions and retractions.
//!
//! # Liveness
//!
//! The batch engine ([`er_blocking::build_blocks`]) drops blocks that cannot
//! produce a comparison or exceed the scheme's size cap.  The streaming
//! index cannot discard those postings — a Clean-Clean block whose members
//! are all from E1 produces zero comparisons today but becomes useful the
//! moment an E2 entity joins it — so every key keeps its full posting list
//! and carries a *live* flag instead: live blocks are exactly the blocks the
//! batch engine would emit for the current corpus.  Under pure insertions a
//! block leaves the live set only by crossing the size cap; with deletions
//! and updates every transition is possible, including a capped block
//! shrinking back under the cap and **re-entering** the live set.  Each
//! mutation batch therefore records the pre-batch liveness of every touched
//! key, and [`StreamingIndex::finish_batch`] turns the net flips into exact
//! candidate *retractions* (blocks that left the live set) and *revivals*
//! (blocks that re-entered it) — the generalisation of the old
//! insert-only size-cap retraction scan.
//!
//! # Determinism
//!
//! Per-entity key lists are stored in lexicographic key order — the order in
//! which the batch engine assigns block ids — so every floating-point
//! accumulation over a key list (partner scoreboards, per-entity aggregate
//! tables, pair co-occurrence merges) adds terms in exactly the order the
//! batch [`er_features::FeatureContext`] would, making streaming feature
//! values bit-identical to a batch rebuild of the surviving corpus.
//!
//! # Identity of the surviving corpus
//!
//! Entity ids are never reused: a deleted entity keeps its id, simply owns
//! no keys and appears in no posting list.  The batch-equivalent view of a
//! mutated stream is therefore the original id space with every deleted
//! entity replaced by an *empty* profile (no attributes → no blocking keys)
//! — exactly what the equivalence property tests build.

use std::sync::Arc;

use er_blocking::{comparisons_from_first, sorted_key_order, CsrBlockCollection, KeyStore};
use er_core::{DatasetKind, EntityId, FxHashMap};
use er_features::{EntityAggregates, PairCooccurrence, RadixScoreboard, ScoreboardConfig};

/// Reusable per-worker scoreboard for delta-pair aggregation, backed by the
/// same cache-blocked [`RadixScoreboard`] the batch feature pass runs on
/// (it replaced the former `FxHashMap` board).
///
/// Scratch scales with one tile plus the current entity's contributions,
/// never with the number of entities ever ingested; the board's per-tile
/// counters grow on demand as the id space extends.  Per-partner sums fold in contribution order —
/// the same order the hash board accumulated in — so the drained aggregates
/// are bit-identical.
#[derive(Debug)]
pub struct PartnerBoard {
    board: RadixScoreboard,
    drained: Vec<(u32, PairCooccurrence)>,
}

impl Default for PartnerBoard {
    fn default() -> Self {
        Self::with_config(&ScoreboardConfig::default())
    }
}

impl PartnerBoard {
    /// A board running on an explicit scoreboard configuration
    /// ([`crate::StreamingConfig::scoreboard`]).
    pub fn with_config(config: &ScoreboardConfig) -> Self {
        PartnerBoard {
            board: RadixScoreboard::new(0, config),
            drained: Vec::new(),
        }
    }

    /// Accumulates one block contribution for `partner`.
    #[inline]
    pub(crate) fn add(&mut self, partner: u32, inv_comparisons: f64, inv_sizes: f64) {
        self.board.add(partner, inv_comparisons, inv_sizes);
    }

    /// Drains the board into a partner list sorted by entity id.
    pub(crate) fn drain_sorted(&mut self) -> Vec<(EntityId, PairCooccurrence)> {
        self.board.drain_sorted_into(&mut self.drained);
        self.board.flush_metrics();
        self.drained
            .iter()
            .map(|&(p, agg)| (EntityId(p), agg))
            .collect()
    }
}

/// Merged iterator over one key's posting list: baseline minus tombstones,
/// interleaved with the delta vector, in ascending entity-id order.
///
/// Invariants relied on: `removed ⊆ base` (both sorted), `delta` sorted and
/// disjoint from the visible baseline.
#[derive(Debug, Clone)]
pub struct Members<'a> {
    base: &'a [EntityId],
    removed: &'a [EntityId],
    delta: &'a [EntityId],
    bi: usize,
    ri: usize,
    di: usize,
}

impl Iterator for Members<'_> {
    type Item = EntityId;

    fn next(&mut self) -> Option<EntityId> {
        loop {
            if self.bi < self.base.len() {
                let b = self.base[self.bi];
                while self.ri < self.removed.len() && self.removed[self.ri] < b {
                    self.ri += 1;
                }
                if self.ri < self.removed.len() && self.removed[self.ri] == b {
                    self.bi += 1;
                    self.ri += 1;
                    continue;
                }
                if self.di < self.delta.len() && self.delta[self.di] < b {
                    self.di += 1;
                    return Some(self.delta[self.di - 1]);
                }
                self.bi += 1;
                return Some(b);
            }
            if self.di < self.delta.len() {
                self.di += 1;
                return Some(self.delta[self.di - 1]);
            }
            return None;
        }
    }
}

/// The exact candidate-set consequences of one mutation batch, as computed
/// by [`StreamingIndex::finish_batch`] from the recorded liveness flips.
///
/// Both pair lists cover only pairs **between pre-existing, unmutated
/// entities** — pairs with a mutated endpoint are diffed directly by the
/// blocker from its before/after partner sets.
#[derive(Debug, Default)]
pub struct BatchEffects {
    /// Every key whose postings or statistics changed during the batch,
    /// sorted by stream key id.
    pub touched_keys: Vec<u32>,
    /// Pairs that ceased to be candidates because every block supporting
    /// them left the live set (size-cap crossings, blocks losing their last
    /// cross-source member, ...).
    pub retracted: Vec<(EntityId, EntityId)>,
    /// Pairs that *became* candidates because a previously dead block
    /// re-entered the live set (a capped block shrinking back under the cap
    /// via deletions).  Impossible under pure insertion, routine under
    /// churn.
    pub revived: Vec<(EntityId, EntityId)>,
}

/// The mutable blocking index: interned keys, tombstone-aware
/// delta-over-baseline postings, exact decremental block statistics and
/// incremental candidate counts.
#[derive(Debug)]
pub struct StreamingIndex {
    dataset_name: String,
    kind: DatasetKind,
    /// E1/E2 boundary of the id space (Clean-Clean only; ignored for Dirty).
    split: usize,
    /// The scheme's block-size cap (`usize::MAX` when the scheme has none).
    cap: usize,
    num_entities: usize,
    /// Entities currently alive (ingested and not removed).
    num_alive: usize,
    /// Interned key strings, indexed by stream key id.
    keys: Vec<Box<str>>,
    /// Key → stream id lookup (holds the one extra copy of each key).
    lookup: FxHashMap<Box<str>, u32>,
    /// Baseline CSR offsets (state at the last compaction); keys interned
    /// after the last compaction lie beyond `base_offsets.len() - 1` and
    /// have an empty baseline slice.
    base_offsets: Vec<u32>,
    /// Baseline CSR arena: concatenated postings at the last compaction.
    base_entities: Vec<EntityId>,
    /// Per key, the entities that joined since the last compaction (sorted,
    /// disjoint from the visible baseline).
    delta: Vec<Vec<EntityId>>,
    /// Per key, the baseline entities that left since the last compaction
    /// (sorted subset of the baseline slice).  Physically dropped by
    /// [`StreamingIndex::compact`].
    removed: Vec<Vec<EntityId>>,
    /// `|b|` per key.
    sizes: Vec<u32>,
    /// First-source member count per key (equals `|b|` for Dirty ER).
    first_counts: Vec<u32>,
    /// `||b||` per key.
    comparisons: Vec<u64>,
    /// `1/||b||` per key (0 when the block has no comparisons).
    inv_comparisons: Vec<f64>,
    /// `1/|b|` per key (0 when the block is empty).
    inv_sizes: Vec<f64>,
    /// Whether the batch engine would emit this block for the current corpus.
    live: Vec<bool>,
    /// `|B|` over live blocks.
    num_live: usize,
    /// `||B||` over live blocks.
    total_live_comparisons: u64,
    /// Entity → key adjacency offsets (`num_entities + 1` entries; baseline
    /// rows, appended at ingestion).
    entity_offsets: Vec<u32>,
    /// Adjacency arena: each entity's key ids in lexicographic key order.
    entity_keys: Vec<u32>,
    /// Replacement rows for mutated entities (updates re-key, deletions
    /// empty); folded into the CSR at compaction.
    overlay: FxHashMap<u32, Box<[u32]>>,
    /// Per entity, whether it is still part of the corpus.
    alive: Vec<bool>,
    /// Distinct-candidate count per entity (the LCP feature), kept exact
    /// under additions, retractions and revivals.
    entity_candidates: Vec<u32>,
    /// Keys touched by the current mutation batch, mapped to their liveness
    /// when first touched; drained by [`StreamingIndex::finish_batch`].
    touched: FxHashMap<u32, bool>,
    /// Number of completed compactions.
    epoch: u64,
}

impl StreamingIndex {
    /// Creates an empty index.
    ///
    /// `split` is the fixed E1/E2 boundary of the entity id space for
    /// Clean-Clean ER (entities with an id below it belong to E1); it is
    /// ignored for Dirty ER.  `cap` is the blocking scheme's maximum block
    /// size ([`er_blocking::KeyGenerator::max_block_size`]), `usize::MAX`
    /// when the scheme has none.
    pub fn new(
        dataset_name: impl Into<String>,
        kind: DatasetKind,
        split: usize,
        cap: usize,
    ) -> Self {
        StreamingIndex {
            dataset_name: dataset_name.into(),
            kind,
            split,
            cap,
            num_entities: 0,
            num_alive: 0,
            keys: Vec::new(),
            lookup: FxHashMap::default(),
            base_offsets: vec![0],
            base_entities: Vec::new(),
            delta: Vec::new(),
            removed: Vec::new(),
            sizes: Vec::new(),
            first_counts: Vec::new(),
            comparisons: Vec::new(),
            inv_comparisons: Vec::new(),
            inv_sizes: Vec::new(),
            live: Vec::new(),
            num_live: 0,
            total_live_comparisons: 0,
            entity_offsets: vec![0],
            entity_keys: Vec::new(),
            overlay: FxHashMap::default(),
            alive: Vec::new(),
            entity_candidates: Vec::new(),
            touched: FxHashMap::default(),
            epoch: 0,
        }
    }

    /// Number of entity ids ever assigned (deleted ids are never reused).
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    /// The dataset name recorded on every emitted block collection.
    pub fn dataset_name(&self) -> &str {
        &self.dataset_name
    }

    /// The fixed E1/E2 boundary of the id space (Clean-Clean only).
    pub fn split(&self) -> usize {
        self.split
    }

    /// The scheme's block-size cap (`usize::MAX` when the scheme has none).
    pub fn size_cap(&self) -> usize {
        self.cap
    }

    /// True if a mutation batch is open (postings touched since the last
    /// [`StreamingIndex::finish_batch`]).  Snapshots are only taken at batch
    /// boundaries, where this is false.
    pub fn has_open_batch(&self) -> bool {
        !self.touched.is_empty()
    }

    /// Number of entities currently alive (ingested and not removed).
    pub fn num_alive(&self) -> usize {
        self.num_alive
    }

    /// True if the entity has been ingested and not removed since.
    pub fn is_alive(&self, entity: EntityId) -> bool {
        self.alive[entity.index()]
    }

    /// Number of distinct keys ever interned (live or not).
    pub fn num_keys(&self) -> usize {
        self.keys.len()
    }

    /// `|B|`: the number of blocks the batch engine would emit right now.
    pub fn num_live_blocks(&self) -> usize {
        self.num_live
    }

    /// `||B||`: total comparisons over the live blocks.
    pub fn total_comparisons(&self) -> u64 {
        self.total_live_comparisons
    }

    /// Number of completed compactions.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The ER kind of the stream.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// The current number of distinct candidates of an entity (LCP).
    pub fn candidates_of(&self, entity: EntityId) -> u32 {
        self.entity_candidates[entity.index()]
    }

    /// The interned key string of a stream key id.
    pub fn key_str(&self, key: u32) -> &str {
        &self.keys[key as usize]
    }

    /// `|b|` of a key's block (tombstoned members excluded).
    pub fn block_size(&self, key: u32) -> usize {
        self.sizes[key as usize] as usize
    }

    /// Whether the batch engine would emit this key's block right now.
    pub fn is_block_live(&self, key: u32) -> bool {
        self.live[key as usize]
    }

    /// `1/||b||` of a key's block (0 when the block has no comparisons).
    #[inline]
    pub(crate) fn key_inv_comparisons(&self, key: u32) -> f64 {
        self.inv_comparisons[key as usize]
    }

    /// `1/|b|` of a key's block (0 when the block is empty).
    #[inline]
    pub(crate) fn key_inv_sizes(&self, key: u32) -> f64 {
        self.inv_sizes[key as usize]
    }

    /// `||b||` of a key's block.
    #[inline]
    pub(crate) fn key_comparisons(&self, key: u32) -> u64 {
        self.comparisons[key as usize]
    }

    /// First-source member count of a key's block.
    #[inline]
    pub(crate) fn key_first_count(&self, key: u32) -> u32 {
        self.first_counts[key as usize]
    }

    /// Interns a key, returning its stream id (stable across compactions).
    pub fn intern(&mut self, key: &str) -> u32 {
        if let Some(&id) = self.lookup.get(key) {
            return id;
        }
        let id = self.keys.len() as u32;
        self.keys.push(key.into());
        self.lookup.insert(key.into(), id);
        self.delta.push(Vec::new());
        self.removed.push(Vec::new());
        self.sizes.push(0);
        self.first_counts.push(0);
        self.comparisons.push(0);
        self.inv_comparisons.push(0.0);
        self.inv_sizes.push(0.0);
        self.live.push(false);
        id
    }

    /// The baseline posting slice of a key (empty for keys interned after
    /// the last compaction).
    #[inline]
    fn base_slice(&self, key: u32) -> &[EntityId] {
        let k = key as usize;
        if k + 1 < self.base_offsets.len() {
            &self.base_entities[self.base_offsets[k] as usize..self.base_offsets[k + 1] as usize]
        } else {
            &[]
        }
    }

    /// Iterates a key's visible posting list (baseline minus tombstones,
    /// merged with the delta) in ascending entity-id order.
    #[inline]
    pub fn members(&self, key: u32) -> Members<'_> {
        Members {
            base: self.base_slice(key),
            removed: &self.removed[key as usize],
            delta: &self.delta[key as usize],
            bi: 0,
            ri: 0,
            di: 0,
        }
    }

    /// An entity's current key ids in lexicographic key order (empty for
    /// removed entities).
    #[inline]
    pub fn keys_of(&self, entity: EntityId) -> &[u32] {
        if let Some(row) = self.overlay.get(&entity.0) {
            return row;
        }
        let e = entity.index();
        &self.entity_keys[self.entity_offsets[e] as usize..self.entity_offsets[e + 1] as usize]
    }

    /// True if two entities may be compared (delegates to the workspace's
    /// single comparability rule, [`DatasetKind::comparable`]).
    #[inline]
    pub fn is_comparable(&self, a: EntityId, b: EntityId) -> bool {
        self.kind.comparable(self.split, a, b)
    }

    /// Records the pre-batch liveness of a key the first time the current
    /// batch touches it.
    #[inline]
    fn note_touch(&mut self, key: u32) {
        let live = self.live[key as usize];
        self.touched.entry(key).or_insert(live);
    }

    /// Recomputes one key's statistics after a single posting change,
    /// keeping every counter (and the global live aggregates) exact.
    fn update_stats(&mut self, key: u32, entity: EntityId, inserted: bool) {
        let ki = key as usize;
        let was_live = self.live[ki];
        let old_comparisons = self.comparisons[ki];
        if inserted {
            self.sizes[ki] += 1;
        } else {
            self.sizes[ki] -= 1;
        }
        if self.kind == DatasetKind::Dirty || entity.index() < self.split {
            if inserted {
                self.first_counts[ki] += 1;
            } else {
                self.first_counts[ki] -= 1;
            }
        }
        let size = self.sizes[ki];
        let comparisons = comparisons_from_first(self.kind, self.first_counts[ki], size as usize);
        self.comparisons[ki] = comparisons;
        self.inv_comparisons[ki] = if comparisons > 0 {
            1.0 / comparisons as f64
        } else {
            0.0
        };
        self.inv_sizes[ki] = if size > 0 { 1.0 / f64::from(size) } else { 0.0 };
        let now_live = comparisons > 0 && size as usize <= self.cap;
        if was_live {
            self.num_live -= 1;
            self.total_live_comparisons -= old_comparisons;
        }
        if now_live {
            self.num_live += 1;
            self.total_live_comparisons += comparisons;
        }
        self.live[ki] = now_live;
    }

    /// Adds an entity to a key's posting list (un-tombstoning a baseline
    /// member if the entity left and rejoined within one epoch).
    fn add_posting(&mut self, key: u32, entity: EntityId) {
        self.note_touch(key);
        let ki = key as usize;
        if let Ok(at) = self.removed[ki].binary_search(&entity) {
            self.removed[ki].remove(at);
        } else {
            let delta = &mut self.delta[ki];
            match delta.binary_search(&entity) {
                // Ingestion appends in ascending id order, so the common
                // case is a push at the end.
                Err(at) => delta.insert(at, entity),
                Ok(_) => unreachable!("duplicate posting for entity {entity}"),
            }
        }
        self.update_stats(key, entity, true);
    }

    /// Removes an entity from a key's posting list (tombstoning it when it
    /// lives in the shared baseline arena).
    fn drop_posting(&mut self, key: u32, entity: EntityId) {
        self.note_touch(key);
        let ki = key as usize;
        if let Ok(at) = self.delta[ki].binary_search(&entity) {
            self.delta[ki].remove(at);
        } else {
            debug_assert!(self.base_slice(key).binary_search(&entity).is_ok());
            let removed = &mut self.removed[ki];
            let at = removed
                .binary_search(&entity)
                .expect_err("posting tombstoned twice");
            removed.insert(at, entity);
        }
        self.update_stats(key, entity, false);
    }

    /// Sorts raw key ids into the canonical per-entity order: deduplicated,
    /// lexicographic by key string (the batch engine's block-id order, which
    /// downstream float accumulations must follow — see module docs).
    fn canonicalize_keys(&self, raw_keys: &mut Vec<u32>) {
        raw_keys.sort_unstable();
        raw_keys.dedup();
        raw_keys.sort_unstable_by(|&a, &b| self.keys[a as usize].cmp(&self.keys[b as usize]));
    }

    /// Inserts the next entity (id `num_entities`) given the raw key ids
    /// emitted for its profile (duplicates allowed).  Updates postings and
    /// per-key statistics in place and records liveness flips for
    /// [`StreamingIndex::finish_batch`].  Returns the id assigned.
    pub fn insert_entity(&mut self, raw_keys: &mut Vec<u32>) -> EntityId {
        self.canonicalize_keys(raw_keys);
        let e = EntityId(self.num_entities as u32);
        self.num_entities += 1;
        self.num_alive += 1;
        self.alive.push(true);
        self.entity_candidates.push(0);
        for &k in raw_keys.iter() {
            self.add_posting(k, e);
        }
        self.entity_keys.extend_from_slice(raw_keys);
        self.entity_offsets.push(self.entity_keys.len() as u32);
        e
    }

    /// Removes an entity from the corpus: every posting it holds is
    /// tombstoned, its key row is emptied, and its id is retired (never
    /// reused).  Liveness flips are recorded for
    /// [`StreamingIndex::finish_batch`]; candidate retractions for the
    /// entity's own pairs are the caller's responsibility (the blocker diffs
    /// its partner sets).
    ///
    /// # Panics
    /// Panics if the entity is out of range or already removed.
    pub fn remove_entity(&mut self, entity: EntityId) {
        assert!(
            entity.index() < self.num_entities,
            "cannot remove unknown entity {entity}"
        );
        assert!(
            self.alive[entity.index()],
            "cannot remove entity {entity} twice"
        );
        let keys: Vec<u32> = self.keys_of(entity).to_vec();
        for &k in &keys {
            self.drop_posting(k, entity);
        }
        self.overlay.insert(entity.0, Box::default());
        self.alive[entity.index()] = false;
        self.num_alive -= 1;
    }

    /// Replaces an entity's key set (an in-place profile update): postings
    /// are diffed against the current row, departures tombstoned, arrivals
    /// added, and the adjacency row swapped via the overlay.  Liveness flips
    /// are recorded for [`StreamingIndex::finish_batch`].
    ///
    /// # Panics
    /// Panics if the entity is out of range or removed.
    pub fn replace_entity_keys(&mut self, entity: EntityId, raw_keys: &mut Vec<u32>) {
        assert!(
            entity.index() < self.num_entities,
            "cannot update unknown entity {entity}"
        );
        assert!(
            self.alive[entity.index()],
            "cannot update removed entity {entity}"
        );
        self.canonicalize_keys(raw_keys);
        let old: Vec<u32> = self.keys_of(entity).to_vec();
        // Both lists are in lexicographic key order; merge-diff them.
        let (mut i, mut j) = (0, 0);
        while i < old.len() || j < raw_keys.len() {
            if j == raw_keys.len() {
                self.drop_posting(old[i], entity);
                i += 1;
            } else if i == old.len() {
                self.add_posting(raw_keys[j], entity);
                j += 1;
            } else if old[i] == raw_keys[j] {
                i += 1;
                j += 1;
            } else if self.keys[old[i] as usize] < self.keys[raw_keys[j] as usize] {
                self.drop_posting(old[i], entity);
                i += 1;
            } else {
                self.add_posting(raw_keys[j], entity);
                j += 1;
            }
        }
        self.overlay.insert(entity.0, raw_keys.as_slice().into());
    }

    /// Ends a mutation batch: drains the touched-key journal, turns the net
    /// liveness flips into exact candidate retractions (blocks that left the
    /// live set) and revivals (blocks that re-entered it) among pairs of
    /// **unmutated** entities, applies their LCP adjustments, and returns
    /// the effects.  `in_batch` must identify every entity inserted, removed
    /// or updated during the batch — pairs with a mutated endpoint are
    /// handled by the caller's before/after partner-set diff instead.
    pub fn finish_batch(&mut self, in_batch: impl Fn(EntityId) -> bool) -> BatchEffects {
        let mut snapshot: Vec<(u32, bool)> = self.touched.drain().collect();
        snapshot.sort_unstable_by_key(|&(k, _)| k);
        let pre_live: FxHashMap<u32, bool> = snapshot.iter().copied().collect();

        let mut retracted: Vec<(EntityId, EntityId)> = Vec::new();
        let mut revived: Vec<(EntityId, EntityId)> = Vec::new();
        for &(k, was_live) in &snapshot {
            let now_live = self.live[k as usize];
            if was_live && !now_live {
                self.scan_flip(k, &in_batch, None, &mut retracted);
            } else if !was_live && now_live {
                self.scan_flip(k, &in_batch, Some(&pre_live), &mut revived);
            }
        }
        // One batch can flip several blocks a pair belongs to, so the scans
        // may report the same pair twice; deduplicate before touching the
        // LCP counters.
        retracted.sort_unstable();
        retracted.dedup();
        revived.sort_unstable();
        revived.dedup();
        for &(a, b) in &retracted {
            self.entity_candidates[a.index()] -= 1;
            self.entity_candidates[b.index()] -= 1;
        }
        for &(a, b) in &revived {
            self.entity_candidates[a.index()] += 1;
            self.entity_candidates[b.index()] += 1;
        }
        BatchEffects {
            touched_keys: snapshot.into_iter().map(|(k, _)| k).collect(),
            retracted,
            revived,
        }
    }

    /// Drains the touched-key journal without running the liveness-flip
    /// scans: returns `(key, pre_batch_liveness)` sorted by key id.  A
    /// sharded wrapper uses this to collect every shard's journal, map the
    /// local ids to global ones and run the flip scans over the merged,
    /// globally ordered set — reproducing [`StreamingIndex::finish_batch`]
    /// exactly.
    pub(crate) fn drain_touched(&mut self) -> Vec<(u32, bool)> {
        let mut snapshot: Vec<(u32, bool)> = self.touched.drain().collect();
        snapshot.sort_unstable_by_key(|&(k, _)| k);
        snapshot
    }

    /// A block's liveness flipped during the batch: scans its comparable
    /// pairs of unmutated members for candidacy changes.  With
    /// `pre_live == None` the block died — a pair is retracted when it
    /// shares no live key any more; with a snapshot the block came alive — a
    /// pair is revived when it shared no live key *before* the batch (its
    /// key lists are unchanged, so pre-batch candidacy is decidable from the
    /// snapshot).  The scan is bounded: a dying block crossed the size cap
    /// (≤ cap + batch members) or lost all comparable pairs (guarded away),
    /// and a rising block fits under the cap.
    fn scan_flip(
        &self,
        key: u32,
        in_batch: &impl Fn(EntityId) -> bool,
        pre_live: Option<&FxHashMap<u32, bool>>,
        out: &mut Vec<(EntityId, EntityId)>,
    ) {
        let members: Vec<EntityId> = self.members(key).filter(|&m| !in_batch(m)).collect();
        // Skip the quadratic scan when no comparable pair of unmutated
        // members can exist (e.g. a single-source Clean-Clean block dying
        // because its only cross member was removed).
        match self.kind {
            DatasetKind::Dirty => {
                if members.len() < 2 {
                    return;
                }
            }
            DatasetKind::CleanClean => {
                let first = members.partition_point(|m| m.index() < self.split);
                if first == 0 || first == members.len() {
                    return;
                }
            }
        }
        for i in 0..members.len() {
            for j in i + 1..members.len() {
                let (a, b) = (members[i], members[j]);
                if !self.is_comparable(a, b) {
                    continue;
                }
                let shares = match pre_live {
                    None => self.shares_live_key(a, b),
                    Some(snapshot) => self.shares_live_key_at(a, b, snapshot),
                };
                if !shares {
                    out.push((a, b));
                }
            }
        }
    }

    /// True if the two entities currently share a live key (merge over the
    /// two lexicographically sorted key lists).
    fn shares_live_key(&self, a: EntityId, b: EntityId) -> bool {
        self.find_shared_key(a, b, |k| self.live[k as usize])
    }

    /// True if the two entities shared a key that was live at the start of
    /// the current batch (liveness overridden by the touched-key snapshot).
    fn shares_live_key_at(&self, a: EntityId, b: EntityId, pre: &FxHashMap<u32, bool>) -> bool {
        self.find_shared_key(a, b, |k| {
            pre.get(&k).copied().unwrap_or(self.live[k as usize])
        })
    }

    /// Merges the two entities' lexicographically sorted key lists and
    /// returns whether any shared key satisfies `is_live`.
    #[inline]
    fn find_shared_key(&self, a: EntityId, b: EntityId, is_live: impl Fn(u32) -> bool) -> bool {
        let la = self.keys_of(a);
        let lb = self.keys_of(b);
        let (mut i, mut j) = (0, 0);
        while i < la.len() && j < lb.len() {
            let (x, y) = (la[i], lb[j]);
            if x == y {
                if is_live(x) {
                    return true;
                }
                i += 1;
                j += 1;
            } else if self.keys[x as usize] < self.keys[y as usize] {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// The co-occurrence aggregates of one pair over the live blocks: a
    /// merge of the two lexicographically sorted key lists, accumulating in
    /// block-id order so the sums are bit-identical to the batch
    /// [`er_features::FeatureContext::cooccurrence`].
    pub fn pair_cooccurrence(&self, a: EntityId, b: EntityId) -> PairCooccurrence {
        let la = self.keys_of(a);
        let lb = self.keys_of(b);
        let mut agg = PairCooccurrence::default();
        let (mut i, mut j) = (0, 0);
        while i < la.len() && j < lb.len() {
            let (x, y) = (la[i], lb[j]);
            if x == y {
                let ki = x as usize;
                if self.live[ki] {
                    agg.common_blocks += 1;
                    agg.inv_comparisons_sum += self.inv_comparisons[ki];
                    agg.inv_sizes_sum += self.inv_sizes[ki];
                }
                i += 1;
                j += 1;
            } else if self.keys[x as usize] < self.keys[y as usize] {
                i += 1;
            } else {
                j += 1;
            }
        }
        agg
    }

    /// Gathers the delta pairs of one newly ingested entity: every strictly
    /// smaller comparable entity sharing at least one live block, together
    /// with the pair's co-occurrence aggregates — the scoreboard pass of the
    /// batch feature engine, scoped to a single entity.
    ///
    /// Requires every entity of the batch to be inserted first (partners are
    /// judged against end-of-batch block state); restricting partners to
    /// smaller ids makes each in-batch pair come out of exactly one call.
    /// Contributions accumulate in lexicographic key order, so the sums are
    /// bit-identical to a batch [`er_features::FeatureContext`] merge.
    pub fn collect_delta_pairs(
        &self,
        e: EntityId,
        board: &mut PartnerBoard,
    ) -> Vec<(EntityId, PairCooccurrence)> {
        self.collect_partners_impl(e, board, true)
    }

    /// Gathers **all** current candidate partners of an entity (smaller and
    /// larger ids) with their co-occurrence aggregates — the after-image an
    /// update diffs against its before-image.
    pub fn collect_partners(
        &self,
        e: EntityId,
        board: &mut PartnerBoard,
    ) -> Vec<(EntityId, PairCooccurrence)> {
        self.collect_partners_impl(e, board, false)
    }

    fn collect_partners_impl(
        &self,
        e: EntityId,
        board: &mut PartnerBoard,
        smaller_only: bool,
    ) -> Vec<(EntityId, PairCooccurrence)> {
        for &k in self.keys_of(e) {
            let ki = k as usize;
            if !self.live[ki] {
                continue;
            }
            let inv_comparisons = self.inv_comparisons[ki];
            let inv_sizes = self.inv_sizes[ki];
            for p in self.members(k) {
                if smaller_only && p >= e {
                    // Postings are ascending: no smaller partner follows.
                    break;
                }
                if p == e || !self.is_comparable(p, e) {
                    continue;
                }
                board.add(p.0, inv_comparisons, inv_sizes);
            }
        }
        board.drain_sorted()
    }

    /// The current candidate partner ids of an entity (sorted, distinct):
    /// the before-image a mutation diffs against.  Cheaper than
    /// [`StreamingIndex::collect_partners`] because no aggregates are
    /// accumulated.
    pub fn collect_partner_ids(&self, e: EntityId) -> Vec<EntityId> {
        let mut partners: Vec<EntityId> = Vec::new();
        for &k in self.keys_of(e) {
            if !self.live[k as usize] {
                continue;
            }
            partners.extend(
                self.members(k)
                    .filter(|&p| p != e && self.is_comparable(p, e)),
            );
        }
        partners.sort_unstable();
        partners.dedup();
        partners
    }

    /// Records one freshly emitted candidate pair (both LCP counters).
    pub fn record_candidate(&mut self, a: EntityId, b: EntityId) {
        self.entity_candidates[a.index()] += 1;
        self.entity_candidates[b.index()] += 1;
    }

    /// Records one retracted candidate pair (both LCP counters).
    pub fn retract_candidate(&mut self, a: EntityId, b: EntityId) {
        self.entity_candidates[a.index()] -= 1;
        self.entity_candidates[b.index()] -= 1;
    }

    /// The per-entity aggregates of one entity over the *live* blocks — the
    /// quantities [`er_features::FeatureContext`] precomputes corpus-wide,
    /// recomputed here in `O(|B_i|)` for exactly the entities a batch
    /// touches.  Terms are added in lexicographic key order, so the values
    /// are bit-identical to the batch tables for the same corpus.
    pub fn entity_aggregates(&self, entity: EntityId) -> EntityAggregates {
        let mut live_blocks = 0usize;
        let mut inv_comparisons = 0.0f64;
        let mut inv_sizes = 0.0f64;
        let mut entity_comparisons = 0u64;
        for &k in self.keys_of(entity) {
            let ki = k as usize;
            if !self.live[ki] {
                continue;
            }
            live_blocks += 1;
            inv_comparisons += self.inv_comparisons[ki];
            inv_sizes += self.inv_sizes[ki];
            entity_comparisons += self.comparisons[ki];
        }
        let blocks_of = live_blocks as f64;
        let num_blocks = self.num_live as f64;
        let ibf = if blocks_of > 0.0 && num_blocks > 0.0 {
            (num_blocks / blocks_of).ln()
        } else {
            0.0
        };
        let own = entity_comparisons as f64;
        let total = self.total_live_comparisons as f64;
        let icf = if own > 0.0 && total > 0.0 {
            (total / own).ln()
        } else {
            0.0
        };
        EntityAggregates {
            num_blocks: blocks_of,
            inv_comparisons,
            inv_sizes,
            ibf,
            icf,
            lcp: f64::from(self.entity_candidates[entity.index()]),
        }
    }

    /// The batch view of the current corpus: exactly the
    /// [`CsrBlockCollection`] that [`er_blocking::build_blocks`] would
    /// produce for the surviving entities (lexicographic block order, cap
    /// and zero-comparison blocks dropped, sorted tombstone-free entity
    /// lists).
    ///
    /// `threads` parallelises the key sort; the output is identical for any
    /// thread count.
    pub fn view(&self, threads: usize) -> CsrBlockCollection {
        let order = sorted_key_order(&self.keys, threads);
        let mut store = KeyStore::with_capacity(self.keys.len() / 2, 0);
        let mut key_ids = Vec::new();
        let mut entity_offsets = vec![0u32];
        let mut entities: Vec<EntityId> = Vec::new();
        let mut first_counts = Vec::new();
        for &k in &order {
            let ki = k as usize;
            if self.sizes[ki] as usize > self.cap || self.comparisons[ki] == 0 {
                continue;
            }
            key_ids.push(store.push(&self.keys[ki]));
            entities.extend(self.members(k));
            entity_offsets.push(entities.len() as u32);
            first_counts.push(self.first_counts[ki]);
        }
        let split = match self.kind {
            DatasetKind::CleanClean => self.split.min(self.num_entities),
            DatasetKind::Dirty => self.num_entities,
        };
        CsrBlockCollection::from_raw(
            self.dataset_name.clone(),
            self.kind,
            split,
            self.num_entities,
            Arc::new(store),
            key_ids,
            entity_offsets,
            entities,
            first_counts,
        )
    }

    /// Ends the epoch: folds every delta posting into a fresh baseline CSR,
    /// **physically dropping tombstoned postings**, folds the adjacency
    /// overlay back into the entity CSR (stream key ids stay stable), and
    /// returns the batch view of the compacted state via
    /// [`StreamingIndex::view`].
    pub fn compact(&mut self, threads: usize) -> CsrBlockCollection {
        self.fold_deltas();
        self.epoch += 1;
        self.view(threads)
    }

    /// The physical half of [`StreamingIndex::compact`]: folds deltas and
    /// tombstones into a fresh baseline CSR and folds the adjacency overlay
    /// back, without bumping the epoch or building a view.  A sharded
    /// wrapper compacts every shard with this and manages a single global
    /// epoch and view itself.
    pub(crate) fn fold_deltas(&mut self) {
        debug_assert!(
            self.touched.is_empty(),
            "compact() during an unfinished mutation batch"
        );
        let key_count = self.keys.len();
        let grown: usize = self.delta.iter().map(Vec::len).sum();
        let shrunk: usize = self.removed.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(key_count + 1);
        offsets.push(0u32);
        let mut entities =
            Vec::with_capacity((self.base_entities.len() + grown).saturating_sub(shrunk));
        for k in 0..key_count {
            entities.extend(self.members(k as u32));
            self.delta[k].clear();
            self.removed[k].clear();
            offsets.push(entities.len() as u32);
        }
        self.base_offsets = offsets;
        self.base_entities = entities;
        if !self.overlay.is_empty() {
            let mut offsets = Vec::with_capacity(self.num_entities + 1);
            offsets.push(0u32);
            let mut keys = Vec::with_capacity(self.entity_keys.len());
            for e in 0..self.num_entities {
                keys.extend_from_slice(self.keys_of(EntityId(e as u32)));
                offsets.push(keys.len() as u32);
            }
            self.entity_offsets = offsets;
            self.entity_keys = keys;
            self.overlay.clear();
        }
    }
}

/// The complete on-disk image of a [`StreamingIndex`]: every field is
/// persisted verbatim (floats as IEEE-754 bit patterns), so a decoded index
/// is **bit-identical** to the encoded one — same posting layout, same
/// statistics, same accumulated rounding in the reciprocal tables.
///
/// Only two members are reconstructed rather than stored: the key-lookup
/// map (rebuilt from the interned key list) and the per-batch touch journal
/// (snapshots are taken at batch boundaries, where it is empty — encoding
/// asserts this).
impl er_persist::Encode for StreamingIndex {
    fn encode(&self, w: &mut er_persist::Writer) {
        assert!(
            self.touched.is_empty(),
            "cannot snapshot a StreamingIndex mid-batch (finish_batch first)"
        );
        w.write_str(&self.dataset_name);
        self.kind.encode(w);
        w.write_usize(self.split);
        w.write_u64(self.cap as u64);
        w.write_usize(self.num_entities);
        w.write_usize(self.num_alive);
        self.keys.encode(w);
        self.base_offsets.encode(w);
        self.base_entities.encode(w);
        self.delta.encode(w);
        self.removed.encode(w);
        self.sizes.encode(w);
        self.first_counts.encode(w);
        self.comparisons.encode(w);
        self.inv_comparisons.encode(w);
        self.inv_sizes.encode(w);
        self.live.encode(w);
        w.write_usize(self.num_live);
        w.write_u64(self.total_live_comparisons);
        self.entity_offsets.encode(w);
        self.entity_keys.encode(w);
        // The overlay map travels sorted by entity id so the encoding is
        // deterministic for identical state.
        let mut overlay: Vec<(u32, Vec<u32>)> = self
            .overlay
            .iter()
            .map(|(&e, row)| (e, row.to_vec()))
            .collect();
        overlay.sort_unstable_by_key(|&(e, _)| e);
        overlay.encode(w);
        self.alive.encode(w);
        self.entity_candidates.encode(w);
        w.write_u64(self.epoch);
    }
}

impl er_persist::Decode for StreamingIndex {
    fn decode(r: &mut er_persist::Reader<'_>) -> er_core::PersistResult<Self> {
        use er_core::PersistError;

        let corrupt = |msg: String| PersistError::Corrupt(msg);
        let dataset_name = r.read_str()?;
        let kind = DatasetKind::decode(r)?;
        let split = r.read_usize()?;
        let cap = usize::try_from(r.read_u64()?)
            .map_err(|_| corrupt("block-size cap exceeds the platform usize".into()))?;
        let num_entities = r.read_usize()?;
        let num_alive = r.read_usize()?;
        let keys = Vec::<Box<str>>::decode(r)?;
        let base_offsets = Vec::<u32>::decode(r)?;
        let base_entities = Vec::<EntityId>::decode(r)?;
        let delta = Vec::<Vec<EntityId>>::decode(r)?;
        let removed = Vec::<Vec<EntityId>>::decode(r)?;
        let sizes = Vec::<u32>::decode(r)?;
        let first_counts = Vec::<u32>::decode(r)?;
        let comparisons = Vec::<u64>::decode(r)?;
        let inv_comparisons = Vec::<f64>::decode(r)?;
        let inv_sizes = Vec::<f64>::decode(r)?;
        let live = Vec::<bool>::decode(r)?;
        let num_live = r.read_usize()?;
        let total_live_comparisons = r.read_u64()?;
        let entity_offsets = Vec::<u32>::decode(r)?;
        let entity_keys = Vec::<u32>::decode(r)?;
        let overlay_pairs = Vec::<(u32, Vec<u32>)>::decode(r)?;
        let alive = Vec::<bool>::decode(r)?;
        let entity_candidates = Vec::<u32>::decode(r)?;
        let epoch = r.read_u64()?;

        // Cross-field invariants: the checksum has already vouched for the
        // bytes, so violations here mean a logic/version bug — fail typed,
        // never materialise an inconsistent index.
        let key_count = keys.len();
        for (name, len) in [
            ("delta", delta.len()),
            ("removed", removed.len()),
            ("sizes", sizes.len()),
            ("first_counts", first_counts.len()),
            ("comparisons", comparisons.len()),
            ("inv_comparisons", inv_comparisons.len()),
            ("inv_sizes", inv_sizes.len()),
            ("live", live.len()),
        ] {
            if len != key_count {
                return Err(corrupt(format!(
                    "index `{name}` covers {len} keys, dictionary holds {key_count}"
                )));
            }
        }
        if base_offsets.is_empty() || base_offsets.len() > key_count + 1 {
            return Err(corrupt(format!(
                "baseline offsets length {} does not fit {key_count} keys",
                base_offsets.len()
            )));
        }
        if base_offsets.windows(2).any(|p| p[0] > p[1])
            || *base_offsets.last().unwrap() as usize != base_entities.len()
        {
            return Err(corrupt("baseline CSR offsets are inconsistent".into()));
        }
        for (name, len) in [
            ("alive", alive.len()),
            ("entity_candidates", entity_candidates.len()),
        ] {
            if len != num_entities {
                return Err(corrupt(format!(
                    "index `{name}` covers {len} entities, corpus holds {num_entities}"
                )));
            }
        }
        if entity_offsets.len() != num_entities + 1
            || entity_offsets.windows(2).any(|p| p[0] > p[1])
            || *entity_offsets.last().unwrap() as usize != entity_keys.len()
        {
            return Err(corrupt(
                "entity adjacency CSR offsets are inconsistent".into(),
            ));
        }
        if entity_keys.iter().any(|&k| k as usize >= key_count)
            || overlay_pairs
                .iter()
                .any(|(_, row)| row.iter().any(|&k| k as usize >= key_count))
        {
            return Err(corrupt("adjacency references an unknown key id".into()));
        }
        if overlay_pairs
            .iter()
            .any(|&(e, _)| e as usize >= num_entities)
        {
            return Err(corrupt("overlay references an unknown entity id".into()));
        }

        let mut lookup: FxHashMap<Box<str>, u32> = FxHashMap::default();
        for (id, key) in keys.iter().enumerate() {
            if lookup.insert(key.clone(), id as u32).is_some() {
                return Err(corrupt(format!("duplicate interned key {key:?}")));
            }
        }
        let overlay: FxHashMap<u32, Box<[u32]>> = overlay_pairs
            .into_iter()
            .map(|(e, row)| (e, row.into_boxed_slice()))
            .collect();

        Ok(StreamingIndex {
            dataset_name,
            kind,
            split,
            cap,
            num_entities,
            num_alive,
            keys,
            lookup,
            base_offsets,
            base_entities,
            delta,
            removed,
            sizes,
            first_counts,
            comparisons,
            inv_comparisons,
            inv_sizes,
            live,
            num_live,
            total_live_comparisons,
            entity_offsets,
            entity_keys,
            overlay,
            alive,
            entity_candidates,
            touched: FxHashMap::default(),
            epoch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(kind: DatasetKind, split: usize, cap: usize) -> StreamingIndex {
        StreamingIndex::new("t", kind, split, cap)
    }

    /// Interns the keys and inserts the entity.
    fn insert(idx: &mut StreamingIndex, keys: &[&str]) -> EntityId {
        let mut ids: Vec<u32> = keys.iter().map(|k| idx.intern(k)).collect();
        idx.insert_entity(&mut ids)
    }

    /// Replaces an entity's keys through the public update path.
    fn rekey(idx: &mut StreamingIndex, e: EntityId, keys: &[&str]) {
        let mut ids: Vec<u32> = keys.iter().map(|k| idx.intern(k)).collect();
        idx.replace_entity_keys(e, &mut ids);
    }

    /// Finishes the batch treating `batch` as the mutated entity set.
    fn finish(idx: &mut StreamingIndex, batch: &[EntityId]) -> BatchEffects {
        let set: Vec<EntityId> = batch.to_vec();
        idx.finish_batch(move |e| set.contains(&e))
    }

    #[test]
    fn interning_is_idempotent_and_stable() {
        let mut idx = index(DatasetKind::Dirty, 0, usize::MAX);
        let a = idx.intern("apple");
        let b = idx.intern("pear");
        assert_eq!(idx.intern("apple"), a);
        assert_ne!(a, b);
        assert_eq!(idx.num_keys(), 2);
    }

    #[test]
    fn dirty_stats_update_in_place() {
        let mut idx = index(DatasetKind::Dirty, 0, usize::MAX);
        insert(&mut idx, &["a", "b"]);
        insert(&mut idx, &["a"]);
        insert(&mut idx, &["a", "b"]);
        finish(&mut idx, &[EntityId(0), EntityId(1), EntityId(2)]);
        // Block "a" has 3 members → 3 comparisons; "b" has 2 → 1.
        assert_eq!(idx.num_live_blocks(), 2);
        assert_eq!(idx.total_comparisons(), 4);
    }

    #[test]
    fn clean_clean_blocks_go_live_only_cross_source() {
        let mut idx = index(DatasetKind::CleanClean, 2, usize::MAX);
        insert(&mut idx, &["k"]);
        insert(&mut idx, &["k"]);
        finish(&mut idx, &[EntityId(0), EntityId(1)]);
        // Both members are E1 → no comparisons, block not live.
        assert_eq!(idx.num_live_blocks(), 0);
        insert(&mut idx, &["k"]);
        finish(&mut idx, &[EntityId(2)]);
        // E2 member arrives → ||k|| = 2 · 1 = 2.
        assert_eq!(idx.num_live_blocks(), 1);
        assert_eq!(idx.total_comparisons(), 2);
    }

    #[test]
    fn cap_crossing_retracts_orphaned_pairs() {
        // Cap 2: pairs supported only by a block of size 3 must retract.
        let mut idx = index(DatasetKind::Dirty, 0, 2);
        let e0 = insert(&mut idx, &["x", "shared"]);
        let e1 = insert(&mut idx, &["x", "shared"]);
        finish(&mut idx, &[e0, e1]);
        idx.record_candidate(e0, e1); // as the blocker would after emission
        let e2 = insert(&mut idx, &["y"]);
        assert!(idx.num_live_blocks() > 0);
        // Entity 3 pushes "x" to size 3 (> cap).  e0–e1 still share the
        // live "shared" block, so nothing retracts.
        let e3 = insert(&mut idx, &["x"]);
        let effects = finish(&mut idx, &[e2, e3]);
        assert!(effects.retracted.is_empty());
        assert_eq!(idx.candidates_of(e0), 1);

        // Same again, but without a second shared key: retraction fires.
        let mut idx = index(DatasetKind::Dirty, 0, 2);
        let a0 = insert(&mut idx, &["x"]);
        let a1 = insert(&mut idx, &["x"]);
        finish(&mut idx, &[a0, a1]);
        idx.record_candidate(a0, a1);
        let a2 = insert(&mut idx, &["x"]);
        let effects = finish(&mut idx, &[a2]);
        assert_eq!(effects.retracted, vec![(a0, a1)]);
        assert_eq!(idx.candidates_of(a0), 0);
        assert_eq!(idx.candidates_of(a1), 0);
    }

    #[test]
    fn cap_shrinking_revives_orphaned_pairs() {
        // Cap 2, Dirty.  "x" grows to 3 members (dead), then shrinks back
        // to 2 via a removal: the surviving pair re-enters the candidate
        // set with exact stats.
        let mut idx = index(DatasetKind::Dirty, 0, 2);
        let a0 = insert(&mut idx, &["x"]);
        let a1 = insert(&mut idx, &["x"]);
        finish(&mut idx, &[a0, a1]);
        idx.record_candidate(a0, a1);
        let a2 = insert(&mut idx, &["x"]);
        let effects = finish(&mut idx, &[a2]);
        assert_eq!(effects.retracted, vec![(a0, a1)]);
        assert!(!idx.is_block_live(0));

        idx.remove_entity(a2);
        let effects = finish(&mut idx, &[a2]);
        assert_eq!(effects.revived, vec![(a0, a1)]);
        assert!(effects.retracted.is_empty());
        assert!(idx.is_block_live(0));
        assert_eq!(idx.block_size(0), 2);
        assert_eq!(idx.total_comparisons(), 1);
        assert_eq!(idx.candidates_of(a0), 1);
        assert_eq!(idx.candidates_of(a1), 1);
    }

    #[test]
    fn removal_tombstones_postings_and_updates_stats() {
        let mut idx = index(DatasetKind::Dirty, 0, usize::MAX);
        let e0 = insert(&mut idx, &["a", "b"]);
        let e1 = insert(&mut idx, &["a"]);
        let e2 = insert(&mut idx, &["a", "b"]);
        finish(&mut idx, &[e0, e1, e2]);
        // Compact so the postings live in the baseline arena, then remove:
        // the posting must be tombstoned, not edited.
        idx.compact(1);
        idx.remove_entity(e1);
        finish(&mut idx, &[e1]);
        assert!(!idx.is_alive(e1));
        assert_eq!(idx.num_alive(), 2);
        let ka = idx.intern("a");
        let a: Vec<EntityId> = idx.members(ka).collect();
        assert_eq!(a, vec![e0, e2]);
        // "a" has 2 members → 1 comparison; "b" unchanged with 1.
        assert_eq!(idx.total_comparisons(), 2);
        assert!(idx.keys_of(e1).is_empty());
        // Compaction physically drops the tombstone.
        let csr = idx.compact(1);
        assert_eq!(csr.num_blocks(), 2);
        assert_eq!(csr.entities(0), &[e0, e2]);
    }

    #[test]
    fn update_rekeys_in_place() {
        let mut idx = index(DatasetKind::Dirty, 0, usize::MAX);
        let e0 = insert(&mut idx, &["a", "b"]);
        let e1 = insert(&mut idx, &["a"]);
        finish(&mut idx, &[e0, e1]);
        rekey(&mut idx, e1, &["b", "c"]);
        finish(&mut idx, &[e1]);
        let (ka, kb, kc) = (idx.intern("a"), idx.intern("b"), idx.intern("c"));
        let a: Vec<EntityId> = idx.members(ka).collect();
        let b: Vec<EntityId> = idx.members(kb).collect();
        let c: Vec<EntityId> = idx.members(kc).collect();
        assert_eq!(a, vec![e0]);
        assert_eq!(b, vec![e0, e1]);
        assert_eq!(c, vec![e1]);
        assert_eq!(idx.keys_of(e1).len(), 2);
        // Un-tombstoning: moving back restores the original postings.
        rekey(&mut idx, e1, &["a"]);
        finish(&mut idx, &[e1]);
        let a: Vec<EntityId> = idx.members(ka).collect();
        assert_eq!(a, vec![e0, e1]);
        assert!(idx.members(kc).next().is_none());
    }

    #[test]
    fn delta_pairs_cover_only_smaller_comparable_partners() {
        let mut idx = index(DatasetKind::CleanClean, 2, usize::MAX);
        insert(&mut idx, &["k", "m"]);
        insert(&mut idx, &["k"]);
        let e2 = insert(&mut idx, &["k", "m"]);
        finish(&mut idx, &[EntityId(0), EntityId(1), e2]);
        let mut board = PartnerBoard::default();
        let partners = idx.collect_delta_pairs(e2, &mut board);
        // Both E1 entities share the live "k" block with e2; entity 0 also
        // shares "m" (live once e2 joined it).
        assert_eq!(partners.len(), 2);
        assert_eq!(partners[0].0, EntityId(0));
        assert_eq!(partners[0].1.common_blocks, 2);
        assert_eq!(partners[1].0, EntityId(1));
        assert_eq!(partners[1].1.common_blocks, 1);
        // The all-partner view from the E1 side sees e2 as well.
        let partners = idx.collect_partners(EntityId(0), &mut board);
        assert_eq!(partners.len(), 1);
        assert_eq!(partners[0].0, e2);
        assert_eq!(partners[0].1.common_blocks, 2);
        assert_eq!(
            idx.pair_cooccurrence(EntityId(0), e2).common_blocks,
            partners[0].1.common_blocks
        );
        assert_eq!(idx.collect_partner_ids(EntityId(0)), vec![e2]);
    }

    #[test]
    fn compact_folds_deltas_and_preserves_the_view() {
        let mut idx = index(DatasetKind::Dirty, 0, usize::MAX);
        insert(&mut idx, &["b", "a"]);
        insert(&mut idx, &["a"]);
        finish(&mut idx, &[EntityId(0), EntityId(1)]);
        let before = idx.view(1);
        let compacted = idx.compact(1);
        assert_eq!(idx.epoch(), 1);
        assert_eq!(
            before.to_block_collection().blocks,
            compacted.to_block_collection().blocks
        );
        // Ingest more after compaction; the view still merges base + delta.
        insert(&mut idx, &["a", "b"]);
        finish(&mut idx, &[EntityId(2)]);
        let after = idx.view(1);
        assert_eq!(after.num_blocks(), 2);
        assert_eq!(after.key(0), "a");
        assert_eq!(after.entities(0), &[EntityId(0), EntityId(1), EntityId(2)]);
    }
}
