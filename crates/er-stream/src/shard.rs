//! A hash-partitioned [`DeltaIndex`]: N [`StreamingIndex`] posting shards
//! behind one global key dictionary, bit-identical to a single shard.
//!
//! # Partitioning
//!
//! The *posting space* is sharded: every interned key is routed to the
//! shard `crc64(key) % N` owns ([`shard_of_key`]), which holds the key's
//! full posting list, statistics and liveness flag.  The *entity space* is
//! not sharded — every entity exists on every shard (with the sub-list of
//! its keys that hash there, possibly empty), so entity ids, aliveness and
//! batch boundaries stay aligned across shards and a mutation batch can
//! fan out to the shards it touches without any cross-shard id mapping.
//!
//! # Bit-identity to the single-shard oracle
//!
//! Global key ids are assigned in first-encounter intern order — exactly
//! the ids a single [`StreamingIndex`] driven by the same mutation
//! sequence would assign — and every per-entity key list is kept in
//! lexicographic key-string order.  Each consumer-facing operation
//! (partner collection, co-occurrence merges, aggregates, batch liveness
//! effects, views) walks keys in that global order and reads per-key
//! statistics from the owning shard, reproducing the oracle's float
//! accumulation order term by term.  The er-shard property suite drives
//! random mutation traces through both and asserts every
//! [`crate::DeltaBatch`] field and the compacted views are bit-identical
//! at shards × threads ∈ {1,2,4}².
//!
//! # Concurrency shape
//!
//! Shards are independent `StreamingIndex` values: mutation fan-out and
//! compaction touch disjoint shards and read-side consumers see `&self`
//! ([`ShardedIndex`] is `Sync` like any [`crate::BlockIndex`]).  The
//! er-shard service layers epoch-published immutable views and per-shard
//! WALs with a cross-shard manifest on top.

use er_blocking::{sorted_key_order, CsrBlockCollection, KeyStore};
use er_core::{crc64, DatasetKind, EntityId, FxHashMap, PersistError, PersistResult};
use er_features::{EntityAggregates, PairCooccurrence};

use crate::delta::{BlockIndex, DeltaIndex};
use crate::index::{BatchEffects, Members, PartnerBoard, StreamingIndex};

/// The shard owning a key's posting list: `crc64(key) % num_shards`.
///
/// Part of the persistence contract — a recovered [`ShardedIndex`] must
/// route exactly as the crashed one did, and the routing must not depend
/// on hasher seeds or platform.
#[inline]
pub fn shard_of_key(key: &str, num_shards: usize) -> usize {
    (crc64(key.as_bytes()) % num_shards as u64) as usize
}

/// The global routing state a sharded snapshot persists *next to* the
/// per-shard [`StreamingIndex`] images: everything
/// [`ShardedIndex::from_parts`] cannot rebuild from the shards alone.
///
/// `route` is the global key table in first-encounter intern order (the
/// order cannot be recovered from the shards — each shard only knows its
/// own sub-order), and `entity_candidates` are the global LCP counters
/// (candidate emission is orchestrated above the shards, so the per-shard
/// counters stay zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouterState {
    /// Number of posting shards.
    pub num_shards: u32,
    /// Global key id → `(shard, local key id)`, in global intern order.
    pub route: Vec<(u32, u32)>,
    /// Global per-entity distinct-candidate counts (the LCP feature).
    pub entity_candidates: Vec<u32>,
    /// Global compaction epoch.
    pub epoch: u64,
}

impl er_persist::Encode for ShardRouterState {
    fn encode(&self, w: &mut er_persist::Writer) {
        w.write_u32(self.num_shards);
        self.route.encode(w);
        self.entity_candidates.encode(w);
        w.write_u64(self.epoch);
    }
}

impl er_persist::Decode for ShardRouterState {
    fn decode(r: &mut er_persist::Reader) -> PersistResult<Self> {
        Ok(ShardRouterState {
            num_shards: r.read_u32()?,
            route: Vec::<(u32, u32)>::decode(r)?,
            entity_candidates: Vec::<u32>::decode(r)?,
            epoch: r.read_u64()?,
        })
    }
}

/// N hash-partitioned [`StreamingIndex`] shards presenting as one
/// [`DeltaIndex`], bit-identical to a single shard for every operation.
#[derive(Debug)]
pub struct ShardedIndex {
    dataset_name: String,
    kind: DatasetKind,
    split: usize,
    cap: usize,
    shards: Vec<StreamingIndex>,
    /// Global interned key strings, first-encounter order (= oracle ids).
    keys: Vec<Box<str>>,
    lookup: FxHashMap<Box<str>, u32>,
    /// Global key id → (owning shard, local key id there).
    route: Vec<(u32, u32)>,
    /// Inverse of `route` per shard: local key id → global key id.
    shard_globals: Vec<Vec<u32>>,
    /// Per-entity global key ids in lexicographic key-string order (empty
    /// for removed entities) — the global mirror of the oracle's adjacency.
    entity_rows: Vec<Vec<u32>>,
    /// Global LCP counters (the shards' own counters stay zero).
    entity_candidates: Vec<u32>,
    epoch: u64,
    /// Reusable per-shard local-key buffers for mutation fan-out.
    scratch: Vec<Vec<u32>>,
}

impl ShardedIndex {
    /// Creates an empty sharded index; see [`StreamingIndex::new`] for the
    /// parameter contract.  `num_shards` must be at least 1.
    pub fn new(
        dataset_name: impl Into<String>,
        kind: DatasetKind,
        split: usize,
        cap: usize,
        num_shards: usize,
    ) -> Self {
        assert!(num_shards >= 1, "a sharded index needs at least one shard");
        let dataset_name = dataset_name.into();
        let shards = (0..num_shards)
            .map(|_| StreamingIndex::new(dataset_name.clone(), kind, split, cap))
            .collect();
        ShardedIndex {
            dataset_name,
            kind,
            split,
            cap,
            shards,
            keys: Vec::new(),
            lookup: FxHashMap::default(),
            route: Vec::new(),
            shard_globals: vec![Vec::new(); num_shards],
            entity_rows: Vec::new(),
            entity_candidates: Vec::new(),
            epoch: 0,
            scratch: vec![Vec::new(); num_shards],
        }
    }

    /// Number of posting shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// One posting shard (snapshot encoding walks these).
    pub fn shard(&self, i: usize) -> &StreamingIndex {
        &self.shards[i]
    }

    /// The global routing state to persist next to the shard images.
    pub fn router_state(&self) -> ShardRouterState {
        ShardRouterState {
            num_shards: self.shards.len() as u32,
            route: self.route.clone(),
            entity_candidates: self.entity_candidates.clone(),
            epoch: self.epoch,
        }
    }

    /// Reassembles a sharded index from recovered shard images and the
    /// persisted routing state, rebuilding every derived structure (global
    /// key table, per-shard inverses, entity adjacency) and
    /// cross-validating the parts against each other.
    pub fn from_parts(shards: Vec<StreamingIndex>, state: ShardRouterState) -> PersistResult<Self> {
        let corrupt = |msg: String| Err(PersistError::Corrupt(msg));
        if shards.is_empty() || shards.len() != state.num_shards as usize {
            return corrupt(format!(
                "router expects {} shards, got {}",
                state.num_shards,
                shards.len()
            ));
        }
        let first = &shards[0];
        for (i, s) in shards.iter().enumerate() {
            if s.kind() != first.kind()
                || s.split() != first.split()
                || s.size_cap() != first.size_cap()
                || s.dataset_name() != first.dataset_name()
                || s.num_entities() != first.num_entities()
                || s.num_alive() != first.num_alive()
            {
                return corrupt(format!("shard {i} disagrees with shard 0 on its shape"));
            }
            if s.has_open_batch() {
                return corrupt(format!("shard {i} was snapshotted mid-batch"));
            }
        }
        let num_entities = first.num_entities();
        if state.entity_candidates.len() != num_entities {
            return corrupt(format!(
                "router has {} LCP counters for {num_entities} entities",
                state.entity_candidates.len()
            ));
        }
        let total_keys: usize = shards.iter().map(StreamingIndex::num_keys).sum();
        if state.route.len() != total_keys {
            return corrupt(format!(
                "router maps {} keys, shards hold {total_keys}",
                state.route.len()
            ));
        }
        // Rebuild the global key table; each shard's locals must appear in
        // their own intern order (0, 1, 2, ... per shard).
        let mut keys: Vec<Box<str>> = Vec::with_capacity(total_keys);
        let mut lookup = FxHashMap::default();
        let mut shard_globals: Vec<Vec<u32>> = vec![Vec::new(); shards.len()];
        for (g, &(s, local)) in state.route.iter().enumerate() {
            let (s, local) = (s as usize, local as usize);
            if s >= shards.len() || local != shard_globals[s].len() {
                return corrupt(format!("router entry {g} is out of order"));
            }
            let key = shards[s].key_str(local as u32);
            if shard_of_key(key, shards.len()) != s {
                return corrupt(format!("key {g:?} routed to the wrong shard"));
            }
            keys.push(key.into());
            lookup.insert(keys[g].clone(), g as u32);
            shard_globals[s].push(g as u32);
        }
        if lookup.len() != total_keys {
            return corrupt("duplicate key across shards".to_string());
        }
        // Rebuild the global entity adjacency: merge each entity's
        // per-shard key lists and restore lexicographic key-string order.
        let mut entity_rows: Vec<Vec<u32>> = Vec::with_capacity(num_entities);
        for e in 0..num_entities {
            let entity = EntityId(e as u32);
            let mut row: Vec<u32> = Vec::new();
            for (s, shard) in shards.iter().enumerate() {
                row.extend(
                    shard
                        .keys_of(entity)
                        .iter()
                        .map(|&l| shard_globals[s][l as usize]),
                );
            }
            row.sort_unstable_by(|&a, &b| keys[a as usize].cmp(&keys[b as usize]));
            entity_rows.push(row);
        }
        let num_shards = shards.len();
        Ok(ShardedIndex {
            dataset_name: first.dataset_name().to_string(),
            kind: first.kind(),
            split: first.split(),
            cap: first.size_cap(),
            shards,
            keys,
            lookup,
            route: state.route,
            shard_globals,
            entity_rows,
            entity_candidates: state.entity_candidates,
            epoch: state.epoch,
            scratch: vec![Vec::new(); num_shards],
        })
    }

    /// `(owning shard, local key id)` of a global key.
    #[inline]
    fn locate(&self, key: u32) -> (usize, u32) {
        let (s, local) = self.route[key as usize];
        (s as usize, local)
    }

    /// Whether a global key's block is currently live on its shard.
    #[inline]
    fn is_key_live(&self, key: u32) -> bool {
        let (s, local) = self.locate(key);
        self.shards[s].is_block_live(local)
    }

    /// Canonicalizes a raw global key list exactly like
    /// `StreamingIndex::canonicalize_keys`: distinct ids in lexicographic
    /// key-string order.
    fn canonicalize(&self, raw_keys: &mut Vec<u32>) {
        raw_keys.sort_unstable();
        raw_keys.dedup();
        raw_keys.sort_unstable_by(|&a, &b| self.keys[a as usize].cmp(&self.keys[b as usize]));
    }

    /// Fans a canonical global key list out into per-shard local lists in
    /// `self.scratch` (cleared first; sub-orders preserved).
    fn fan_out(&mut self, raw_keys: &[u32]) {
        for buf in &mut self.scratch {
            buf.clear();
        }
        for &g in raw_keys {
            let (s, local) = self.route[g as usize];
            self.scratch[s as usize].push(local);
        }
    }

    /// Mirror of `StreamingIndex::scan_flip` over the global key space: a
    /// block's liveness flipped, scan its comparable pairs of unmutated
    /// members for candidacy changes (retractions when it died, revivals —
    /// judged against pre-batch liveness — when it came alive).
    fn scan_flip(
        &self,
        key: u32,
        in_batch: &dyn Fn(EntityId) -> bool,
        pre_live: Option<&FxHashMap<u32, bool>>,
        out: &mut Vec<(EntityId, EntityId)>,
    ) {
        let (s, local) = self.locate(key);
        let members: Vec<EntityId> = self.shards[s]
            .members(local)
            .filter(|&m| !in_batch(m))
            .collect();
        match self.kind {
            DatasetKind::Dirty => {
                if members.len() < 2 {
                    return;
                }
            }
            DatasetKind::CleanClean => {
                let first = members.partition_point(|m| m.index() < self.split);
                if first == 0 || first == members.len() {
                    return;
                }
            }
        }
        for i in 0..members.len() {
            for j in i + 1..members.len() {
                let (a, b) = (members[i], members[j]);
                if !self.is_comparable(a, b) {
                    continue;
                }
                let shares = match pre_live {
                    None => self.find_shared_key(a, b, |k| self.is_key_live(k)),
                    Some(snapshot) => self.find_shared_key(a, b, |k| {
                        snapshot
                            .get(&k)
                            .copied()
                            .unwrap_or_else(|| self.is_key_live(k))
                    }),
                };
                if !shares {
                    out.push((a, b));
                }
            }
        }
    }

    /// Merges two entities' global key lists (lexicographic order) and
    /// returns whether any shared key satisfies `is_live`.
    fn find_shared_key(&self, a: EntityId, b: EntityId, is_live: impl Fn(u32) -> bool) -> bool {
        let la = &self.entity_rows[a.index()];
        let lb = &self.entity_rows[b.index()];
        let (mut i, mut j) = (0, 0);
        while i < la.len() && j < lb.len() {
            let (x, y) = (la[i], lb[j]);
            if x == y {
                if is_live(x) {
                    return true;
                }
                i += 1;
                j += 1;
            } else if self.keys[x as usize] < self.keys[y as usize] {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// Shared body of the partner-collection pair: walk the entity's
    /// global key list in lexicographic order, read each live key's
    /// statistics and members from the owning shard, accumulate on the
    /// board — term order identical to the oracle's.
    fn collect_partners_impl(
        &self,
        e: EntityId,
        board: &mut PartnerBoard,
        smaller_only: bool,
    ) -> Vec<(EntityId, PairCooccurrence)> {
        for &g in &self.entity_rows[e.index()] {
            let (s, local) = self.locate(g);
            let shard = &self.shards[s];
            if !shard.is_block_live(local) {
                continue;
            }
            let inv_comparisons = shard.key_inv_comparisons(local);
            let inv_sizes = shard.key_inv_sizes(local);
            for p in shard.members(local) {
                if smaller_only && p >= e {
                    break;
                }
                if p == e || !self.is_comparable(p, e) {
                    continue;
                }
                board.add(p.0, inv_comparisons, inv_sizes);
            }
        }
        board.drain_sorted()
    }
}

impl BlockIndex for ShardedIndex {
    fn num_keys(&self) -> usize {
        self.keys.len()
    }
    fn num_entities(&self) -> usize {
        self.entity_rows.len()
    }
    fn num_alive(&self) -> usize {
        self.shards[0].num_alive()
    }
    fn is_alive(&self, entity: EntityId) -> bool {
        self.shards[0].is_alive(entity)
    }
    fn key_str(&self, key: u32) -> &str {
        &self.keys[key as usize]
    }
    fn block_size(&self, key: u32) -> usize {
        let (s, local) = self.locate(key);
        self.shards[s].block_size(local)
    }
    fn is_block_live(&self, key: u32) -> bool {
        self.is_key_live(key)
    }
    fn members(&self, key: u32) -> Members<'_> {
        let (s, local) = self.locate(key);
        self.shards[s].members(local)
    }
    fn keys_of(&self, entity: EntityId) -> &[u32] {
        &self.entity_rows[entity.index()]
    }
    fn is_comparable(&self, a: EntityId, b: EntityId) -> bool {
        self.kind.comparable(self.split, a, b)
    }
    fn candidates_of(&self, entity: EntityId) -> u32 {
        self.entity_candidates[entity.index()]
    }
}

impl DeltaIndex for ShardedIndex {
    fn kind(&self) -> DatasetKind {
        self.kind
    }
    fn split(&self) -> usize {
        self.split
    }
    fn size_cap(&self) -> usize {
        self.cap
    }
    fn dataset_name(&self) -> &str {
        &self.dataset_name
    }
    fn epoch(&self) -> u64 {
        self.epoch
    }
    fn has_open_batch(&self) -> bool {
        self.shards.iter().any(StreamingIndex::has_open_batch)
    }

    fn intern(&mut self, key: &str) -> u32 {
        if let Some(&id) = self.lookup.get(key) {
            return id;
        }
        let g = self.keys.len() as u32;
        let s = shard_of_key(key, self.shards.len());
        let local = self.shards[s].intern(key);
        debug_assert_eq!(local as usize, self.shard_globals[s].len());
        self.shard_globals[s].push(g);
        self.route.push((s as u32, local));
        let owned: Box<str> = key.into();
        self.keys.push(owned.clone());
        self.lookup.insert(owned, g);
        g
    }

    fn insert_entity(&mut self, raw_keys: &mut Vec<u32>) -> EntityId {
        self.canonicalize(raw_keys);
        self.fan_out(raw_keys);
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut assigned: Option<EntityId> = None;
        for (s, buf) in scratch.iter_mut().enumerate() {
            let e = self.shards[s].insert_entity(buf);
            debug_assert!(assigned.is_none_or(|prev| prev == e));
            assigned = Some(e);
        }
        self.scratch = scratch;
        self.entity_rows.push(raw_keys.clone());
        self.entity_candidates.push(0);
        assigned.expect("at least one shard")
    }

    fn remove_entity(&mut self, entity: EntityId) {
        for shard in &mut self.shards {
            shard.remove_entity(entity);
        }
        self.entity_rows[entity.index()] = Vec::new();
    }

    fn replace_entity_keys(&mut self, entity: EntityId, raw_keys: &mut Vec<u32>) {
        self.canonicalize(raw_keys);
        self.fan_out(raw_keys);
        let mut scratch = std::mem::take(&mut self.scratch);
        for (s, buf) in scratch.iter_mut().enumerate() {
            self.shards[s].replace_entity_keys(entity, buf);
        }
        self.scratch = scratch;
        self.entity_rows[entity.index()] = raw_keys.clone();
    }

    fn finish_batch(&mut self, in_batch: &dyn Fn(EntityId) -> bool) -> BatchEffects {
        // Collect every shard's journal, translate to global ids, and
        // process flips in ascending *global* key order — the order the
        // oracle's own journal drain produces (global ids are intern
        // order, identical to the oracle's key ids).
        let mut snapshot: Vec<(u32, bool)> = Vec::new();
        for s in 0..self.shards.len() {
            let drained = self.shards[s].drain_touched();
            snapshot.extend(
                drained
                    .into_iter()
                    .map(|(local, was)| (self.shard_globals[s][local as usize], was)),
            );
        }
        snapshot.sort_unstable_by_key(|&(k, _)| k);
        let pre_live: FxHashMap<u32, bool> = snapshot.iter().copied().collect();

        let mut retracted: Vec<(EntityId, EntityId)> = Vec::new();
        let mut revived: Vec<(EntityId, EntityId)> = Vec::new();
        for &(k, was_live) in &snapshot {
            let now_live = self.is_key_live(k);
            if was_live && !now_live {
                self.scan_flip(k, in_batch, None, &mut retracted);
            } else if !was_live && now_live {
                self.scan_flip(k, in_batch, Some(&pre_live), &mut revived);
            }
        }
        retracted.sort_unstable();
        retracted.dedup();
        revived.sort_unstable();
        revived.dedup();
        for &(a, b) in &retracted {
            self.entity_candidates[a.index()] -= 1;
            self.entity_candidates[b.index()] -= 1;
        }
        for &(a, b) in &revived {
            self.entity_candidates[a.index()] += 1;
            self.entity_candidates[b.index()] += 1;
        }
        BatchEffects {
            touched_keys: snapshot.into_iter().map(|(k, _)| k).collect(),
            retracted,
            revived,
        }
    }

    fn collect_delta_pairs(
        &self,
        e: EntityId,
        board: &mut PartnerBoard,
    ) -> Vec<(EntityId, PairCooccurrence)> {
        self.collect_partners_impl(e, board, true)
    }

    fn collect_partners(
        &self,
        e: EntityId,
        board: &mut PartnerBoard,
    ) -> Vec<(EntityId, PairCooccurrence)> {
        self.collect_partners_impl(e, board, false)
    }

    fn collect_partner_ids(&self, e: EntityId) -> Vec<EntityId> {
        let mut partners: Vec<EntityId> = Vec::new();
        for &g in &self.entity_rows[e.index()] {
            let (s, local) = self.locate(g);
            let shard = &self.shards[s];
            if !shard.is_block_live(local) {
                continue;
            }
            partners.extend(
                shard
                    .members(local)
                    .filter(|&p| p != e && self.is_comparable(p, e)),
            );
        }
        partners.sort_unstable();
        partners.dedup();
        partners
    }

    fn pair_cooccurrence(&self, a: EntityId, b: EntityId) -> PairCooccurrence {
        let la = &self.entity_rows[a.index()];
        let lb = &self.entity_rows[b.index()];
        let mut agg = PairCooccurrence::default();
        let (mut i, mut j) = (0, 0);
        while i < la.len() && j < lb.len() {
            let (x, y) = (la[i], lb[j]);
            if x == y {
                let (s, local) = self.locate(x);
                let shard = &self.shards[s];
                if shard.is_block_live(local) {
                    agg.common_blocks += 1;
                    agg.inv_comparisons_sum += shard.key_inv_comparisons(local);
                    agg.inv_sizes_sum += shard.key_inv_sizes(local);
                }
                i += 1;
                j += 1;
            } else if self.keys[x as usize] < self.keys[y as usize] {
                i += 1;
            } else {
                j += 1;
            }
        }
        agg
    }

    fn entity_aggregates(&self, entity: EntityId) -> EntityAggregates {
        let mut live_blocks = 0usize;
        let mut inv_comparisons = 0.0f64;
        let mut inv_sizes = 0.0f64;
        let mut entity_comparisons = 0u64;
        for &g in &self.entity_rows[entity.index()] {
            let (s, local) = self.locate(g);
            let shard = &self.shards[s];
            if !shard.is_block_live(local) {
                continue;
            }
            live_blocks += 1;
            inv_comparisons += shard.key_inv_comparisons(local);
            inv_sizes += shard.key_inv_sizes(local);
            entity_comparisons += shard.key_comparisons(local);
        }
        let blocks_of = live_blocks as f64;
        let num_blocks = self
            .shards
            .iter()
            .map(StreamingIndex::num_live_blocks)
            .sum::<usize>() as f64;
        let ibf = if blocks_of > 0.0 && num_blocks > 0.0 {
            (num_blocks / blocks_of).ln()
        } else {
            0.0
        };
        let own = entity_comparisons as f64;
        let total = self
            .shards
            .iter()
            .map(StreamingIndex::total_comparisons)
            .sum::<u64>() as f64;
        let icf = if own > 0.0 && total > 0.0 {
            (total / own).ln()
        } else {
            0.0
        };
        EntityAggregates {
            num_blocks: blocks_of,
            inv_comparisons,
            inv_sizes,
            ibf,
            icf,
            lcp: f64::from(self.entity_candidates[entity.index()]),
        }
    }

    fn record_candidate(&mut self, a: EntityId, b: EntityId) {
        self.entity_candidates[a.index()] += 1;
        self.entity_candidates[b.index()] += 1;
    }

    fn retract_candidate(&mut self, a: EntityId, b: EntityId) {
        self.entity_candidates[a.index()] -= 1;
        self.entity_candidates[b.index()] -= 1;
    }

    fn view(&self, threads: usize) -> CsrBlockCollection {
        let order = sorted_key_order(&self.keys, threads);
        let mut store = KeyStore::with_capacity(self.keys.len() / 2, 0);
        let mut key_ids = Vec::new();
        let mut entity_offsets = vec![0u32];
        let mut entities: Vec<EntityId> = Vec::new();
        let mut first_counts = Vec::new();
        for &g in &order {
            let (s, local) = self.locate(g);
            let shard = &self.shards[s];
            if shard.block_size(local) > self.cap || shard.key_comparisons(local) == 0 {
                continue;
            }
            key_ids.push(store.push(&self.keys[g as usize]));
            entities.extend(shard.members(local));
            entity_offsets.push(entities.len() as u32);
            first_counts.push(shard.key_first_count(local));
        }
        let num_entities = self.entity_rows.len();
        let split = match self.kind {
            DatasetKind::CleanClean => self.split.min(num_entities),
            DatasetKind::Dirty => num_entities,
        };
        CsrBlockCollection::from_raw(
            self.dataset_name.clone(),
            self.kind,
            split,
            num_entities,
            std::sync::Arc::new(store),
            key_ids,
            entity_offsets,
            entities,
            first_counts,
        )
    }

    fn compact(&mut self, threads: usize) -> CsrBlockCollection {
        debug_assert!(
            !self.has_open_batch(),
            "compact() during an unfinished mutation batch"
        );
        for shard in &mut self.shards {
            shard.fold_deltas();
        }
        self.epoch += 1;
        self.view(threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sharded(n: usize) -> ShardedIndex {
        ShardedIndex::new("t", DatasetKind::Dirty, 0, usize::MAX, n)
    }

    fn oracle() -> StreamingIndex {
        StreamingIndex::new("t", DatasetKind::Dirty, 0, usize::MAX)
    }

    /// Drives the same tiny mutation sequence through a single
    /// StreamingIndex and a ShardedIndex and compares every observable.
    #[test]
    fn sharded_index_tracks_the_oracle() {
        for n in [1usize, 2, 3, 4] {
            let mut a = oracle();
            let mut b = sharded(n);
            let corpus: &[&[&str]] = &[
                &["apple", "iphone", "ten"],
                &["apple", "iphone", "x"],
                &["samsung", "galaxy", "phone"],
                &["galaxy", "phone", "samsung"],
            ];
            for keys in corpus {
                let mut ra: Vec<u32> = keys.iter().map(|k| a.intern(k)).collect();
                let mut rb: Vec<u32> = keys.iter().map(|k| DeltaIndex::intern(&mut b, k)).collect();
                assert_eq!(ra, rb, "intern order must match at {n} shards");
                let ea = a.insert_entity(&mut ra);
                let eb = b.insert_entity(&mut rb);
                assert_eq!(ea, eb);
            }
            let ea = a.finish_batch(|_| true);
            let eb = DeltaIndex::finish_batch(&mut b, &|_| true);
            assert_eq!(ea.touched_keys, eb.touched_keys);
            assert_eq!(ea.retracted, eb.retracted);
            assert_eq!(ea.revived, eb.revived);
            for e in 0..a.num_entities() {
                let e = EntityId(e as u32);
                assert_eq!(a.keys_of(e), BlockIndex::keys_of(&b, e));
                assert_eq!(
                    a.collect_partner_ids(e),
                    DeltaIndex::collect_partner_ids(&b, e)
                );
            }
            let va = a.compact(1);
            let vb = DeltaIndex::compact(&mut b, 1);
            assert_eq!(
                va.to_block_collection().blocks,
                vb.to_block_collection().blocks
            );
        }
    }

    #[test]
    fn router_state_roundtrips_through_from_parts() {
        let mut b = sharded(3);
        for keys in [["alpha", "beta"], ["beta", "gamma"], ["gamma", "delta"]] {
            let mut raw: Vec<u32> = keys.iter().map(|k| DeltaIndex::intern(&mut b, k)).collect();
            b.insert_entity(&mut raw);
        }
        DeltaIndex::finish_batch(&mut b, &|_| true);
        b.record_candidate(EntityId(0), EntityId(1));
        let state = b.router_state();
        let shards: Vec<StreamingIndex> = (0..b.num_shards())
            .map(|i| {
                let mut w = er_persist::Writer::new();
                er_persist::Encode::encode(b.shard(i), &mut w);
                let bytes = w.into_bytes();
                let mut r = er_persist::Reader::new(&bytes);
                <StreamingIndex as er_persist::Decode>::decode(&mut r).unwrap()
            })
            .collect();
        let rebuilt = ShardedIndex::from_parts(shards, state).unwrap();
        assert_eq!(rebuilt.num_keys(), b.num_keys());
        assert_eq!(rebuilt.entity_rows, b.entity_rows);
        assert_eq!(rebuilt.entity_candidates, b.entity_candidates);
        assert_eq!(
            DeltaIndex::view(&rebuilt, 1).to_block_collection().blocks,
            DeltaIndex::view(&b, 1).to_block_collection().blocks
        );
    }

    #[test]
    fn from_parts_rejects_mismatched_router() {
        let mut b = sharded(2);
        let mut raw = vec![DeltaIndex::intern(&mut b, "only")];
        b.insert_entity(&mut raw);
        DeltaIndex::finish_batch(&mut b, &|_| true);
        let mut state = b.router_state();
        state.entity_candidates.push(7);
        let shards = vec![roundtrip(b.shard(0)), roundtrip(b.shard(1))];
        assert!(ShardedIndex::from_parts(shards, state).is_err());
    }

    fn roundtrip(index: &StreamingIndex) -> StreamingIndex {
        let mut w = er_persist::Writer::new();
        er_persist::Encode::encode(index, &mut w);
        let bytes = w.into_bytes();
        let mut r = er_persist::Reader::new(&bytes);
        <StreamingIndex as er_persist::Decode>::decode(&mut r).unwrap()
    }
}
