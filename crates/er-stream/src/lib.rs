//! Incremental (streaming) meta-blocking over the CSR block engine.
//!
//! Every other crate in this workspace is batch-oriented: a new entity
//! forces a full rebuild of blocks, statistics, candidates and scores.  This
//! crate adds the missing subsystem for live corpora — catalog updates,
//! progressive ER query streams — by maintaining the blocking state as a
//! **mutation log** over a compacted baseline and emitting, per batch, only
//! the *delta*: candidate additions with feature vectors and classifier
//! probabilities, retractions of pairs that lost their support, and
//! re-scored survivors of profile updates:
//!
//! * [`StreamingIndex`] — interned key dictionary (reusing the `er_core`
//!   hashing), per-key posting deltas **and tombstones** layered over a
//!   compacted [`er_blocking::CsrBlockCollection`] baseline, exact
//!   decremental block statistics, a liveness journal that generalises the
//!   insert-only size-cap retraction scan to every flip direction, and
//!   incremental LCP counts;
//! * [`StreamingMetaBlocker`] — the pipeline: `ingest` new profiles,
//!   `remove` entities (ids retired, postings tombstoned) or `update` them
//!   in place (re-keyed via a posting diff), gather delta pairs via scoped
//!   scoreboard passes, score them through the shared
//!   [`er_features::write_features_from`] writer and an attached
//!   [`er_learn::ProbabilisticClassifier`];
//! * [`DeltaBatch`] — the per-batch emission (additions, retractions,
//!   re-scored survivors, touched keys);
//! * [`StreamingMetaBlocker::compact`] — ends the epoch by folding the
//!   deltas into a fresh baseline CSR — physically dropping tombstoned
//!   postings — that is **bit-identical** to a one-shot
//!   [`er_blocking::build_blocks`] over the surviving corpus, for any
//!   interleaving of insert/remove/update batches and any thread count
//!   (property tested in `tests/equivalence.rs` and `tests/mutation.rs`).
//!
//! Under pure insertions no candidate pair between pre-existing entities can
//! appear (both key sets are fixed), so every delta pair has at least one
//! endpoint in the batch and per-batch cost scales with the batch, not the
//! corpus.  Removals and updates break monotonicity in both directions: a
//! block can lose the live set (retracting the pairs it alone supported) or
//! re-enter it after shrinking back under a scheme's size cap (reviving
//! them) — both transitions are detected exactly from the per-batch
//! liveness journal and travel in [`DeltaBatch::retractions`] and
//! [`DeltaBatch::additions`].

pub mod blocker;
pub mod delta;
pub mod index;
mod obs;
pub mod persist;
pub mod shard;

pub use blocker::{
    dataset_prefix, surviving_dataset, DeltaBatch, StreamingConfig, StreamingMetaBlocker,
};
pub use delta::{BlockIndex, DeltaIndex};
pub use index::{BatchEffects, Members, PartnerBoard, StreamingIndex};
pub use persist::{DurableMetaBlocker, MutationRecord};
pub use shard::{shard_of_key, ShardRouterState, ShardedIndex};
