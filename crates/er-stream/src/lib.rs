//! Incremental (streaming) meta-blocking over the CSR block engine.
//!
//! Every other crate in this workspace is batch-oriented: a new entity
//! forces a full rebuild of blocks, statistics, candidates and scores.  This
//! crate adds the missing subsystem for live corpora — catalog updates,
//! progressive ER query streams — by maintaining the blocking state as a
//! **mutable index** and emitting, per ingested batch, only the *delta*
//! candidate pairs with their feature vectors and classifier probabilities:
//!
//! * [`StreamingIndex`] — interned key dictionary (reusing the `er_core`
//!   hashing), per-key posting deltas layered over a compacted
//!   [`er_blocking::CsrBlockCollection`] baseline, in-place block statistics
//!   and incremental LCP counts;
//! * [`StreamingMetaBlocker`] — the pipeline: tokenize a batch through any
//!   [`er_blocking::KeyGenerator`] scheme, update the index, gather delta
//!   pairs via a scoped scoreboard pass, score them through the shared
//!   [`er_features::write_features_from`] writer and an attached
//!   [`er_learn::ProbabilisticClassifier`];
//! * [`DeltaBatch`] — the per-batch emission (pairs, features,
//!   probabilities, cap retractions);
//! * [`StreamingMetaBlocker::compact`] — ends the epoch by folding the
//!   deltas into a fresh baseline CSR that is **bit-identical** to a
//!   one-shot [`er_blocking::build_blocks`] over all ingested entities, for
//!   any split of the input into batches and any thread count (property
//!   tested in `tests/equivalence.rs`).
//!
//! Under pure insertions no candidate pair between pre-existing entities can
//! appear (both key sets are fixed), so every delta pair has at least one
//! endpoint in the batch and per-batch cost scales with the batch, not the
//! corpus.  The one exception to monotonicity is a size-capped scheme
//! (Suffix Arrays): a block crossing the cap can orphan previously emitted
//! pairs, which are reported in [`DeltaBatch::retracted`].

pub mod blocker;
pub mod index;

pub use blocker::{dataset_prefix, DeltaBatch, StreamingConfig, StreamingMetaBlocker};
pub use index::{PartnerBoard, StreamingIndex};
