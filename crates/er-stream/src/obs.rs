//! er-obs metric handles for the streaming CRUD path, resolved once per
//! process.  Everything is recorded once per mutation batch (in
//! [`StreamingMetaBlocker::emit`](crate::StreamingMetaBlocker) and
//! `compact`), never per pair.

use std::sync::OnceLock;

use er_obs::{Counter, Histogram};

pub(crate) struct StreamObs {
    /// Ingest batches applied.
    pub(crate) ingest_batches: &'static Counter,
    /// Remove batches applied.
    pub(crate) remove_batches: &'static Counter,
    /// Update batches applied.
    pub(crate) update_batches: &'static Counter,
    /// Entities ingested.
    pub(crate) entities_ingested: &'static Counter,
    /// Entities removed.
    pub(crate) entities_removed: &'static Counter,
    /// Entities updated.
    pub(crate) entities_updated: &'static Counter,
    /// Pairs newly emitted by delta batches.
    pub(crate) delta_additions: &'static Counter,
    /// Pairs retracted by delta batches.
    pub(crate) delta_retractions: &'static Counter,
    /// Previously retracted pairs revived by delta batches.
    pub(crate) delta_revivals: &'static Counter,
    /// Surviving pairs re-scored by delta batches.
    pub(crate) delta_rescored: &'static Counter,
    /// Delta-batch size distribution (additions + retractions per batch).
    pub(crate) delta_pairs: &'static Histogram,
    /// Compactions folded into a fresh baseline.
    pub(crate) compactions: &'static Counter,
    /// Compaction duration, nanoseconds.
    pub(crate) compaction_ns: &'static Histogram,
}

pub(crate) fn obs() -> &'static StreamObs {
    static OBS: OnceLock<StreamObs> = OnceLock::new();
    OBS.get_or_init(|| StreamObs {
        ingest_batches: er_obs::counter(
            "streaming_ingest_batches_total",
            "Ingest batches applied to the streaming blocker",
        ),
        remove_batches: er_obs::counter(
            "streaming_remove_batches_total",
            "Remove batches applied to the streaming blocker",
        ),
        update_batches: er_obs::counter(
            "streaming_update_batches_total",
            "Update batches applied to the streaming blocker",
        ),
        entities_ingested: er_obs::counter(
            "streaming_entities_ingested_total",
            "Entities ingested into the streaming blocker",
        ),
        entities_removed: er_obs::counter(
            "streaming_entities_removed_total",
            "Entities removed from the streaming blocker",
        ),
        entities_updated: er_obs::counter(
            "streaming_entities_updated_total",
            "Entities updated in place in the streaming blocker",
        ),
        delta_additions: er_obs::counter(
            "streaming_delta_additions_total",
            "Candidate pairs newly emitted by delta batches",
        ),
        delta_retractions: er_obs::counter(
            "streaming_delta_retractions_total",
            "Candidate pairs retracted by delta batches",
        ),
        delta_revivals: er_obs::counter(
            "streaming_delta_revivals_total",
            "Previously retracted pairs revived by delta batches",
        ),
        delta_rescored: er_obs::counter(
            "streaming_delta_rescored_total",
            "Surviving pairs re-scored by delta batches",
        ),
        delta_pairs: er_obs::histogram(
            "streaming_delta_pairs",
            "Delta-batch size distribution: additions + retractions per batch",
        ),
        compactions: er_obs::counter(
            "streaming_compactions_total",
            "Posting-delta compactions folded into a fresh baseline",
        ),
        compaction_ns: er_obs::histogram(
            "streaming_compaction_ns",
            "Compaction duration, nanoseconds",
        ),
    })
}
