//! The streaming meta-blocking pipeline: ingest entity batches, emit delta
//! candidate pairs with feature vectors and classifier probabilities.

use er_blocking::{CsrBlockCollection, KeyGenerator, KeyScratch};
use er_core::{Dataset, DatasetKind, EntityId, EntityProfile, FxHashMap, GroundTruth};
use er_features::{write_features_from, EntityAggregates, FeatureSet, PairCooccurrence};
use er_learn::ProbabilisticClassifier;

use crate::index::{PartnerBoard, StreamingIndex};

/// Configuration of a [`StreamingMetaBlocker`].
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// Name recorded on every emitted block collection.
    pub dataset_name: String,
    /// Clean-Clean or Dirty ER.
    pub kind: DatasetKind,
    /// Fixed E1/E2 boundary of the entity id space (Clean-Clean only):
    /// ingested entities with an id below `split` belong to E1.  Ignored for
    /// Dirty ER, where the boundary is always the current corpus size.
    pub split: usize,
    /// The weighting schemes forming each delta pair's feature vector.
    pub feature_set: FeatureSet,
    /// Worker threads for partner gathering and compaction.  Deterministic:
    /// the thread count never changes any output.
    pub threads: usize,
}

impl StreamingConfig {
    /// A configuration matching a dataset's shape (name, kind, split), with
    /// the paper's BLAST-optimal feature set and the default thread count.
    pub fn for_dataset(dataset: &Dataset) -> Self {
        StreamingConfig {
            dataset_name: dataset.name.clone(),
            kind: dataset.kind,
            split: dataset.split,
            feature_set: FeatureSet::blast_optimal(),
            threads: er_core::available_threads(),
        }
    }
}

/// The incremental output of one [`StreamingMetaBlocker::ingest`] call.
///
/// `pairs[i]`'s feature vector is `features[i * width..(i + 1) * width]`
/// with `width = feature_set.vector_len()`; `probabilities[i]` is its
/// classifier probability when a model is attached (empty otherwise).
/// Pairs are grouped by their newly ingested (larger) endpoint in ascending
/// id order, partners ascending within each group.
#[derive(Debug, Clone)]
pub struct DeltaBatch {
    /// The compaction epoch the batch was ingested in.
    pub epoch: u64,
    /// Id of the first entity of the batch.
    pub first_id: EntityId,
    /// Number of entities ingested by this call.
    pub num_ingested: usize,
    /// Width of each feature row (`feature_set.vector_len()`).
    pub feature_width: usize,
    /// The new candidate pairs, smaller entity first.
    pub pairs: Vec<(EntityId, EntityId)>,
    /// Row-major feature matrix of the new pairs.
    pub features: Vec<f64>,
    /// Classifier probability per pair (empty when no model is attached).
    pub probabilities: Vec<f64>,
    /// Previously emitted pairs that ceased to be candidates because a
    /// block crossed the scheme's size cap during this batch.
    pub retracted: Vec<(EntityId, EntityId)>,
}

impl DeltaBatch {
    /// Number of new candidate pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if the batch produced no new candidate pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The feature vector of the `i`-th pair.
    pub fn feature_row(&self, i: usize) -> &[f64] {
        &self.features[i * self.feature_width..(i + 1) * self.feature_width]
    }
}

/// A mutable meta-blocking pipeline over a growing corpus.
///
/// Entities are ingested in batches and assigned sequential ids; each batch
/// returns only the *delta* candidate pairs (every pair has at least one
/// endpoint in the batch — under insertions no pair between pre-existing
/// entities can appear), scored against the end-of-batch corpus state.
/// [`StreamingMetaBlocker::compact`] folds the accumulated deltas into a
/// fresh baseline CSR whose block collection is bit-identical to a one-shot
/// [`er_blocking::build_blocks`] over all ingested entities.
///
/// Per-batch delta emission is a *progressive* signal: with a size-capped
/// scheme (Suffix Arrays) a pair may be emitted while its only shared block
/// is still under the cap and retracted later when the block crosses it —
/// the retraction travels in a subsequent [`DeltaBatch::retracted`] list,
/// and the post-compact state is always exact.
pub struct StreamingMetaBlocker<G: KeyGenerator> {
    generator: G,
    index: StreamingIndex,
    feature_set: FeatureSet,
    threads: usize,
    model: Option<Box<dyn ProbabilisticClassifier>>,
}

impl<G: KeyGenerator> StreamingMetaBlocker<G> {
    /// Creates an empty streaming blocker for the given scheme.
    pub fn new(config: StreamingConfig, generator: G) -> Self {
        let cap = generator.max_block_size().unwrap_or(usize::MAX);
        StreamingMetaBlocker {
            index: StreamingIndex::new(config.dataset_name, config.kind, config.split, cap),
            generator,
            feature_set: config.feature_set,
            threads: config.threads.max(1),
            model: None,
        }
    }

    /// Attaches the classifier whose probabilities every delta pair is
    /// scored with.
    pub fn with_model(mut self, model: Box<dyn ProbabilisticClassifier>) -> Self {
        self.model = Some(model);
        self
    }

    /// The underlying mutable index.
    pub fn index(&self) -> &StreamingIndex {
        &self.index
    }

    /// Number of entities ingested so far.
    pub fn num_entities(&self) -> usize {
        self.index.num_entities()
    }

    /// The feature set delta pairs are scored with.
    pub fn feature_set(&self) -> FeatureSet {
        self.feature_set
    }

    /// Ingests one batch of new entity profiles (ids assigned sequentially
    /// from the current corpus size) and returns the delta candidate pairs
    /// with their feature vectors and, when a model is attached, their
    /// classifier probabilities.
    ///
    /// Cost scales with the batch: key emission and posting updates touch
    /// only the batch's keys; partner gathering walks only the blocks of the
    /// new entities; feature tables are recomputed only for entities that
    /// appear in a delta pair.  Nothing re-reads the rest of the corpus.
    pub fn ingest(&mut self, profiles: &[EntityProfile]) -> DeltaBatch {
        self.ingest_impl(profiles, true)
    }

    /// [`StreamingMetaBlocker::ingest`] without the feature/probability
    /// phase: the index, block statistics and candidate (LCP) counters
    /// update exactly as usual, but the returned batch carries empty
    /// `features`/`probabilities`.
    ///
    /// Use this to seed the index from a corpus whose candidate pairs were
    /// already scored by a batch pass (see
    /// `meta_blocking::StreamingPipeline::bootstrap`) — re-deriving them
    /// here would only repeat that work.
    pub fn ingest_unscored(&mut self, profiles: &[EntityProfile]) -> DeltaBatch {
        self.ingest_impl(profiles, false)
    }

    fn ingest_impl(&mut self, profiles: &[EntityProfile], score: bool) -> DeltaBatch {
        let batch_start = self.index.num_entities();
        let first_id = EntityId(batch_start as u32);
        let mut retracted: Vec<(EntityId, EntityId)> = Vec::new();

        // Phase A (sequential): tokenize, intern, update postings and block
        // statistics in place.
        {
            let index = &mut self.index;
            let generator = &self.generator;
            let mut case_scratch = String::new();
            let mut key_scratch = KeyScratch::default();
            let mut raw_keys: Vec<u32> = Vec::new();
            for profile in profiles {
                raw_keys.clear();
                for attribute in &profile.attributes {
                    er_core::tokenize::for_each_token(
                        &attribute.value,
                        &mut case_scratch,
                        |token| {
                            generator.for_each_key(token, &mut key_scratch, &mut |key| {
                                raw_keys.push(index.intern(key));
                            });
                        },
                    );
                }
                index.insert_entity(&mut raw_keys, batch_start, &mut retracted);
            }
        }

        // Phase B (parallel): per new entity, gather the smaller comparable
        // partners sharing a live block, with their co-occurrence aggregates
        // (the scoped scoreboard pass).  Ranges are reassembled in order, so
        // the output is deterministic for any thread count.
        let index = &self.index;
        let threads = self.threads;
        let num_tasks = if threads <= 1 { 1 } else { threads * 4 };
        /// One new entity with its scored partners, as produced by phase B.
        type EntityPartners = (EntityId, Vec<(EntityId, PairCooccurrence)>);
        let groups: Vec<Vec<EntityPartners>> =
            er_core::map_ranges_parallel(profiles.len(), threads, num_tasks, |range| {
                let mut board = PartnerBoard::default();
                range
                    .map(|i| {
                        let e = EntityId((batch_start + i) as u32);
                        (e, index.collect_delta_pairs(e, &mut board))
                    })
                    .collect()
            });

        // Phase C (sequential): register the new pairs (LCP counters first —
        // features read the end-of-batch counts), then compute the per-entity
        // aggregate tables for exactly the affected entities.
        let mut pairs: Vec<(EntityId, EntityId)> = Vec::new();
        let mut cooccurrences: Vec<PairCooccurrence> = Vec::new();
        for group in &groups {
            for (e, partners) in group {
                for (p, agg) in partners {
                    self.index.record_candidate(*p, *e);
                    pairs.push((*p, *e));
                    cooccurrences.push(*agg);
                }
            }
        }
        let width = self.feature_set.vector_len();
        let mut features = Vec::new();
        let mut probabilities = Vec::new();
        if score {
            let mut tables: FxHashMap<u32, EntityAggregates> = FxHashMap::default();
            for &(p, e) in &pairs {
                let index = &self.index;
                tables
                    .entry(p.0)
                    .or_insert_with(|| index.entity_aggregates(p));
                tables
                    .entry(e.0)
                    .or_insert_with(|| index.entity_aggregates(e));
            }

            // Phase D: fused feature rows (and probabilities when a model is
            // attached) through the shared per-pair writer.
            features = vec![0.0f64; pairs.len() * width];
            for (i, (&(p, e), agg)) in pairs.iter().zip(&cooccurrences).enumerate() {
                write_features_from(
                    &tables[&p.0],
                    &tables[&e.0],
                    agg,
                    self.feature_set,
                    &mut features[i * width..(i + 1) * width],
                );
            }
            if let Some(model) = &self.model {
                probabilities = features
                    .chunks(width.max(1))
                    .take(pairs.len())
                    .map(|row| model.probability(row).clamp(0.0, 1.0))
                    .collect();
            }
        }

        DeltaBatch {
            epoch: self.index.epoch(),
            first_id,
            num_ingested: profiles.len(),
            feature_width: width,
            pairs,
            features,
            probabilities,
            retracted,
        }
    }

    /// The batch view of the current corpus (no state change): bit-identical
    /// to [`er_blocking::build_blocks`] over every ingested entity.
    pub fn view(&self) -> CsrBlockCollection {
        self.index.view(self.threads)
    }

    /// Ends the epoch: folds the accumulated posting deltas into a fresh
    /// baseline CSR and returns the compacted batch view.
    pub fn compact(&mut self) -> CsrBlockCollection {
        self.index.compact(self.threads)
    }
}

/// The first `n` entities of a dataset as a standalone dataset: the corpus a
/// streaming blocker holds after ingesting the profile sequence up to `n`.
/// Ground-truth pairs with an endpoint beyond the prefix are dropped; the
/// Clean-Clean split is clamped to the prefix length.
pub fn dataset_prefix(dataset: &Dataset, n: usize) -> Dataset {
    let n = n.min(dataset.num_entities());
    Dataset {
        name: dataset.name.clone(),
        kind: dataset.kind,
        profiles: dataset.profiles[..n].to_vec(),
        split: dataset.split.min(n),
        ground_truth: GroundTruth::from_pairs(
            dataset
                .ground_truth
                .pairs()
                .iter()
                .copied()
                .filter(|&(a, b)| a.index() < n && b.index() < n),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_blocking::{build_blocks, TokenKeys};
    use er_core::EntityCollection;

    fn profile(id: &str, value: &str) -> EntityProfile {
        EntityProfile::new(id).with_attribute("name", value)
    }

    fn dirty_dataset() -> Dataset {
        let profiles = vec![
            profile("0", "apple iphone ten"),
            profile("1", "apple iphone x"),
            profile("2", "samsung galaxy phone"),
            profile("3", "galaxy phone samsung"),
            profile("4", "nokia brick"),
        ];
        let gt =
            GroundTruth::from_pairs(vec![(EntityId(0), EntityId(1)), (EntityId(2), EntityId(3))]);
        Dataset::dirty("d", EntityCollection::new("d", profiles), gt).unwrap()
    }

    fn config(dataset: &Dataset) -> StreamingConfig {
        StreamingConfig {
            feature_set: FeatureSet::all_schemes(),
            threads: 1,
            ..StreamingConfig::for_dataset(dataset)
        }
    }

    #[test]
    fn ingest_emits_each_pair_exactly_once() {
        let ds = dirty_dataset();
        let mut blocker = StreamingMetaBlocker::new(config(&ds), TokenKeys);
        let mut emitted: Vec<(EntityId, EntityId)> = Vec::new();
        for profile in &ds.profiles {
            let batch = blocker.ingest(std::slice::from_ref(profile));
            assert!(batch.retracted.is_empty());
            emitted.extend_from_slice(&batch.pairs);
        }
        let mut sorted = emitted.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), emitted.len(), "duplicate emission");
        // The union must equal the batch candidate set.
        let csr = blocker.compact();
        let stats = er_blocking::BlockStats::from_csr(&csr);
        let batch_pairs = er_blocking::CandidatePairs::from_stats(&stats, 1);
        assert_eq!(sorted.as_slice(), batch_pairs.pairs());
    }

    #[test]
    fn compact_matches_batch_build() {
        let ds = dirty_dataset();
        let mut blocker = StreamingMetaBlocker::new(config(&ds), TokenKeys);
        blocker.ingest(&ds.profiles[..2]);
        blocker.ingest(&ds.profiles[2..]);
        let streamed = blocker.compact();
        let batch = build_blocks(&ds, &TokenKeys, 1);
        assert_eq!(
            streamed.to_block_collection().blocks,
            batch.to_block_collection().blocks
        );
        assert_eq!(streamed.num_entities, batch.num_entities);
        assert_eq!(streamed.split, batch.split);
    }

    #[test]
    fn delta_features_match_a_batch_rebuild_of_the_current_corpus() {
        let ds = dirty_dataset();
        let set = FeatureSet::all_schemes();
        let mut blocker = StreamingMetaBlocker::new(config(&ds), TokenKeys);
        for n in 1..=ds.num_entities() {
            let batch = blocker.ingest(std::slice::from_ref(&ds.profiles[n - 1]));
            // Rebuild the prefix corpus from scratch and compare rows.
            let prefix = dataset_prefix(&ds, n);
            let csr = build_blocks(&prefix, &TokenKeys, 1);
            if csr.is_empty() {
                assert!(batch.is_empty());
                continue;
            }
            let stats = er_blocking::BlockStats::from_csr(&csr);
            let candidates = er_blocking::CandidatePairs::from_stats(&stats, 1);
            let context = er_features::FeatureContext::new(&stats, &candidates);
            let mut expected = vec![0.0f64; set.vector_len()];
            for (i, &(a, b)) in batch.pairs.iter().enumerate() {
                context.write_pair_features(a, b, set, &mut expected);
                assert_eq!(batch.feature_row(i), expected.as_slice(), "pair ({a},{b})");
            }
        }
    }

    #[test]
    fn unscored_ingest_updates_the_index_exactly_like_scored_ingest() {
        let ds = dirty_dataset();
        let mut scored = StreamingMetaBlocker::new(config(&ds), TokenKeys);
        let mut unscored = StreamingMetaBlocker::new(config(&ds), TokenKeys);
        let a = scored.ingest(&ds.profiles);
        let b = unscored.ingest_unscored(&ds.profiles);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.retracted, b.retracted);
        assert!(b.features.is_empty());
        assert!(b.probabilities.is_empty());
        for e in 0..ds.num_entities() {
            let entity = EntityId(e as u32);
            assert_eq!(
                scored.index().candidates_of(entity),
                unscored.index().candidates_of(entity)
            );
        }
        assert_eq!(
            scored.compact().to_block_collection().blocks,
            unscored.compact().to_block_collection().blocks
        );
    }

    #[test]
    fn probabilities_come_from_the_attached_model() {
        struct Half;
        impl ProbabilisticClassifier for Half {
            fn probability(&self, features: &[f64]) -> f64 {
                0.25 + features[0].min(0.5)
            }
        }
        let ds = dirty_dataset();
        let mut blocker =
            StreamingMetaBlocker::new(config(&ds), TokenKeys).with_model(Box::new(Half));
        let batch = blocker.ingest(&ds.profiles);
        assert_eq!(batch.probabilities.len(), batch.len());
        for (i, &p) in batch.probabilities.iter().enumerate() {
            assert!((p - (0.25 + batch.feature_row(i)[0].min(0.5))).abs() < 1e-15);
        }
    }

    #[test]
    fn dataset_prefix_clamps_split_and_truth() {
        let e1 = EntityCollection::new("a", vec![profile("a0", "x y"), profile("a1", "y z")]);
        let e2 = EntityCollection::new("b", vec![profile("b0", "x y"), profile("b1", "z q")]);
        let gt =
            GroundTruth::from_pairs(vec![(EntityId(0), EntityId(2)), (EntityId(1), EntityId(3))]);
        let ds = Dataset::clean_clean("cc", e1, e2, gt).unwrap();
        let prefix = dataset_prefix(&ds, 3);
        assert_eq!(prefix.num_entities(), 3);
        assert_eq!(prefix.split, 2);
        assert_eq!(prefix.ground_truth.pairs(), &[(EntityId(0), EntityId(2))]);
        let tiny = dataset_prefix(&ds, 1);
        assert_eq!(tiny.split, 1);
        assert!(tiny.ground_truth.is_empty());
    }
}
