//! The streaming meta-blocking pipeline: ingest, remove and update entity
//! batches; emit delta candidate additions, retractions and re-scored
//! survivors with feature vectors and classifier probabilities.

use er_blocking::{CsrBlockCollection, KeyGenerator, KeyScratch};
use er_core::{Dataset, DatasetKind, EntityId, EntityProfile, FxHashMap, FxHashSet, GroundTruth};
use er_features::{
    write_features_from, EntityAggregates, FeatureSet, PairCooccurrence, ScoreboardConfig,
};
use er_learn::ProbabilisticClassifier;

use crate::delta::DeltaIndex;
use crate::index::{PartnerBoard, StreamingIndex};

/// Configuration of a [`StreamingMetaBlocker`].
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// Name recorded on every emitted block collection.
    pub dataset_name: String,
    /// Clean-Clean or Dirty ER.
    pub kind: DatasetKind,
    /// Fixed E1/E2 boundary of the entity id space (Clean-Clean only):
    /// ingested entities with an id below `split` belong to E1.  Ignored for
    /// Dirty ER, where the boundary is always the current corpus size.
    pub split: usize,
    /// The weighting schemes forming each delta pair's feature vector.
    pub feature_set: FeatureSet,
    /// Worker threads for partner gathering and compaction.  Deterministic:
    /// the thread count never changes any output.
    pub threads: usize,
    /// Scoreboard configuration for the per-batch delta partner pass (the
    /// same cache-blocked radix engine the batch feature pass runs on).
    /// Output is bit-identical for every configuration.
    pub scoreboard: ScoreboardConfig,
}

impl StreamingConfig {
    /// A configuration matching a dataset's shape (name, kind, split), with
    /// the paper's BLAST-optimal feature set and the default thread count.
    pub fn for_dataset(dataset: &Dataset) -> Self {
        StreamingConfig {
            dataset_name: dataset.name.clone(),
            kind: dataset.kind,
            split: dataset.split,
            feature_set: FeatureSet::blast_optimal(),
            threads: er_core::available_threads(),
            scoreboard: ScoreboardConfig::default(),
        }
    }
}

/// The incremental output of one [`StreamingMetaBlocker`] mutation batch
/// (ingest, remove or update).
///
/// Three channels describe how the candidate set moved:
///
/// * **additions** (`pairs`) — pairs that became candidates during the
///   batch; `pairs[i]`'s feature vector is
///   `features[i * width..(i + 1) * width]` with
///   `width = feature_set.vector_len()`, and `probabilities[i]` is its
///   classifier probability when a model is attached (empty otherwise);
/// * **retractions** (`retracted`) — previously emitted pairs that ceased
///   to be candidates (a block crossed the scheme's size cap, a removal or
///   re-keying update withdrew their support);
/// * **re-scored survivors** (`rescored_pairs`) — pairs that stayed
///   candidates through an update of one of their endpoints; their features
///   and probabilities are re-emitted against the end-of-batch state.
///
/// For ingest batches, additions are grouped by their newly ingested
/// (larger) endpoint in ascending id order, partners ascending within each
/// group, followed by any revived pairs in canonical order; for remove and
/// update batches all three channels are sorted canonically (smaller
/// entity first, pairs ascending).
#[derive(Debug, Clone)]
pub struct DeltaBatch {
    /// The compaction epoch the batch was applied in.
    pub epoch: u64,
    /// Id of the first entity ingested by this batch (the corpus size
    /// before the batch when nothing was ingested).
    pub first_id: EntityId,
    /// Number of entities ingested by this call.
    pub num_ingested: usize,
    /// Number of entities removed by this call.
    pub num_removed: usize,
    /// Number of entities re-keyed (updated) by this call.
    pub num_updated: usize,
    /// Width of each feature row (`feature_set.vector_len()`).
    pub feature_width: usize,
    /// The new candidate pairs, smaller entity first.
    pub pairs: Vec<(EntityId, EntityId)>,
    /// Row-major feature matrix of the new pairs.
    pub features: Vec<f64>,
    /// Classifier probability per new pair (empty when no model is
    /// attached).
    pub probabilities: Vec<f64>,
    /// Surviving pairs re-scored because an endpoint was updated.
    pub rescored_pairs: Vec<(EntityId, EntityId)>,
    /// Row-major feature matrix of the re-scored pairs.
    pub rescored_features: Vec<f64>,
    /// Classifier probability per re-scored pair (empty without a model).
    pub rescored_probabilities: Vec<f64>,
    /// Previously emitted pairs that ceased to be candidates during this
    /// batch.
    pub retracted: Vec<(EntityId, EntityId)>,
    /// Stream key ids whose postings or statistics changed during the
    /// batch, sorted ascending — the dirty set an incremental view needs.
    pub touched_keys: Vec<u32>,
    /// Ids of the entities removed or updated by this batch (ingested ids
    /// are derivable from `first_id`/`num_ingested`).
    pub mutated_entities: Vec<EntityId>,
}

impl DeltaBatch {
    /// Number of candidate-set changes carried by the batch: additions
    /// plus retractions (re-scored survivors are not candidate-set
    /// changes).
    pub fn len(&self) -> usize {
        self.pairs.len() + self.retracted.len()
    }

    /// True if the batch changed nothing about the candidate set.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty() && self.retracted.is_empty()
    }

    /// Number of new candidate pairs.
    pub fn num_additions(&self) -> usize {
        self.pairs.len()
    }

    /// Number of retracted pairs.
    pub fn num_retractions(&self) -> usize {
        self.retracted.len()
    }

    /// Number of re-scored surviving pairs.
    pub fn num_rescored(&self) -> usize {
        self.rescored_pairs.len()
    }

    /// The new candidate pairs, smaller entity first.
    pub fn additions(&self) -> &[(EntityId, EntityId)] {
        &self.pairs
    }

    /// Iterates the pairs retracted by this batch.
    pub fn retractions(&self) -> impl Iterator<Item = (EntityId, EntityId)> + '_ {
        self.retracted.iter().copied()
    }

    /// The surviving pairs whose features were re-emitted by this batch.
    pub fn rescored(&self) -> &[(EntityId, EntityId)] {
        &self.rescored_pairs
    }

    /// The feature vector of the `i`-th addition.
    pub fn feature_row(&self, i: usize) -> &[f64] {
        &self.features[i * self.feature_width..(i + 1) * self.feature_width]
    }

    /// The feature vector of the `i`-th re-scored survivor.
    pub fn rescored_feature_row(&self, i: usize) -> &[f64] {
        &self.rescored_features[i * self.feature_width..(i + 1) * self.feature_width]
    }

    /// Every entity this batch mutated: the ingested id range followed by
    /// the removed/updated ids.
    pub fn batch_entities(&self) -> impl Iterator<Item = EntityId> + '_ {
        let start = self.first_id.0;
        (start..start + self.num_ingested as u32)
            .map(EntityId)
            .chain(self.mutated_entities.iter().copied())
    }
}

/// A mutable meta-blocking pipeline over a churning corpus.
///
/// Entities are ingested in batches and assigned sequential ids; existing
/// entities can be removed (ids are retired, never reused) or updated
/// (re-keyed in place).  Every mutation batch returns only the *delta*:
/// candidate additions scored against the end-of-batch corpus state,
/// retractions of pairs that lost their support, and re-scored survivors of
/// updates.  [`StreamingMetaBlocker::compact`] folds the accumulated deltas
/// — tombstones included — into a fresh baseline CSR whose block collection
/// is bit-identical to a one-shot [`er_blocking::build_blocks`] over the
/// surviving corpus (deleted entities contribute nothing, exactly like
/// empty profiles in a batch build).
///
/// Per-batch delta emission is a *progressive* signal: a pair may be
/// emitted while its supporting blocks are live and retracted later when
/// they die (cap crossings, deletions), or revived again when a capped
/// block shrinks back — each transition travels in a subsequent
/// [`DeltaBatch`], and the post-compact state is always exact.
///
/// The blocker is generic over its [`DeltaIndex`] implementation — the
/// canonical single-shard [`StreamingIndex`] by default, or `er-shard`'s
/// hash-partitioned `ShardedIndex`.  *All* batch orchestration (phase
/// ordering, partner diffing, scoring, emission) lives here and is shared,
/// so output equivalence between index implementations reduces to the
/// primitive contract documented on [`crate::delta`].
pub struct StreamingMetaBlocker<G: KeyGenerator, I: DeltaIndex = StreamingIndex> {
    generator: G,
    index: I,
    feature_set: FeatureSet,
    threads: usize,
    scoreboard: ScoreboardConfig,
    model: Option<Box<dyn ProbabilisticClassifier>>,
}

/// One scored pair as accumulated by the mutation engine before emission.
type ScoredPair = ((EntityId, EntityId), PairCooccurrence);

impl<G: KeyGenerator> StreamingMetaBlocker<G> {
    /// Creates an empty streaming blocker for the given scheme.
    pub fn new(config: StreamingConfig, generator: G) -> Self {
        let cap = generator.max_block_size().unwrap_or(usize::MAX);
        StreamingMetaBlocker {
            index: StreamingIndex::new(config.dataset_name, config.kind, config.split, cap),
            generator,
            feature_set: config.feature_set,
            threads: config.threads.max(1),
            scoreboard: config.scoreboard,
            model: None,
        }
    }
}

impl<G: KeyGenerator, I: DeltaIndex> StreamingMetaBlocker<G, I> {
    /// Wraps an existing (typically empty) index implementation — the
    /// constructor sharded deployments use, where the index is built before
    /// the blocker.
    ///
    /// Fails with [`er_core::PersistError::Corrupt`] if the generator's
    /// block-size cap disagrees with the index's (they would describe
    /// different schemes).
    pub fn with_index(
        config: StreamingConfig,
        generator: G,
        index: I,
    ) -> er_core::PersistResult<Self> {
        let cap = generator.max_block_size().unwrap_or(usize::MAX);
        if cap != index.size_cap() {
            return Err(er_core::PersistError::Corrupt(format!(
                "index was built with block-size cap {}, generator uses {cap}",
                index.size_cap()
            )));
        }
        Ok(StreamingMetaBlocker {
            index,
            generator,
            feature_set: config.feature_set,
            threads: config.threads.max(1),
            scoreboard: config.scoreboard,
            model: None,
        })
    }

    /// Attaches the classifier whose probabilities every delta pair is
    /// scored with.
    pub fn with_model(mut self, model: Box<dyn ProbabilisticClassifier>) -> Self {
        self.model = Some(model);
        self
    }

    /// Rebuilds a blocker around a recovered index — the constructor the
    /// persistence layer uses after decoding a snapshot.  No model is
    /// attached; re-attach one with [`StreamingMetaBlocker::with_model`]
    /// before scoring new batches.
    ///
    /// Fails with [`er_core::PersistError::Corrupt`] if the supplied
    /// generator's block-size cap disagrees with the cap the index was
    /// built under (the snapshot would then describe a different scheme).
    pub fn from_recovered(
        index: I,
        generator: G,
        feature_set: FeatureSet,
        threads: usize,
    ) -> er_core::PersistResult<Self> {
        let cap = generator.max_block_size().unwrap_or(usize::MAX);
        if cap != index.size_cap() {
            return Err(er_core::PersistError::Corrupt(format!(
                "recovered index was built with block-size cap {}, generator uses {cap}",
                index.size_cap()
            )));
        }
        Ok(StreamingMetaBlocker {
            index,
            generator,
            feature_set,
            threads: threads.max(1),
            scoreboard: ScoreboardConfig::default(),
            model: None,
        })
    }

    /// The underlying mutable index.
    pub fn index(&self) -> &I {
        &self.index
    }

    /// Number of entity ids ever assigned (removed ids stay retired).
    pub fn num_entities(&self) -> usize {
        self.index.num_entities()
    }

    /// Number of entities currently alive.
    pub fn num_alive(&self) -> usize {
        self.index.num_alive()
    }

    /// The feature set delta pairs are scored with.
    pub fn feature_set(&self) -> FeatureSet {
        self.feature_set
    }

    /// Ingests one batch of new entity profiles (ids assigned sequentially
    /// from the current corpus size) and returns the delta candidate pairs
    /// with their feature vectors and, when a model is attached, their
    /// classifier probabilities.
    ///
    /// Cost scales with the batch: key emission and posting updates touch
    /// only the batch's keys; partner gathering walks only the blocks of the
    /// new entities; feature tables are recomputed only for entities that
    /// appear in a delta pair.  Nothing re-reads the rest of the corpus.
    pub fn ingest(&mut self, profiles: &[EntityProfile]) -> DeltaBatch {
        self.ingest_impl(profiles, true)
    }

    /// [`StreamingMetaBlocker::ingest`] without the feature/probability
    /// phase: the index, block statistics and candidate (LCP) counters
    /// update exactly as usual, but the returned batch carries empty
    /// `features`/`probabilities`.
    ///
    /// Use this to seed the index from a corpus whose candidate pairs were
    /// already scored by a batch pass (see
    /// `meta_blocking::StreamingPipeline::bootstrap`) — re-deriving them
    /// here would only repeat that work.
    pub fn ingest_unscored(&mut self, profiles: &[EntityProfile]) -> DeltaBatch {
        self.ingest_impl(profiles, false)
    }

    /// Tokenizes one profile through the scheme and interns its raw keys
    /// into `raw_keys` (duplicates allowed; the index canonicalizes).
    fn intern_profile_keys(
        index: &mut I,
        generator: &G,
        profile: &EntityProfile,
        case_scratch: &mut String,
        key_scratch: &mut KeyScratch,
        raw_keys: &mut Vec<u32>,
    ) {
        raw_keys.clear();
        for attribute in &profile.attributes {
            er_core::tokenize::for_each_token(&attribute.value, case_scratch, |token| {
                generator.for_each_key(token, key_scratch, &mut |key| {
                    raw_keys.push(index.intern(key));
                });
            });
        }
    }

    pub(crate) fn ingest_impl(&mut self, profiles: &[EntityProfile], score: bool) -> DeltaBatch {
        let batch_start = self.index.num_entities();
        let first_id = EntityId(batch_start as u32);

        // Phase A (sequential): tokenize, intern, update postings and block
        // statistics in place (liveness flips land in the batch journal).
        {
            let index = &mut self.index;
            let generator = &self.generator;
            let mut case_scratch = String::new();
            let mut key_scratch = KeyScratch::default();
            let mut raw_keys: Vec<u32> = Vec::new();
            for profile in profiles {
                Self::intern_profile_keys(
                    index,
                    generator,
                    profile,
                    &mut case_scratch,
                    &mut key_scratch,
                    &mut raw_keys,
                );
                index.insert_entity(&mut raw_keys);
            }
        }

        // Close the batch journal: cap crossings among pre-batch pairs
        // become retractions (revivals are impossible under pure insertion
        // but the generic scan handles them).
        let effects = self.index.finish_batch(&|e| e.index() >= batch_start);

        // Phase B (parallel): per new entity, gather the smaller comparable
        // partners sharing a live block, with their co-occurrence aggregates
        // (the scoped scoreboard pass).  Ranges are reassembled in order, so
        // the output is deterministic for any thread count.
        let index = &self.index;
        let threads = self.threads;
        let scoreboard = &self.scoreboard;
        let num_tasks = if threads <= 1 { 1 } else { threads * 4 };
        /// One new entity with its scored partners, as produced by phase B.
        type EntityPartners = (EntityId, Vec<(EntityId, PairCooccurrence)>);
        let groups: Vec<Vec<EntityPartners>> =
            er_core::map_ranges_parallel(profiles.len(), threads, num_tasks, |range| {
                let mut board = PartnerBoard::with_config(scoreboard);
                range
                    .map(|i| {
                        let e = EntityId((batch_start + i) as u32);
                        (e, index.collect_delta_pairs(e, &mut board))
                    })
                    .collect()
            });

        // Phase C (sequential): register the new pairs (LCP counters first —
        // features read the end-of-batch counts), then score.
        let mut additions: Vec<ScoredPair> = Vec::new();
        for group in &groups {
            for (e, partners) in group {
                for (p, agg) in partners {
                    self.index.record_candidate(*p, *e);
                    additions.push(((*p, *e), *agg));
                }
            }
        }
        crate::obs::obs()
            .delta_revivals
            .add(effects.revived.len() as u64);
        for &(a, b) in &effects.revived {
            let agg = self.index.pair_cooccurrence(a, b);
            additions.push(((a, b), agg));
        }

        self.emit(
            additions,
            Vec::new(),
            effects.retracted,
            effects.touched_keys,
            profiles.len(),
            0,
            0,
            first_id,
            score,
        )
    }

    /// Panics unless every id names a distinct, currently alive entity —
    /// the precondition of [`StreamingMetaBlocker::remove`], checked
    /// without mutating anything.  The durable wrapper asserts this
    /// *before* the WAL append, so an invalid batch can never reach the
    /// log (a durably logged batch must replay cleanly on recovery).
    pub fn assert_remove_batch(&self, ids: &[EntityId]) {
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        for &e in ids {
            assert!(
                e.index() < self.index.num_entities(),
                "cannot remove unknown entity {e}"
            );
            assert!(self.index.is_alive(e), "cannot remove entity {e} twice");
            assert!(seen.insert(e.0), "duplicate ids in remove batch");
        }
    }

    /// Panics unless every id names a distinct, currently alive entity —
    /// the precondition of [`StreamingMetaBlocker::update`] (see
    /// [`StreamingMetaBlocker::assert_remove_batch`] for why the durable
    /// wrapper checks this before logging).
    pub fn assert_update_batch(&self, updates: &[(EntityId, EntityProfile)]) {
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        for &(e, _) in updates {
            assert!(
                e.index() < self.index.num_entities(),
                "cannot update unknown entity {e}"
            );
            assert!(self.index.is_alive(e), "cannot update removed entity {e}");
            assert!(seen.insert(e.0), "duplicate ids in update batch");
        }
    }

    /// Removes a batch of entities from the corpus.  Every candidate pair
    /// with a removed endpoint is retracted; blocks that leave the live set
    /// retract their orphaned pairs and blocks that re-enter it (a capped
    /// block shrinking back) revive theirs, scored against the end-of-batch
    /// state.  Ids are retired, never reused.
    ///
    /// Cost scales with the batch: only the removed entities' postings and
    /// the flipped blocks are touched.
    ///
    /// # Panics
    /// Panics if an id is unknown, already removed, or listed twice.
    pub fn remove(&mut self, ids: &[EntityId]) -> DeltaBatch {
        self.remove_impl(ids, true)
    }

    /// [`StreamingMetaBlocker::remove`] without the feature/probability
    /// phase — WAL replay applies logged removals with this (the index,
    /// statistics and LCP counters move exactly as in a scored run).
    pub fn remove_unscored(&mut self, ids: &[EntityId]) -> DeltaBatch {
        self.remove_impl(ids, false)
    }

    /// [`StreamingMetaBlocker::remove`] with the feature/probability phase
    /// optional — WAL replay drives this with `score: false` (the index,
    /// statistics and LCP counters move exactly as in a scored run).
    pub(crate) fn remove_impl(&mut self, ids: &[EntityId], score: bool) -> DeltaBatch {
        let first_id = EntityId(self.index.num_entities() as u32);
        let batch: FxHashSet<u32> = ids.iter().map(|e| e.0).collect();
        assert_eq!(batch.len(), ids.len(), "duplicate ids in remove batch");

        // Before-image (parallel, read-only): each removed entity's current
        // candidate partners.  Ranges are reassembled in order, so the
        // emission is deterministic for any thread count.
        let index = &self.index;
        let threads = self.threads;
        let num_tasks = if threads <= 1 { 1 } else { threads * 4 };
        let before: Vec<Vec<(EntityId, Vec<EntityId>)>> =
            er_core::map_ranges_parallel(ids.len(), threads, num_tasks, |range| {
                range
                    .map(|i| (ids[i], index.collect_partner_ids(ids[i])))
                    .collect()
            });

        // Mutate: tombstone every posting, retire the ids.
        for &e in ids {
            self.index.remove_entity(e);
        }
        let effects = self.index.finish_batch(&|e| batch.contains(&e.0));

        // Batch-side retractions: every pre-batch candidate pair with a
        // removed endpoint, each exactly once — a pair of two removed
        // entities shows up in both partner lists and is emitted from its
        // smaller endpoint's only.
        let mut retracted: Vec<(EntityId, EntityId)> = Vec::new();
        for group in &before {
            for (e, partners) in group {
                for &p in partners {
                    if batch.contains(&p.0) && p < *e {
                        continue;
                    }
                    let pair = if p < *e { (p, *e) } else { (*e, p) };
                    self.index.retract_candidate(pair.0, pair.1);
                    retracted.push(pair);
                }
            }
        }
        retracted.extend_from_slice(&effects.retracted);
        retracted.sort_unstable();

        // Revived pairs (a capped block shrinking back under its cap) are
        // fresh additions, scored against the end-of-batch state.
        crate::obs::obs()
            .delta_revivals
            .add(effects.revived.len() as u64);
        let additions: Vec<ScoredPair> = effects
            .revived
            .iter()
            .map(|&(a, b)| ((a, b), self.index.pair_cooccurrence(a, b)))
            .collect();

        let mut batch = self.emit(
            additions,
            Vec::new(),
            retracted,
            effects.touched_keys,
            0,
            ids.len(),
            0,
            first_id,
            score,
        );
        batch.mutated_entities = ids.to_vec();
        batch
    }

    /// Applies in-place profile updates: each entity keeps its id but its
    /// blocking keys are re-derived from the new profile.  Pairs that lose
    /// all support are retracted, pairs that gain support are added, and
    /// surviving pairs with an updated endpoint are re-scored — all against
    /// the end-of-batch state.
    ///
    /// # Panics
    /// Panics if an id is unknown, removed, or listed twice.
    pub fn update(&mut self, updates: &[(EntityId, EntityProfile)]) -> DeltaBatch {
        self.update_impl(updates, true)
    }

    /// [`StreamingMetaBlocker::update`] without the feature/probability
    /// phase — WAL replay applies logged updates with this.
    pub fn update_unscored(&mut self, updates: &[(EntityId, EntityProfile)]) -> DeltaBatch {
        self.update_impl(updates, false)
    }

    /// [`StreamingMetaBlocker::update`] with the feature/probability phase
    /// optional — WAL replay drives this with `score: false`.
    pub(crate) fn update_impl(
        &mut self,
        updates: &[(EntityId, EntityProfile)],
        score: bool,
    ) -> DeltaBatch {
        let first_id = EntityId(self.index.num_entities() as u32);
        let batch: FxHashSet<u32> = updates.iter().map(|(e, _)| e.0).collect();
        assert_eq!(batch.len(), updates.len(), "duplicate ids in update batch");
        let threads = self.threads;
        let num_tasks = if threads <= 1 { 1 } else { threads * 4 };

        // Before-image (parallel, read-only): candidate partners of every
        // updated entity, in update order.
        let index = &self.index;
        let before: Vec<Vec<EntityId>> =
            er_core::map_ranges_parallel(updates.len(), threads, num_tasks, |range| {
                range
                    .map(|i| index.collect_partner_ids(updates[i].0))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();

        // Mutate (sequential): tokenize the new profiles and re-key each
        // entity in place (departures tombstoned, arrivals added).
        {
            let index = &mut self.index;
            let generator = &self.generator;
            let mut case_scratch = String::new();
            let mut key_scratch = KeyScratch::default();
            let mut raw_keys: Vec<u32> = Vec::new();
            for (e, profile) in updates {
                Self::intern_profile_keys(
                    index,
                    generator,
                    profile,
                    &mut case_scratch,
                    &mut key_scratch,
                    &mut raw_keys,
                );
                index.replace_entity_keys(*e, &mut raw_keys);
            }
        }
        let effects = self.index.finish_batch(&|e| batch.contains(&e.0));

        // After-image (parallel): all partners with their co-occurrence
        // aggregates against the end-of-batch state.
        let index = &self.index;
        let scoreboard = &self.scoreboard;
        let after: Vec<Vec<(EntityId, PairCooccurrence)>> =
            er_core::map_ranges_parallel(updates.len(), threads, num_tasks, |range| {
                let mut board = PartnerBoard::with_config(scoreboard);
                range
                    .map(|i| index.collect_partners(updates[i].0, &mut board))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();

        // Diff each entity's partner sets.  A pair of two updated entities
        // is classified identically from both sides (the predicate is
        // symmetric) and processed from its smaller endpoint's diff only.
        let mut additions: Vec<ScoredPair> = Vec::new();
        let mut rescored: Vec<ScoredPair> = Vec::new();
        let mut retracted: Vec<(EntityId, EntityId)> = Vec::new();
        for (((e, _), before_e), after_e) in updates.iter().zip(&before).zip(&after) {
            let e = *e;
            let skip = |p: EntityId| batch.contains(&p.0) && p < e;
            let canonical = |p: EntityId| if p < e { (p, e) } else { (e, p) };
            let (mut i, mut j) = (0, 0);
            while i < before_e.len() || j < after_e.len() {
                if j == after_e.len() || (i < before_e.len() && before_e[i] < after_e[j].0) {
                    let p = before_e[i];
                    i += 1;
                    if skip(p) {
                        continue;
                    }
                    let pair = canonical(p);
                    self.index.retract_candidate(pair.0, pair.1);
                    retracted.push(pair);
                } else if i == before_e.len() || after_e[j].0 < before_e[i] {
                    let (p, agg) = after_e[j];
                    j += 1;
                    if skip(p) {
                        continue;
                    }
                    let pair = canonical(p);
                    self.index.record_candidate(pair.0, pair.1);
                    additions.push((pair, agg));
                } else {
                    let (p, agg) = after_e[j];
                    i += 1;
                    j += 1;
                    if skip(p) {
                        continue;
                    }
                    rescored.push((canonical(p), agg));
                }
            }
        }
        crate::obs::obs()
            .delta_revivals
            .add(effects.revived.len() as u64);
        for &(a, b) in &effects.revived {
            let agg = self.index.pair_cooccurrence(a, b);
            additions.push(((a, b), agg));
        }
        retracted.extend_from_slice(&effects.retracted);
        additions.sort_unstable_by_key(|&(pair, _)| pair);
        rescored.sort_unstable_by_key(|&(pair, _)| pair);
        retracted.sort_unstable();

        let mut batch = self.emit(
            additions,
            rescored,
            retracted,
            effects.touched_keys,
            0,
            0,
            updates.len(),
            first_id,
            score,
        );
        batch.mutated_entities = updates.iter().map(|&(e, _)| e).collect();
        batch
    }

    /// Assembles a [`DeltaBatch`], scoring additions and re-scored
    /// survivors when `score` is set and a batch produced any.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &mut self,
        additions: Vec<ScoredPair>,
        rescored: Vec<ScoredPair>,
        retracted: Vec<(EntityId, EntityId)>,
        touched_keys: Vec<u32>,
        num_ingested: usize,
        num_removed: usize,
        num_updated: usize,
        first_id: EntityId,
        score: bool,
    ) -> DeltaBatch {
        let width = self.feature_set.vector_len();
        let mut batch = DeltaBatch {
            epoch: self.index.epoch(),
            first_id,
            num_ingested,
            num_removed,
            num_updated,
            feature_width: width,
            pairs: additions.iter().map(|&(pair, _)| pair).collect(),
            features: Vec::new(),
            probabilities: Vec::new(),
            rescored_pairs: rescored.iter().map(|&(pair, _)| pair).collect(),
            rescored_features: Vec::new(),
            rescored_probabilities: Vec::new(),
            retracted,
            touched_keys,
            mutated_entities: Vec::new(),
        };
        // One registry touch per batch (never per pair), before the unscored
        // early-return so `*_unscored` batches are counted too.
        {
            let o = crate::obs::obs();
            if num_ingested > 0 {
                o.ingest_batches.inc();
                o.entities_ingested.add(num_ingested as u64);
            }
            if num_removed > 0 {
                o.remove_batches.inc();
                o.entities_removed.add(num_removed as u64);
            }
            if num_updated > 0 {
                o.update_batches.inc();
                o.entities_updated.add(num_updated as u64);
            }
            o.delta_additions.add(batch.pairs.len() as u64);
            o.delta_retractions.add(batch.retracted.len() as u64);
            o.delta_rescored.add(batch.rescored_pairs.len() as u64);
            o.delta_pairs.record(batch.len() as u64);
        }
        if !score {
            return batch;
        }

        // Per-entity aggregate tables for exactly the entities that appear
        // in a scored pair (end-of-batch state: every LCP adjustment has
        // been applied by now).
        let mut tables: FxHashMap<u32, EntityAggregates> = FxHashMap::default();
        {
            let index = &self.index;
            for &((a, b), _) in additions.iter().chain(&rescored) {
                tables
                    .entry(a.0)
                    .or_insert_with(|| index.entity_aggregates(a));
                tables
                    .entry(b.0)
                    .or_insert_with(|| index.entity_aggregates(b));
            }
        }
        let write_rows = |pairs: &[ScoredPair], features: &mut Vec<f64>| {
            features.resize(pairs.len() * width, 0.0);
            for (i, &((a, b), ref agg)) in pairs.iter().enumerate() {
                write_features_from(
                    &tables[&a.0],
                    &tables[&b.0],
                    agg,
                    self.feature_set,
                    &mut features[i * width..(i + 1) * width],
                );
            }
        };
        write_rows(&additions, &mut batch.features);
        write_rows(&rescored, &mut batch.rescored_features);
        if let Some(model) = &self.model {
            let score_rows = |features: &Vec<f64>, count: usize| -> Vec<f64> {
                features
                    .chunks(width.max(1))
                    .take(count)
                    .map(|row| model.probability(row).clamp(0.0, 1.0))
                    .collect()
            };
            batch.probabilities = score_rows(&batch.features, additions.len());
            batch.rescored_probabilities = score_rows(&batch.rescored_features, rescored.len());
        }
        batch
    }

    /// The batch view of the current corpus (no state change): bit-identical
    /// to [`er_blocking::build_blocks`] over the surviving entities.
    pub fn view(&self) -> CsrBlockCollection {
        self.index.view(self.threads)
    }

    /// Ends the epoch: folds the accumulated posting deltas into a fresh
    /// baseline CSR — physically dropping tombstoned postings — and returns
    /// the compacted batch view.
    pub fn compact(&mut self) -> CsrBlockCollection {
        let o = crate::obs::obs();
        o.compactions.inc();
        let _timer = o.compaction_ns.start_timer();
        self.index.compact(self.threads)
    }
}

/// The first `n` entities of a dataset as a standalone dataset: the corpus a
/// streaming blocker holds after ingesting the profile sequence up to `n`.
/// Ground-truth pairs with an endpoint beyond the prefix are dropped; the
/// Clean-Clean split is clamped to the prefix length.
pub fn dataset_prefix(dataset: &Dataset, n: usize) -> Dataset {
    let n = n.min(dataset.num_entities());
    Dataset {
        name: dataset.name.clone(),
        kind: dataset.kind,
        profiles: dataset.profiles[..n].to_vec(),
        split: dataset.split.min(n),
        ground_truth: GroundTruth::from_pairs(
            dataset
                .ground_truth
                .pairs()
                .iter()
                .copied()
                .filter(|&(a, b)| a.index() < n && b.index() < n),
        ),
    }
}

/// The batch-equivalent corpus of a mutated stream: the original dataset
/// with every updated profile substituted in place and every removed
/// entity's profile *blanked* (an empty profile emits no blocking keys, so
/// a batch build over the result is exactly what the streaming index
/// converges to — entity ids are never reused).  Ground-truth pairs with a
/// removed endpoint are dropped; the Clean-Clean split is unchanged.
pub fn surviving_dataset(
    dataset: &Dataset,
    removed: &[EntityId],
    updated: &[(EntityId, EntityProfile)],
) -> Dataset {
    let mut profiles = dataset.profiles.clone();
    for (e, profile) in updated {
        profiles[e.index()] = profile.clone();
    }
    let dead: FxHashSet<u32> = removed.iter().map(|e| e.0).collect();
    for &e in removed {
        profiles[e.index()] = EntityProfile::new(dataset.profiles[e.index()].external_id.clone());
    }
    Dataset {
        name: dataset.name.clone(),
        kind: dataset.kind,
        profiles,
        split: dataset.split,
        ground_truth: GroundTruth::from_pairs(
            dataset
                .ground_truth
                .pairs()
                .iter()
                .copied()
                .filter(|&(a, b)| !dead.contains(&a.0) && !dead.contains(&b.0)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_blocking::{build_blocks, SuffixKeys, TokenKeys};
    use er_core::EntityCollection;

    fn profile(id: &str, value: &str) -> EntityProfile {
        EntityProfile::new(id).with_attribute("name", value)
    }

    fn dirty_dataset() -> Dataset {
        let profiles = vec![
            profile("0", "apple iphone ten"),
            profile("1", "apple iphone x"),
            profile("2", "samsung galaxy phone"),
            profile("3", "galaxy phone samsung"),
            profile("4", "nokia brick"),
        ];
        let gt =
            GroundTruth::from_pairs(vec![(EntityId(0), EntityId(1)), (EntityId(2), EntityId(3))]);
        Dataset::dirty("d", EntityCollection::new("d", profiles), gt).unwrap()
    }

    fn config(dataset: &Dataset) -> StreamingConfig {
        StreamingConfig {
            feature_set: FeatureSet::all_schemes(),
            threads: 1,
            ..StreamingConfig::for_dataset(dataset)
        }
    }

    /// The raw candidate pairs of a batch build over `dataset`.
    fn batch_candidates(dataset: &Dataset) -> Vec<(EntityId, EntityId)> {
        let csr = build_blocks(dataset, &TokenKeys, 1);
        if csr.is_empty() {
            return Vec::new();
        }
        let stats = er_blocking::BlockStats::from_csr(&csr);
        er_blocking::CandidatePairs::from_stats(&stats, 1)
            .pairs()
            .to_vec()
    }

    #[test]
    fn ingest_emits_each_pair_exactly_once() {
        let ds = dirty_dataset();
        let mut blocker = StreamingMetaBlocker::new(config(&ds), TokenKeys);
        let mut emitted: Vec<(EntityId, EntityId)> = Vec::new();
        for profile in &ds.profiles {
            let batch = blocker.ingest(std::slice::from_ref(profile));
            assert_eq!(batch.num_retractions(), 0);
            emitted.extend_from_slice(batch.additions());
        }
        let mut sorted = emitted.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), emitted.len(), "duplicate emission");
        // The union must equal the batch candidate set.
        let csr = blocker.compact();
        let stats = er_blocking::BlockStats::from_csr(&csr);
        let batch_pairs = er_blocking::CandidatePairs::from_stats(&stats, 1);
        assert_eq!(sorted.as_slice(), batch_pairs.pairs());
    }

    #[test]
    fn compact_matches_batch_build() {
        let ds = dirty_dataset();
        let mut blocker = StreamingMetaBlocker::new(config(&ds), TokenKeys);
        blocker.ingest(&ds.profiles[..2]);
        blocker.ingest(&ds.profiles[2..]);
        let streamed = blocker.compact();
        let batch = build_blocks(&ds, &TokenKeys, 1);
        assert_eq!(
            streamed.to_block_collection().blocks,
            batch.to_block_collection().blocks
        );
        assert_eq!(streamed.num_entities, batch.num_entities);
        assert_eq!(streamed.split, batch.split);
    }

    #[test]
    fn delta_features_match_a_batch_rebuild_of_the_current_corpus() {
        let ds = dirty_dataset();
        let set = FeatureSet::all_schemes();
        let mut blocker = StreamingMetaBlocker::new(config(&ds), TokenKeys);
        for n in 1..=ds.num_entities() {
            let batch = blocker.ingest(std::slice::from_ref(&ds.profiles[n - 1]));
            // Rebuild the prefix corpus from scratch and compare rows.
            let prefix = dataset_prefix(&ds, n);
            let csr = build_blocks(&prefix, &TokenKeys, 1);
            if csr.is_empty() {
                assert_eq!(batch.num_additions(), 0);
                continue;
            }
            let stats = er_blocking::BlockStats::from_csr(&csr);
            let candidates = er_blocking::CandidatePairs::from_stats(&stats, 1);
            let context = er_features::FeatureContext::new(&stats, &candidates);
            let mut expected = vec![0.0f64; set.vector_len()];
            for (i, &(a, b)) in batch.additions().iter().enumerate() {
                context.write_pair_features(a, b, set, &mut expected);
                assert_eq!(batch.feature_row(i), expected.as_slice(), "pair ({a},{b})");
            }
        }
    }

    #[test]
    fn remove_retracts_every_pair_of_the_entity() {
        let ds = dirty_dataset();
        let mut blocker = StreamingMetaBlocker::new(config(&ds), TokenKeys);
        blocker.ingest(&ds.profiles);
        let victim = EntityId(0);
        let before = blocker.index().candidates_of(victim);
        assert!(before > 0);
        let delta = blocker.remove(&[victim]);
        assert_eq!(delta.num_removed, 1);
        assert_eq!(delta.num_additions(), 0);
        assert_eq!(delta.num_retractions(), before as usize);
        assert!(delta.retractions().all(|(a, b)| a == victim || b == victim));
        assert_eq!(blocker.index().candidates_of(victim), 0);
        assert_eq!(blocker.num_alive(), ds.num_entities() - 1);

        // The compacted state equals a batch build of the surviving corpus.
        let survivors = surviving_dataset(&ds, &[victim], &[]);
        let streamed = blocker.compact();
        let batch = build_blocks(&survivors, &TokenKeys, 1);
        assert_eq!(
            streamed.to_block_collection().blocks,
            batch.to_block_collection().blocks
        );
    }

    #[test]
    fn update_diffs_additions_retractions_and_rescored_survivors() {
        let ds = dirty_dataset();
        let mut blocker = StreamingMetaBlocker::new(config(&ds), TokenKeys);
        blocker.ingest(&ds.profiles);
        // Entity 1 moves from the apple cluster to the samsung cluster but
        // keeps the "iphone" token shared with entity 0.
        let new_profile = profile("1", "samsung iphone galaxy");
        let updated = vec![(EntityId(1), new_profile.clone())];
        let before_pairs = batch_candidates(&ds);
        let delta = blocker.update(&updated);
        assert_eq!(delta.num_updated, 1);

        let survivors = surviving_dataset(&ds, &[], &updated);
        let after_pairs = batch_candidates(&survivors);
        // Diff of the batch candidate sets restricted to entity 1 must match
        // the emitted channels exactly.
        let touches = |&(a, b): &(EntityId, EntityId)| a == EntityId(1) || b == EntityId(1);
        let added: Vec<_> = after_pairs
            .iter()
            .filter(|p| touches(p) && !before_pairs.contains(p))
            .copied()
            .collect();
        let gone: Vec<_> = before_pairs
            .iter()
            .filter(|p| touches(p) && !after_pairs.contains(p))
            .copied()
            .collect();
        let kept: Vec<_> = before_pairs
            .iter()
            .filter(|p| touches(p) && after_pairs.contains(p))
            .copied()
            .collect();
        assert_eq!(delta.additions(), added.as_slice());
        assert_eq!(delta.retractions().collect::<Vec<_>>(), gone);
        assert_eq!(delta.rescored(), kept.as_slice());
        assert!(!delta.rescored().is_empty(), "no survivor was re-scored");

        // Re-scored features equal a batch rebuild of the updated corpus.
        let csr = build_blocks(&survivors, &TokenKeys, 1);
        let stats = er_blocking::BlockStats::from_csr(&csr);
        let candidates = er_blocking::CandidatePairs::from_stats(&stats, 1);
        let context = er_features::FeatureContext::new(&stats, &candidates);
        let set = blocker.feature_set();
        let mut expected = vec![0.0f64; set.vector_len()];
        for (i, &(a, b)) in delta.rescored().iter().enumerate() {
            context.write_pair_features(a, b, set, &mut expected);
            assert_eq!(
                delta.rescored_feature_row(i),
                expected.as_slice(),
                "rescored pair ({a},{b})"
            );
        }
        for (i, &(a, b)) in delta.additions().iter().enumerate() {
            context.write_pair_features(a, b, set, &mut expected);
            assert_eq!(
                delta.feature_row(i),
                expected.as_slice(),
                "added pair ({a},{b})"
            );
        }

        let streamed = blocker.compact();
        assert_eq!(
            streamed.to_block_collection().blocks,
            csr.to_block_collection().blocks
        );
    }

    #[test]
    fn cap_reentry_revives_pairs_through_the_blocker() {
        // Suffix keys with a tight cap: removing an entity shrinks a capped
        // block back under the cap and the orphaned pair must be re-emitted
        // as an addition, scored against the shrunken corpus.
        let profiles = vec![
            profile("0", "matching"),
            profile("1", "matching"),
            profile("2", "matching"),
        ];
        let gt = GroundTruth::from_pairs(vec![(EntityId(0), EntityId(1))]);
        let ds = Dataset::dirty("caps", EntityCollection::new("caps", profiles), gt).unwrap();
        let generator = SuffixKeys::new(6, 2);
        let mut blocker = StreamingMetaBlocker::new(config(&ds), generator);
        let d0 = blocker.ingest(&ds.profiles[..2]);
        assert!(d0.num_additions() > 0);
        let d1 = blocker.ingest(&ds.profiles[2..]);
        assert!(d1.num_retractions() > 0, "cap crossing must retract");
        assert_eq!(blocker.index().candidates_of(EntityId(0)), 0);

        let d2 = blocker.remove(&[EntityId(2)]);
        assert_eq!(d2.additions(), &[(EntityId(0), EntityId(1))]);
        assert_eq!(d2.num_retractions(), 0);
        assert_eq!(blocker.index().candidates_of(EntityId(0)), 1);

        // Exact stats after re-entry: the compacted state equals a batch
        // build of the surviving corpus, features included.
        let survivors = surviving_dataset(&ds, &[EntityId(2)], &[]);
        let streamed = blocker.compact();
        let batch = build_blocks(&survivors, &generator, 1);
        assert_eq!(
            streamed.to_block_collection().blocks,
            batch.to_block_collection().blocks
        );
        let stats = er_blocking::BlockStats::from_csr(&batch);
        let candidates = er_blocking::CandidatePairs::from_stats(&stats, 1);
        let context = er_features::FeatureContext::new(&stats, &candidates);
        let set = blocker.feature_set();
        let mut expected = vec![0.0f64; set.vector_len()];
        for (i, &(a, b)) in d2.additions().iter().enumerate() {
            context.write_pair_features(a, b, set, &mut expected);
            assert_eq!(d2.feature_row(i), expected.as_slice());
        }
    }

    #[test]
    fn unscored_ingest_updates_the_index_exactly_like_scored_ingest() {
        let ds = dirty_dataset();
        let mut scored = StreamingMetaBlocker::new(config(&ds), TokenKeys);
        let mut unscored = StreamingMetaBlocker::new(config(&ds), TokenKeys);
        let a = scored.ingest(&ds.profiles);
        let b = unscored.ingest_unscored(&ds.profiles);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.retracted, b.retracted);
        assert!(b.features.is_empty());
        assert!(b.probabilities.is_empty());
        for e in 0..ds.num_entities() {
            let entity = EntityId(e as u32);
            assert_eq!(
                scored.index().candidates_of(entity),
                unscored.index().candidates_of(entity)
            );
        }
        assert_eq!(
            scored.compact().to_block_collection().blocks,
            unscored.compact().to_block_collection().blocks
        );
    }

    #[test]
    fn probabilities_come_from_the_attached_model() {
        struct Half;
        impl ProbabilisticClassifier for Half {
            fn probability(&self, features: &[f64]) -> f64 {
                0.25 + features[0].min(0.5)
            }
        }
        let ds = dirty_dataset();
        let mut blocker =
            StreamingMetaBlocker::new(config(&ds), TokenKeys).with_model(Box::new(Half));
        let batch = blocker.ingest(&ds.profiles);
        assert_eq!(batch.probabilities.len(), batch.num_additions());
        for (i, &p) in batch.probabilities.iter().enumerate() {
            assert!((p - (0.25 + batch.feature_row(i)[0].min(0.5))).abs() < 1e-15);
        }
    }

    #[test]
    fn dataset_prefix_clamps_split_and_truth() {
        let e1 = EntityCollection::new("a", vec![profile("a0", "x y"), profile("a1", "y z")]);
        let e2 = EntityCollection::new("b", vec![profile("b0", "x y"), profile("b1", "z q")]);
        let gt =
            GroundTruth::from_pairs(vec![(EntityId(0), EntityId(2)), (EntityId(1), EntityId(3))]);
        let ds = Dataset::clean_clean("cc", e1, e2, gt).unwrap();
        let prefix = dataset_prefix(&ds, 3);
        assert_eq!(prefix.num_entities(), 3);
        assert_eq!(prefix.split, 2);
        assert_eq!(prefix.ground_truth.pairs(), &[(EntityId(0), EntityId(2))]);
        let tiny = dataset_prefix(&ds, 1);
        assert_eq!(tiny.split, 1);
        assert!(tiny.ground_truth.is_empty());
    }

    #[test]
    fn surviving_dataset_blanks_removed_profiles() {
        let ds = dirty_dataset();
        let survivors = surviving_dataset(&ds, &[EntityId(4)], &[]);
        assert_eq!(survivors.num_entities(), ds.num_entities());
        assert!(survivors.profiles[4].attributes.is_empty());
        assert_eq!(survivors.profiles[4].external_id, "4");
        assert_eq!(survivors.ground_truth.pairs(), ds.ground_truth.pairs());
        let survivors = surviving_dataset(&ds, &[EntityId(1)], &[]);
        assert_eq!(
            survivors.ground_truth.pairs(),
            &[(EntityId(2), EntityId(3))]
        );
    }
}
