//! Trait abstraction over mutable blocking indexes.
//!
//! [`BlockIndex`] is the read-only surface that incremental *consumers* —
//! [`meta-blocking`'s `LiveView`][liveview], progressive schedules, lookup
//! paths — need: block membership, liveness, per-entity adjacency and the
//! LCP counters.  [`DeltaIndex`] extends it with the full mutation/feature
//! protocol that [`crate::StreamingMetaBlocker`] drives: interning,
//! entity CRUD, batch liveness effects, partner collection and
//! view/compaction.
//!
//! [`crate::StreamingIndex`] is the canonical single-shard implementation;
//! `er-shard`'s `ShardedIndex` implements the same contract over a
//! hash-partitioned posting space.  Every method is specified to be
//! **bit-identical** across implementations: same candidate order, same
//! floating-point accumulation order, same view.  The generic
//! `StreamingMetaBlocker<G, I>` contains *all* orchestration (batch
//! phases, scoring, emission), so equivalence between implementations
//! reduces to equivalence of these primitives — which the er-shard
//! property suite checks directly against the single-shard oracle.
//!
//! [liveview]: ../meta_blocking/struct.LiveView.html

use er_blocking::CsrBlockCollection;
use er_core::{DatasetKind, EntityId};
use er_features::{EntityAggregates, PairCooccurrence};

use crate::index::{BatchEffects, Members, PartnerBoard, StreamingIndex};

/// Read-only view of a (possibly sharded) blocking index: everything a
/// wait-free reader needs, nothing a writer does.
///
/// `Sync` is part of the contract — consumers fan reads out across worker
/// threads ([`er_core::map_ranges_parallel`]).
pub trait BlockIndex: Sync {
    /// Number of interned keys (dead or alive).
    fn num_keys(&self) -> usize;
    /// Number of entity ids ever assigned (including removed entities).
    fn num_entities(&self) -> usize;
    /// Number of entities currently alive.
    fn num_alive(&self) -> usize;
    /// Whether an entity is currently alive.
    fn is_alive(&self, entity: EntityId) -> bool;
    /// The interned key string.
    fn key_str(&self, key: u32) -> &str;
    /// Current member count of a key's block.
    fn block_size(&self, key: u32) -> usize;
    /// Whether the batch engine would emit this key's block right now.
    fn is_block_live(&self, key: u32) -> bool;
    /// Ascending iterator over a block's current members.
    fn members(&self, key: u32) -> Members<'_>;
    /// The entity's current key list in lexicographic key-string order.
    fn keys_of(&self, entity: EntityId) -> &[u32];
    /// Whether two entities may be compared (cross-source for Clean-Clean).
    fn is_comparable(&self, a: EntityId, b: EntityId) -> bool;
    /// The entity's distinct-candidate count (the LCP feature).
    fn candidates_of(&self, entity: EntityId) -> u32;
}

/// The full mutation + feature protocol of a delta-over-baseline blocking
/// index, as driven by the generic [`crate::StreamingMetaBlocker`].
///
/// Implementations must preserve the determinism contract documented on
/// [`crate::index`]: per-entity key lists in lexicographic key order, so
/// partner scoreboards, aggregate tables and co-occurrence merges fold
/// floats in exactly the batch engine's order.
pub trait DeltaIndex: BlockIndex {
    /// Dataset kind (Dirty or Clean-Clean).
    fn kind(&self) -> DatasetKind;
    /// First-source size for Clean-Clean corpora.
    fn split(&self) -> usize;
    /// The scheme's block-size cap.
    fn size_cap(&self) -> usize;
    /// The dataset label stamped onto emitted views.
    fn dataset_name(&self) -> &str;
    /// Compaction epoch (bumped by [`DeltaIndex::compact`]).
    fn epoch(&self) -> u64;
    /// Whether a mutation batch is currently open (touched keys pending).
    fn has_open_batch(&self) -> bool;
    /// Interns a key string, returning its stable id.
    fn intern(&mut self, key: &str) -> u32;
    /// Inserts a new entity with the given raw (unsorted, possibly
    /// duplicated) interned keys; canonicalises in place.
    fn insert_entity(&mut self, raw_keys: &mut Vec<u32>) -> EntityId;
    /// Removes an entity (tombstones its postings, empties its key row).
    fn remove_entity(&mut self, entity: EntityId);
    /// Replaces an entity's key set (re-keying update).
    fn replace_entity_keys(&mut self, entity: EntityId, raw_keys: &mut Vec<u32>);
    /// Ends a mutation batch; see [`StreamingIndex::finish_batch`].
    ///
    /// Takes `&dyn Fn` rather than `impl Fn` for object-safety of the
    /// callback across trait boundaries; `&dyn Fn` itself implements `Fn`,
    /// so implementations forward to their inherent generic method.
    fn finish_batch(&mut self, in_batch: &dyn Fn(EntityId) -> bool) -> BatchEffects;
    /// Smaller-id candidate partners of a freshly ingested entity.
    fn collect_delta_pairs(
        &self,
        e: EntityId,
        board: &mut PartnerBoard,
    ) -> Vec<(EntityId, PairCooccurrence)>;
    /// All current candidate partners of an entity, with aggregates.
    fn collect_partners(
        &self,
        e: EntityId,
        board: &mut PartnerBoard,
    ) -> Vec<(EntityId, PairCooccurrence)>;
    /// All current candidate partner ids (sorted, distinct), no aggregates.
    fn collect_partner_ids(&self, e: EntityId) -> Vec<EntityId>;
    /// Co-occurrence aggregates of one pair over the live blocks.
    fn pair_cooccurrence(&self, a: EntityId, b: EntityId) -> PairCooccurrence;
    /// Per-entity aggregates over the live blocks.
    fn entity_aggregates(&self, entity: EntityId) -> EntityAggregates;
    /// Records one emitted candidate pair (both LCP counters).
    fn record_candidate(&mut self, a: EntityId, b: EntityId);
    /// Records one retracted candidate pair (both LCP counters).
    fn retract_candidate(&mut self, a: EntityId, b: EntityId);
    /// Batch-identical CSR view of the current live blocks.
    fn view(&self, threads: usize) -> CsrBlockCollection;
    /// Folds deltas into a fresh baseline, bumps the epoch, returns the view.
    fn compact(&mut self, threads: usize) -> CsrBlockCollection;
}

// Inherent methods take precedence over trait methods inside these impls,
// so each body resolves to the inherent `StreamingIndex` method — no
// recursion.
impl BlockIndex for StreamingIndex {
    fn num_keys(&self) -> usize {
        self.num_keys()
    }
    fn num_entities(&self) -> usize {
        self.num_entities()
    }
    fn num_alive(&self) -> usize {
        self.num_alive()
    }
    fn is_alive(&self, entity: EntityId) -> bool {
        self.is_alive(entity)
    }
    fn key_str(&self, key: u32) -> &str {
        self.key_str(key)
    }
    fn block_size(&self, key: u32) -> usize {
        self.block_size(key)
    }
    fn is_block_live(&self, key: u32) -> bool {
        self.is_block_live(key)
    }
    fn members(&self, key: u32) -> Members<'_> {
        self.members(key)
    }
    fn keys_of(&self, entity: EntityId) -> &[u32] {
        self.keys_of(entity)
    }
    fn is_comparable(&self, a: EntityId, b: EntityId) -> bool {
        self.is_comparable(a, b)
    }
    fn candidates_of(&self, entity: EntityId) -> u32 {
        self.candidates_of(entity)
    }
}

impl DeltaIndex for StreamingIndex {
    fn kind(&self) -> DatasetKind {
        self.kind()
    }
    fn split(&self) -> usize {
        self.split()
    }
    fn size_cap(&self) -> usize {
        self.size_cap()
    }
    fn dataset_name(&self) -> &str {
        self.dataset_name()
    }
    fn epoch(&self) -> u64 {
        self.epoch()
    }
    fn has_open_batch(&self) -> bool {
        self.has_open_batch()
    }
    fn intern(&mut self, key: &str) -> u32 {
        self.intern(key)
    }
    fn insert_entity(&mut self, raw_keys: &mut Vec<u32>) -> EntityId {
        self.insert_entity(raw_keys)
    }
    fn remove_entity(&mut self, entity: EntityId) {
        self.remove_entity(entity)
    }
    fn replace_entity_keys(&mut self, entity: EntityId, raw_keys: &mut Vec<u32>) {
        self.replace_entity_keys(entity, raw_keys)
    }
    fn finish_batch(&mut self, in_batch: &dyn Fn(EntityId) -> bool) -> BatchEffects {
        self.finish_batch(in_batch)
    }
    fn collect_delta_pairs(
        &self,
        e: EntityId,
        board: &mut PartnerBoard,
    ) -> Vec<(EntityId, PairCooccurrence)> {
        self.collect_delta_pairs(e, board)
    }
    fn collect_partners(
        &self,
        e: EntityId,
        board: &mut PartnerBoard,
    ) -> Vec<(EntityId, PairCooccurrence)> {
        self.collect_partners(e, board)
    }
    fn collect_partner_ids(&self, e: EntityId) -> Vec<EntityId> {
        self.collect_partner_ids(e)
    }
    fn pair_cooccurrence(&self, a: EntityId, b: EntityId) -> PairCooccurrence {
        self.pair_cooccurrence(a, b)
    }
    fn entity_aggregates(&self, entity: EntityId) -> EntityAggregates {
        self.entity_aggregates(entity)
    }
    fn record_candidate(&mut self, a: EntityId, b: EntityId) {
        self.record_candidate(a, b)
    }
    fn retract_candidate(&mut self, a: EntityId, b: EntityId) {
        self.retract_candidate(a, b)
    }
    fn view(&self, threads: usize) -> CsrBlockCollection {
        self.view(threads)
    }
    fn compact(&mut self, threads: usize) -> CsrBlockCollection {
        self.compact(threads)
    }
}
