//! Durability for the streaming meta-blocker: generational snapshots + a
//! write-ahead log, on top of a fault-injectable VFS seam.
//!
//! A durability root is one [`GenerationStore`] directory:
//!
//! * `snapshot.<gen>.gsmb` — atomic point-in-time images of the complete
//!   [`StreamingIndex`] (written by [`er_persist::snapshot`]), stamped with
//!   the stream fingerprint and the WAL sequence number each one covers;
//!   the two newest generations are retained so a corrupt newest snapshot
//!   still recovers from the previous one;
//! * `wal.<gen>.gsmb` — the write-ahead log of mutation batches for each
//!   generation.  Every
//!   [`DurableMetaBlocker::ingest`]/[`remove`](DurableMetaBlocker::remove)/
//!   [`update`](DurableMetaBlocker::update) appends its **input** (the
//!   profiles, ids or re-keyed profiles) *before* touching the in-memory
//!   index;
//! * `MANIFEST` — the checksummed, atomically rewritten commit pointer.
//!
//! Because the streaming engine is deterministic — the same mutation
//! sequence always produces bit-identical state, for any thread count —
//! recovery is *load the newest readable snapshot generation, replay the
//! WAL chain through the same code paths*.  A crash at any point leaves
//! one of three shapes, all handled:
//!
//! * between batches: snapshot + WAL chain replay the exact history;
//! * between the WAL append and the in-memory apply (the classic
//!   write-ahead window): the record is on disk, so replay applies it —
//!   recovery lands on the state the batch *would* have produced;
//! * mid-append: the torn tail fails its length/checksum frame, recovery
//!   stops at the previous boundary and truncates the tail away.
//!
//! If the newest snapshot generation is corrupt, recovery quarantines it,
//! falls back to the previous generation, replays the longer WAL chain,
//! and immediately commits a repair checkpoint; the whole episode is
//! accounted for in the [`RecoveryReport`] available from
//! [`DurableMetaBlocker::recovery_report`].
//!
//! [`DurableMetaBlocker::compact`] is the log's GC point: it folds the
//! deltas and commits a new generation (snapshot carrying the current
//! sequence number + fresh empty WAL + manifest flip).  A crash anywhere
//! inside the commit is benign — the manifest still points at the old
//! generation, whose snapshot and WAL are intact; replayed records with a
//! sequence below a snapshot's are skipped.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use er_blocking::{CsrBlockCollection, KeyGenerator};
use er_core::{crc64, EntityId, EntityProfile, PersistError, PersistResult};
use er_features::FeatureSet;
use er_learn::ProbabilisticClassifier;
use er_persist::{
    decode_snapshot_payload, generation, Decode, Encode, GenerationStore, Reader, RecoveryReport,
    RetryPolicy, StdVfs, Vfs, WalWriter, Writer,
};

use crate::blocker::{DeltaBatch, StreamingMetaBlocker};
use crate::index::StreamingIndex;

/// Snapshot payload tag for streaming-blocker snapshots.
pub const BLOCKER_SNAPSHOT_TAG: u32 = 0x5349_4458; // "SIDX"

/// The snapshot file of one generation inside a durability root.
pub fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    generation::snapshot_path(dir, generation)
}

/// The write-ahead log of one generation inside a durability root.
pub fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    generation::wal_path(dir, generation)
}

/// The committed generation recorded in a durability root's manifest.
pub fn committed_generation(dir: &Path) -> PersistResult<u64> {
    generation::committed_generation(dir)
}

/// The fingerprint tying a snapshot and WAL to one logical stream: a
/// digest of the dataset name, ER kind, Clean-Clean split and scheme cap.
/// Recovery refuses to combine files whose fingerprints disagree.
pub fn stream_fingerprint(index: &StreamingIndex) -> u64 {
    let mut w = Writer::new();
    w.write_str(index.dataset_name());
    index.kind().encode(&mut w);
    w.write_usize(index.split());
    w.write_u64(index.size_cap() as u64);
    crc64(w.as_bytes())
}

/// One logged mutation batch: exactly the input of the corresponding
/// [`StreamingMetaBlocker`] call.  Replaying the inputs through the same
/// (deterministic) engine reproduces the state bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub enum MutationRecord {
    /// A batch of new entity profiles.
    Ingest(Vec<EntityProfile>),
    /// A batch of removed entity ids.
    Remove(Vec<EntityId>),
    /// A batch of in-place profile updates.
    Update(Vec<(EntityId, EntityProfile)>),
}

impl Encode for MutationRecord {
    fn encode(&self, w: &mut Writer) {
        match self {
            MutationRecord::Ingest(profiles) => {
                w.write_u8(0);
                profiles.encode(w);
            }
            MutationRecord::Remove(ids) => {
                w.write_u8(1);
                ids.encode(w);
            }
            MutationRecord::Update(updates) => {
                w.write_u8(2);
                updates.encode(w);
            }
        }
    }
}

impl Decode for MutationRecord {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        match r.read_u8()? {
            0 => Ok(MutationRecord::Ingest(Vec::<EntityProfile>::decode(r)?)),
            1 => Ok(MutationRecord::Remove(Vec::<EntityId>::decode(r)?)),
            2 => Ok(MutationRecord::Update(
                Vec::<(EntityId, EntityProfile)>::decode(r)?,
            )),
            other => Err(PersistError::Corrupt(format!(
                "unknown mutation-record tag {other}"
            ))),
        }
    }
}

/// Encodes an ingest record payload (`seq` + tagged batch) without cloning
/// the profile slice; the byte layout equals
/// `(seq, MutationRecord::Ingest(profiles.to_vec()))`.
pub fn encode_ingest_record(seq: u64, profiles: &[EntityProfile]) -> Vec<u8> {
    let mut w = Writer::new();
    w.write_u64(seq);
    w.write_u8(0);
    profiles.encode(&mut w);
    w.into_bytes()
}

/// Encodes a remove record payload (see [`encode_ingest_record`]).
pub fn encode_remove_record(seq: u64, ids: &[EntityId]) -> Vec<u8> {
    let mut w = Writer::new();
    w.write_u64(seq);
    w.write_u8(1);
    ids.encode(&mut w);
    w.into_bytes()
}

/// Encodes an update record payload (see [`encode_ingest_record`]).
pub fn encode_update_record(seq: u64, updates: &[(EntityId, EntityProfile)]) -> Vec<u8> {
    let mut w = Writer::new();
    w.write_u64(seq);
    w.write_u8(2);
    updates.encode(&mut w);
    w.into_bytes()
}

/// Decodes one WAL record payload into its sequence number and mutation.
pub fn decode_record(bytes: &[u8]) -> PersistResult<(u64, MutationRecord)> {
    let mut r = Reader::new(bytes);
    let seq = r.read_u64()?;
    let record = MutationRecord::decode(&mut r)?;
    r.expect_end()?;
    Ok((seq, record))
}

/// Replays validated WAL record payloads through `apply`: records below
/// `applied_seq` (already folded into the snapshot by a compaction whose
/// WAL truncation was interrupted) are skipped, the rest must be
/// contiguous.  Returns the next sequence number — the one the recovered
/// writer appends under.  Shared by the blocker- and pipeline-level
/// recoveries so replay semantics cannot diverge.
pub fn replay_wal_records(
    records: &[Vec<u8>],
    applied_seq: u64,
    mut apply: impl FnMut(MutationRecord),
) -> PersistResult<u64> {
    let mut next_seq = applied_seq;
    for payload in records {
        let (seq, record) = decode_record(payload)?;
        if seq < applied_seq {
            continue;
        }
        if seq != next_seq {
            return Err(PersistError::Corrupt(format!(
                "wal sequence gap: expected record {next_seq}, found {seq}"
            )));
        }
        apply(record);
        next_seq += 1;
    }
    Ok(next_seq)
}

/// The snapshot payload of a durable blocker: the WAL sequence number the
/// image covers (records below it are already folded in), the feature-set
/// id, and the complete index state.
struct BlockerSnapshot<'a> {
    applied_seq: u64,
    feature_set: FeatureSet,
    index: &'a StreamingIndex,
}

impl Encode for BlockerSnapshot<'_> {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.applied_seq);
        w.write_u8(self.feature_set.id());
        self.index.encode(w);
    }
}

/// Owned decode target of [`BlockerSnapshot`].
struct BlockerSnapshotOwned {
    applied_seq: u64,
    feature_set: FeatureSet,
    index: StreamingIndex,
}

impl Decode for BlockerSnapshotOwned {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        let applied_seq = r.read_u64()?;
        let feature_set = FeatureSet::from_id(r.read_u8()?)
            .ok_or_else(|| PersistError::Corrupt("feature-set id 0 is not valid".into()))?;
        let index = StreamingIndex::decode(r)?;
        Ok(BlockerSnapshotOwned {
            applied_seq,
            feature_set,
            index,
        })
    }
}

/// A [`StreamingMetaBlocker`] with crash durability: every mutation batch
/// is appended to the write-ahead log before it is applied, and
/// [`compact`](DurableMetaBlocker::compact) /
/// [`checkpoint`](DurableMetaBlocker::checkpoint) write atomic snapshots
/// that truncate the log.
///
/// Created by [`StreamingMetaBlocker::persist_to`] (fresh root) or
/// [`DurableMetaBlocker::recover_from`] (snapshot + WAL-tail replay).  The
/// recovered state is bit-identical to the never-crashed run — property
/// tested in `er-stream/tests/persistence.rs` across random mutation
/// traces, schemes, ER kinds, thread counts and kill points.
pub struct DurableMetaBlocker<G: KeyGenerator> {
    blocker: StreamingMetaBlocker<G>,
    store: GenerationStore,
    wal: WalWriter,
    /// Sequence number of the next WAL record to append.
    next_seq: u64,
    /// The report of the recovery that produced this blocker, if any.
    recovery: Option<RecoveryReport>,
}

impl<G: KeyGenerator> std::fmt::Debug for DurableMetaBlocker<G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableMetaBlocker")
            .field("dir", &self.store.dir())
            .field("fingerprint", &self.store.fingerprint())
            .field("generation", &self.store.committed())
            .field("next_seq", &self.next_seq)
            .field("num_entities", &self.blocker.num_entities())
            .finish_non_exhaustive()
    }
}

impl<G: KeyGenerator> StreamingMetaBlocker<G> {
    /// Makes this blocker durable, rooted at `dir`: writes generation 0
    /// (initial snapshot + fresh write-ahead log + manifest) on the
    /// production filesystem.
    pub fn persist_to(self, dir: impl AsRef<Path>) -> PersistResult<DurableMetaBlocker<G>> {
        self.persist_to_with(dir, StdVfs::arc(), RetryPolicy::default_write())
    }

    /// [`persist_to`](StreamingMetaBlocker::persist_to) through an
    /// explicit VFS and write-path retry policy (the fault-injection
    /// seam).
    pub fn persist_to_with(
        self,
        dir: impl AsRef<Path>,
        vfs: Arc<dyn Vfs>,
        policy: RetryPolicy,
    ) -> PersistResult<DurableMetaBlocker<G>> {
        let fingerprint = stream_fingerprint(self.index());
        let (store, wal) = GenerationStore::create(
            vfs,
            policy,
            dir.as_ref(),
            BLOCKER_SNAPSHOT_TAG,
            fingerprint,
            &BlockerSnapshot {
                applied_seq: 0,
                feature_set: self.feature_set(),
                index: self.index(),
            },
        )?;
        Ok(DurableMetaBlocker {
            blocker: self,
            store,
            wal,
            next_seq: 0,
            recovery: None,
        })
    }
}

impl<G: KeyGenerator> DurableMetaBlocker<G> {
    /// Recovers a durable blocker from its root on the production
    /// filesystem: loads the newest readable snapshot generation and
    /// replays the WAL chain (records at or beyond the snapshot's sequence
    /// number) through the deterministic mutation engine.  A torn final
    /// record — the artefact of a crash mid-append — is truncated away; a
    /// corrupt newest generation is quarantined and the previous one used
    /// instead; any other damage is a typed error.
    pub fn recover_from(
        dir: impl AsRef<Path>,
        generator: G,
        threads: usize,
    ) -> PersistResult<Self> {
        DurableMetaBlocker::recover_from_with(
            dir,
            StdVfs::arc(),
            RetryPolicy::default_write(),
            generator,
            threads,
        )
    }

    /// [`recover_from`](DurableMetaBlocker::recover_from) through an
    /// explicit VFS and write-path retry policy (the fault-injection
    /// seam).
    pub fn recover_from_with(
        dir: impl AsRef<Path>,
        vfs: Arc<dyn Vfs>,
        policy: RetryPolicy,
        generator: G,
        threads: usize,
    ) -> PersistResult<Self> {
        let (mut store, recovered) =
            GenerationStore::recover(vfs, policy, dir.as_ref(), BLOCKER_SNAPSHOT_TAG, None)?;
        let snapshot: BlockerSnapshotOwned = decode_snapshot_payload(&recovered.payload)?;
        let fingerprint = stream_fingerprint(&snapshot.index);
        if fingerprint != recovered.fingerprint {
            return Err(PersistError::FingerprintMismatch {
                expected: fingerprint,
                found: recovered.fingerprint,
            });
        }
        let mut blocker = StreamingMetaBlocker::from_recovered(
            snapshot.index,
            generator,
            snapshot.feature_set,
            threads,
        )?;
        // Replay through the unscored paths: index state, statistics and
        // LCP counters move exactly as in the original (scored) run; only
        // the already-delivered emissions are skipped.
        let next_seq =
            replay_wal_records(
                &recovered.records,
                snapshot.applied_seq,
                |record| match record {
                    MutationRecord::Ingest(profiles) => {
                        blocker.ingest_impl(&profiles, false);
                    }
                    MutationRecord::Remove(ids) => {
                        blocker.remove_impl(&ids, false);
                    }
                    MutationRecord::Update(updates) => {
                        blocker.update_impl(&updates, false);
                    }
                },
            )?;
        let mut report = recovered.report;
        report.records_replayed = (next_seq - snapshot.applied_seq) as usize;
        // A degraded recovery (fallback generation, rebuilt manifest,
        // missing WAL) immediately commits a repair checkpoint of the
        // replayed state, restoring full snapshot redundancy.
        let wal = match recovered.wal_valid_len {
            Some(valid_len) if !recovered.degraded => store.open_committed_wal(valid_len)?,
            _ => {
                report.repair_checkpoint = true;
                store.commit(
                    BLOCKER_SNAPSHOT_TAG,
                    &BlockerSnapshot {
                        applied_seq: next_seq,
                        feature_set: blocker.feature_set(),
                        index: blocker.index(),
                    },
                )?
            }
        };
        report.observe();
        Ok(DurableMetaBlocker {
            blocker,
            store,
            wal,
            next_seq,
            recovery: Some(report),
        })
    }

    /// Attaches the classifier scoring future delta pairs.
    pub fn with_model(mut self, model: Box<dyn ProbabilisticClassifier>) -> Self {
        self.blocker = self.blocker.with_model(model);
        self
    }

    /// The durability root directory.
    pub fn dir(&self) -> &Path {
        self.store.dir()
    }

    /// The stream fingerprint stamped on the snapshots and WALs.
    pub fn fingerprint(&self) -> u64 {
        self.store.fingerprint()
    }

    /// The committed snapshot generation.
    pub fn generation(&self) -> u64 {
        self.store.committed()
    }

    /// What the recovery that produced this blocker had to do — `None`
    /// for a blocker created fresh by `persist_to`.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Sequence number the next mutation batch will be logged under.
    pub fn wal_sequence(&self) -> u64 {
        self.next_seq
    }

    /// The wrapped blocker (read-only; mutations must go through the
    /// durable methods so they hit the log).
    pub fn blocker(&self) -> &StreamingMetaBlocker<G> {
        &self.blocker
    }

    /// The underlying index.
    pub fn index(&self) -> &StreamingIndex {
        self.blocker.index()
    }

    /// Number of entity ids ever assigned.
    pub fn num_entities(&self) -> usize {
        self.blocker.num_entities()
    }

    /// Number of entities currently alive.
    pub fn num_alive(&self) -> usize {
        self.blocker.num_alive()
    }

    /// The batch view of the current corpus (no state change).
    pub fn view(&self) -> CsrBlockCollection {
        self.blocker.view()
    }

    /// Detaches the in-memory blocker, abandoning durability (the files in
    /// the root stay behind and remain recoverable up to the last logged
    /// batch).
    pub fn into_inner(self) -> StreamingMetaBlocker<G> {
        self.blocker
    }

    fn append(&mut self, payload: Vec<u8>) -> PersistResult<u64> {
        let seq = self.next_seq;
        self.wal.append(&payload)?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Logs an ingest batch, then applies it.
    pub fn ingest(&mut self, profiles: &[EntityProfile]) -> PersistResult<DeltaBatch> {
        self.append(encode_ingest_record(self.next_seq, profiles))?;
        Ok(self.blocker.ingest(profiles))
    }

    /// Logs an ingest batch, then applies it without the feature /
    /// probability phase (see `StreamingMetaBlocker::ingest_unscored`).
    pub fn ingest_unscored(&mut self, profiles: &[EntityProfile]) -> PersistResult<DeltaBatch> {
        self.append(encode_ingest_record(self.next_seq, profiles))?;
        Ok(self.blocker.ingest_unscored(profiles))
    }

    /// Logs a removal batch, then applies it.
    ///
    /// # Panics
    /// Same contract as `StreamingMetaBlocker::remove` (unknown, removed
    /// or duplicate ids) — asserted **before** the WAL append, so an
    /// invalid batch never poisons the log.
    pub fn remove(&mut self, ids: &[EntityId]) -> PersistResult<DeltaBatch> {
        self.blocker.assert_remove_batch(ids);
        self.append(encode_remove_record(self.next_seq, ids))?;
        Ok(self.blocker.remove(ids))
    }

    /// Logs an update batch, then applies it.
    ///
    /// # Panics
    /// Same contract as `StreamingMetaBlocker::update` — asserted
    /// **before** the WAL append, so an invalid batch never poisons the
    /// log.
    pub fn update(&mut self, updates: &[(EntityId, EntityProfile)]) -> PersistResult<DeltaBatch> {
        self.blocker.assert_update_batch(updates);
        self.append(encode_update_record(self.next_seq, updates))?;
        Ok(self.blocker.update(updates))
    }

    /// Appends a mutation record to the WAL **without applying it** — the
    /// state a crash leaves in the write-ahead window between the log
    /// append and the in-memory apply.  Recovery must replay it.  Used by
    /// the crash-recovery property tests; real callers want
    /// [`DurableMetaBlocker::ingest`] and friends.
    pub fn wal_append_only(&mut self, record: &MutationRecord) -> PersistResult<u64> {
        let payload = match record {
            MutationRecord::Ingest(profiles) => encode_ingest_record(self.next_seq, profiles),
            MutationRecord::Remove(ids) => encode_remove_record(self.next_seq, ids),
            MutationRecord::Update(updates) => encode_update_record(self.next_seq, updates),
        };
        self.append(payload)
    }

    /// Commits a new generation: a fresh snapshot of the current state, an
    /// empty WAL for it, and the manifest flip — the durable equivalent of
    /// "everything so far is safe in one file".  Crash-safe at every step:
    /// until the manifest flips, recovery uses the previous generation,
    /// whose snapshot and WAL are untouched; afterwards, stale records are
    /// skipped by their sequence numbers.
    pub fn checkpoint(&mut self) -> PersistResult<()> {
        self.wal = self.store.commit(
            BLOCKER_SNAPSHOT_TAG,
            &BlockerSnapshot {
                applied_seq: self.next_seq,
                feature_set: self.blocker.feature_set(),
                index: self.blocker.index(),
            },
        )?;
        Ok(())
    }

    /// Ends the epoch: folds the accumulated deltas into a fresh baseline
    /// CSR (see `StreamingMetaBlocker::compact`) and makes the compaction
    /// the snapshot/truncation point of the log.
    pub fn compact(&mut self) -> PersistResult<CsrBlockCollection> {
        let csr = self.blocker.compact();
        self.checkpoint()?;
        Ok(csr)
    }
}
