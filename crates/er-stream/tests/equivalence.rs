//! Streaming-vs-batch equivalence property tests.
//!
//! The contract of the streaming subsystem: ingesting a corpus in **any**
//! split into batches, with compactions interleaved anywhere, ends in
//! exactly the state a one-shot batch build produces — bit-identical
//! blocks, candidates and probabilities — for all three blocking schemes,
//! both ER kinds and any thread count.

use er_blocking::{
    build_blocks, BlockStats, CandidatePairs, KeyGenerator, QGramKeys, SuffixKeys, TokenKeys,
};
use er_core::{Dataset, EntityId};
use er_datasets::{
    dirty_catalog, generate_catalog_dataset, generate_dirty, CatalogOptions, DatasetName,
};
use er_features::{FeatureContext, FeatureMatrix, FeatureSet};
use er_learn::ProbabilisticClassifier;
use er_stream::{DeltaBatch, StreamingConfig, StreamingMetaBlocker};
use rand::Rng;

/// A fixed linear model: deterministic probabilities without training.
struct FixedModel;

impl ProbabilisticClassifier for FixedModel {
    fn probability(&self, features: &[f64]) -> f64 {
        let z: f64 = features
            .iter()
            .enumerate()
            .map(|(i, &x)| (0.35 + 0.2 * i as f64) * x)
            .sum::<f64>()
            - 1.0;
        1.0 / (1.0 + (-z).exp())
    }
}

fn clean_clean_dataset() -> Dataset {
    generate_catalog_dataset(DatasetName::AbtBuy, &CatalogOptions::tiny()).unwrap()
}

fn dirty_dataset() -> Dataset {
    generate_dirty(&dirty_catalog(&CatalogOptions::tiny())[0]).unwrap()
}

/// The batch splits of the satellite matrix: singletons, random sizes, one
/// shot.  Returned as a list of batch lengths summing to `n`.
fn batch_splits(n: usize, seed: u64) -> Vec<Vec<usize>> {
    let singletons = vec![1usize; n];
    let mut rng = er_core::seeded_rng(seed);
    let mut random = Vec::new();
    let mut left = n;
    while left > 0 {
        let take = rng.gen_range(1..=left.min(37));
        random.push(take);
        left -= take;
    }
    vec![singletons, random, vec![n]]
}

/// Ingests `dataset` according to `split`, compacting every third batch
/// when `interleave_compactions`, and returns the blocker plus every
/// emitted delta batch.
fn ingest<G: KeyGenerator>(
    dataset: &Dataset,
    generator: G,
    split: &[usize],
    threads: usize,
    interleave_compactions: bool,
) -> (StreamingMetaBlocker<G>, Vec<DeltaBatch>) {
    let config = StreamingConfig {
        feature_set: FeatureSet::all_schemes(),
        threads,
        ..StreamingConfig::for_dataset(dataset)
    };
    let mut blocker = StreamingMetaBlocker::new(config, generator).with_model(Box::new(FixedModel));
    let mut batches = Vec::new();
    let mut cursor = 0usize;
    for (i, &len) in split.iter().enumerate() {
        batches.push(blocker.ingest(&dataset.profiles[cursor..cursor + len]));
        cursor += len;
        if interleave_compactions && i % 3 == 2 {
            blocker.compact();
        }
    }
    assert_eq!(cursor, dataset.num_entities());
    (blocker, batches)
}

/// Asserts the full equivalence contract for one scheme × dataset × split ×
/// thread count, returning the union of emitted pairs for extra checks.
fn assert_equivalence<G: KeyGenerator + Clone>(
    dataset: &Dataset,
    generator: G,
    split: &[usize],
    threads: usize,
) {
    let (mut blocker, batches) = ingest(dataset, generator.clone(), split, threads, true);
    let streamed = blocker.compact();
    let batch = build_blocks(dataset, &generator, threads);

    // Blocks: bit-identical collection.
    assert_eq!(
        streamed.to_block_collection().blocks,
        batch.to_block_collection().blocks,
        "{}: blocks diverged (split of {} batches, {threads} threads)",
        dataset.name,
        split.len(),
    );
    assert_eq!(streamed.num_entities, batch.num_entities);
    assert_eq!(streamed.split, batch.split);

    // Candidates and probabilities: derived from the compacted state through
    // the standard CSR path, compared bit-for-bit against the batch build.
    let set = FeatureSet::all_schemes();
    let stream_stats = BlockStats::from_csr(&streamed);
    let stream_candidates = CandidatePairs::from_stats(&stream_stats, threads);
    let batch_stats = BlockStats::from_csr(&batch);
    let batch_candidates = CandidatePairs::from_stats(&batch_stats, threads);
    assert_eq!(stream_candidates.pairs(), batch_candidates.pairs());
    let stream_context = FeatureContext::new(&stream_stats, &stream_candidates);
    let batch_context = FeatureContext::new(&batch_stats, &batch_candidates);
    let model = FixedModel;
    let stream_probabilities =
        FeatureMatrix::score_rows(&stream_context, set, threads, |row| model.probability(row));
    let batch_probabilities =
        FeatureMatrix::score_rows(&batch_context, set, threads, |row| model.probability(row));
    assert_eq!(stream_probabilities, batch_probabilities);

    // Delta emission: the union of emitted pairs minus retractions is
    // exactly the batch candidate set, and the incremental LCP counters
    // match the batch per-entity candidate counts.
    let mut emitted: Vec<(EntityId, EntityId)> = Vec::new();
    let mut retracted: Vec<(EntityId, EntityId)> = Vec::new();
    for delta in &batches {
        emitted.extend_from_slice(&delta.pairs);
        retracted.extend_from_slice(&delta.retracted);
    }
    for pair in retracted {
        let at = emitted
            .iter()
            .position(|&p| p == pair)
            .expect("retracted a pair that was never emitted");
        emitted.swap_remove(at);
    }
    emitted.sort_unstable();
    assert_eq!(emitted.as_slice(), batch_candidates.pairs());
    for e in 0..dataset.num_entities() {
        let entity = EntityId(e as u32);
        assert_eq!(
            blocker.index().candidates_of(entity),
            batch_candidates.candidates_of(entity),
            "LCP mismatch for entity {e}"
        );
    }
}

/// Runs the full satellite matrix for one dataset: 3 schemes × 3 splits ×
/// threads 1/2/4.
fn run_matrix(dataset: &Dataset) {
    let splits = batch_splits(
        dataset.num_entities(),
        0x57ee_a000 + dataset.num_entities() as u64,
    );
    for (s, split) in splits.iter().enumerate() {
        for &threads in &[1usize, 2, 4] {
            // The singleton split is the most expensive; exercise it with
            // the extreme thread counts only.
            if s == 0 && threads == 2 {
                continue;
            }
            assert_equivalence(dataset, TokenKeys, split, threads);
            assert_equivalence(dataset, QGramKeys::new(3), split, threads);
            // A tight cap so blocks actually cross it mid-stream and the
            // retraction path is exercised, not just compiled.
            assert_equivalence(dataset, SuffixKeys::new(3, 12), split, threads);
        }
    }
}

#[test]
fn clean_clean_streaming_equals_batch_for_all_schemes_and_splits() {
    run_matrix(&clean_clean_dataset());
}

#[test]
fn dirty_streaming_equals_batch_for_all_schemes_and_splits() {
    run_matrix(&dirty_dataset());
}

#[test]
fn single_batch_delta_probabilities_match_the_batch_pipeline() {
    // When the whole corpus arrives in one batch, the delta emission *is*
    // the batch result: features and probabilities must be bit-identical to
    // the fused batch scoring pass over the same pairs.
    for dataset in [clean_clean_dataset(), dirty_dataset()] {
        let n = dataset.num_entities();
        let (blocker, batches) = ingest(&dataset, TokenKeys, &[n], 2, false);
        assert_eq!(batches.len(), 1);
        let delta = &batches[0];

        let batch = build_blocks(&dataset, &TokenKeys, 2);
        let stats = BlockStats::from_csr(&batch);
        let candidates = CandidatePairs::from_stats(&stats, 2);
        let context = FeatureContext::new(&stats, &candidates);
        let set = blocker.feature_set();
        let model = FixedModel;
        let expected = FeatureMatrix::score_rows(&context, set, 2, |row| {
            model.probability(row).clamp(0.0, 1.0)
        });

        // Delta pairs are grouped by larger endpoint; map them onto the
        // batch pair ids to compare probabilities pairwise.
        assert_eq!(delta.num_additions(), candidates.len());
        for (i, &(a, b)) in delta.pairs.iter().enumerate() {
            let id = candidates
                .pairs()
                .binary_search(&(a, b))
                .expect("delta pair missing from batch candidates");
            assert_eq!(delta.probabilities[i], expected[id], "pair ({a},{b})");
        }
    }
}

#[test]
fn retractions_only_occur_under_a_size_cap() {
    let dataset = dirty_dataset();
    let splits = batch_splits(dataset.num_entities(), 0xca11);
    let (_, batches) = ingest(&dataset, TokenKeys, &splits[1], 1, false);
    assert!(batches.iter().all(|b| b.retracted.is_empty()));
}
