//! Fault-injection tests at the streaming-blocker level: ENOSPC, fsync
//! failure, short writes and torn renames planted (one-shot, deterministic)
//! at every write-path VFS op of a mutation trace.
//!
//! The contract under injected faults:
//!
//! * the durable call that hits the fault returns a **typed**
//!   [`PersistError`] — no panic, no silent success;
//! * non-retryable faults (a full disk, a failed fsync) are *not* retried
//!   under [`RetryPolicy::none`]; re-issuing the failed call after the
//!   fault clears (they are one-shot) succeeds and the run converges on
//!   the fault-free final state;
//! * whatever the fault interrupted, the on-disk root stays recoverable:
//!   a fresh `recover_from` returns a prefix of the trace, never an error
//!   (the root was committed before any fault could fire);
//! * transient (EINTR-class) faults are absorbed by the default retry
//!   policy — the caller never sees them.

use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use er_blocking::TokenKeys;
use er_core::{Dataset, EntityId, EntityProfile, PersistError, PersistResult};
use er_datasets::{generate_catalog_dataset, CatalogOptions, DatasetName};
use er_features::FeatureSet;
use er_persist::{FaultKind, FaultVfs, InjectedFault, RetryPolicy, Vfs};
use er_stream::{DurableMetaBlocker, StreamingConfig, StreamingMetaBlocker};

fn scratch(test: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("fault-injection-{test}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dataset() -> Dataset {
    generate_catalog_dataset(DatasetName::AbtBuy, &CatalogOptions::tiny()).unwrap()
}

fn config(dataset: &Dataset) -> StreamingConfig {
    StreamingConfig {
        feature_set: FeatureSet::all_schemes(),
        threads: 1,
        ..StreamingConfig::for_dataset(dataset)
    }
}

#[derive(Debug, Clone)]
enum Mutation {
    Ingest(Range<usize>),
    Remove(Vec<EntityId>),
    Update(Vec<(EntityId, EntityProfile)>),
}

#[derive(Debug, Clone)]
enum Step {
    Mutate(Mutation),
    Checkpoint,
}

fn build_trace(dataset: &Dataset) -> Vec<Step> {
    assert!(dataset.num_entities() >= 30);
    vec![
        Step::Mutate(Mutation::Ingest(0..10)),
        Step::Mutate(Mutation::Ingest(10..18)),
        Step::Mutate(Mutation::Remove(vec![EntityId(2), EntityId(11)])),
        Step::Checkpoint,
        Step::Mutate(Mutation::Ingest(18..26)),
        Step::Mutate(Mutation::Update(vec![(
            EntityId(7),
            dataset.profiles[27].clone(),
        )])),
        Step::Mutate(Mutation::Ingest(26..30)),
    ]
}

fn apply_step<G: er_blocking::KeyGenerator>(
    durable: &mut DurableMetaBlocker<G>,
    dataset: &Dataset,
    step: &Step,
) -> PersistResult<()> {
    match step {
        Step::Mutate(Mutation::Ingest(range)) => {
            durable.ingest_unscored(&dataset.profiles[range.clone()])?;
        }
        Step::Mutate(Mutation::Remove(ids)) => {
            durable.remove(ids)?;
        }
        Step::Mutate(Mutation::Update(updates)) => {
            durable.update(updates)?;
        }
        Step::Checkpoint => durable.checkpoint()?,
    };
    Ok(())
}

/// Digest of the logical streaming state.
fn state_digest<G: er_blocking::KeyGenerator>(durable: &DurableMetaBlocker<G>) -> u64 {
    let blocks = durable.view().to_block_collection().blocks;
    er_core::crc64(
        format!(
            "{blocks:?}|{}|{}",
            durable.num_entities(),
            durable.num_alive()
        )
        .as_bytes(),
    )
}

/// Runs the trace on `vfs`/`policy`; a step that fails is re-issued once
/// (the injected faults are one-shot).  Returns the final digest and how
/// many typed errors surfaced.
fn run_with_single_retry(
    dataset: &Dataset,
    trace: &[Step],
    vfs: Arc<dyn Vfs>,
    policy: RetryPolicy,
    dir: &Path,
) -> (u64, usize, Vec<PersistError>) {
    let blocker = StreamingMetaBlocker::new(config(dataset), TokenKeys);
    let (mut durable, mut errors) = match blocker.persist_to_with(dir, vfs.clone(), policy) {
        Ok(durable) => (durable, Vec::new()),
        Err(err) => {
            // The root never materialised: re-issue the whole persist_to —
            // the one-shot fault has been consumed.
            let blocker = StreamingMetaBlocker::new(config(dataset), TokenKeys);
            let durable = blocker
                .persist_to_with(dir, vfs, policy)
                .expect("persist_to retry after a one-shot fault must succeed");
            (durable, vec![err])
        }
    };
    for step in trace {
        if let Err(err) = apply_step(&mut durable, dataset, step) {
            errors.push(err);
            apply_step(&mut durable, dataset, step)
                .expect("retry after a one-shot fault must succeed");
        }
    }
    let digest = state_digest(&durable);
    (digest, errors.len(), errors)
}

#[test]
fn every_write_op_fault_is_typed_retryable_and_recoverable() {
    let dataset = dataset();
    let trace = build_trace(&dataset);

    // Fault-free reference run (through a counting VFS, which also hands
    // us the write-op indices to plant faults at).
    let counting = FaultVfs::counting(23);
    let dir = scratch("reference");
    let (expected_digest, error_count, _) = run_with_single_retry(
        &dataset,
        &trace,
        counting.clone(),
        RetryPolicy::none(),
        &dir,
    );
    assert_eq!(error_count, 0);
    let write_ops: Vec<u64> = counting
        .op_log()
        .iter()
        .enumerate()
        .filter(|(_, (kind, _))| kind.is_write())
        .map(|(i, _)| i as u64)
        .collect();
    assert!(
        write_ops.len() > 10,
        "suspiciously few write ops: {}",
        write_ops.len()
    );

    let mut faults_surfaced = 0usize;
    let mut injections = 0usize;
    for kind in [
        FaultKind::Enospc,
        FaultKind::SyncFailure,
        FaultKind::ShortWrite,
        FaultKind::TornRename,
    ] {
        for &at_op in &write_ops {
            injections += 1;
            let dir = scratch(&format!("{kind:?}-{at_op}"));
            let vfs = FaultVfs::with_faults(23, vec![InjectedFault { at_op, kind }]);
            let (digest, error_count, errors) =
                run_with_single_retry(&dataset, &trace, vfs, RetryPolicy::none(), &dir);

            // At most one call failed (the fault is one-shot), it failed
            // with a typed IO error, and the re-issued call converged on
            // the fault-free state.
            assert!(error_count <= 1, "{kind:?} at op {at_op}: {errors:?}");
            faults_surfaced += error_count;
            for err in &errors {
                assert!(
                    matches!(err, PersistError::Io { .. }),
                    "{kind:?} at op {at_op}: {err:?}"
                );
            }
            assert_eq!(
                digest, expected_digest,
                "{kind:?} at op {at_op}: state diverged after the retry"
            );

            // And the on-disk root recovers to exactly the same state.
            let recovered = DurableMetaBlocker::recover_from(&dir, TokenKeys, 1)
                .unwrap_or_else(|e| panic!("{kind:?} at op {at_op}: recovery failed: {e:?}"));
            assert_eq!(
                state_digest(&recovered),
                expected_digest,
                "{kind:?} at op {at_op}: recovered state diverged"
            );
        }
    }
    // The seam is real: the overwhelming majority of planted faults must
    // surface.  (A few land in best-effort regions — retention cleanup —
    // whose failure is deliberately absorbed.)
    assert!(
        faults_surfaced * 10 >= injections * 8,
        "only {faults_surfaced}/{injections} faults surfaced"
    );
}

#[test]
fn enospc_without_retry_policy_is_fatal_not_retried() {
    let dataset = dataset();
    let dir = scratch("enospc-fatal");
    // Plant ENOSPC at the first WAL append (the op count of persist_to is
    // discovered by the counting run).
    let counting = FaultVfs::counting(29);
    let blocker = StreamingMetaBlocker::new(config(&dataset), TokenKeys);
    let _durable = blocker
        .persist_to_with(&dir, counting.clone(), RetryPolicy::none())
        .unwrap();
    let create_ops = counting.op_count();

    let dir = scratch("enospc-fatal-run");
    let vfs = FaultVfs::with_faults(
        29,
        vec![InjectedFault {
            at_op: create_ops, // first op after the root is created
            kind: FaultKind::Enospc,
        }],
    );
    let blocker = StreamingMetaBlocker::new(config(&dataset), TokenKeys);
    let mut durable = blocker
        .persist_to_with(&dir, vfs.clone(), RetryPolicy::default_write())
        .unwrap();
    let err = durable
        .ingest_unscored(&dataset.profiles[..8])
        .expect_err("ENOSPC must surface");
    assert!(matches!(&err, PersistError::Io { .. }), "{err:?}");
    assert!(!err.is_retryable(), "ENOSPC must be classified fatal");
    // Exactly one attempt hit the disk: the default policy retries only
    // transient errors, and ENOSPC is not one.
    let enospc_attempts = vfs
        .op_log()
        .iter()
        .skip(create_ops as usize)
        .filter(|(kind, _)| kind.is_write())
        .count();
    assert_eq!(
        enospc_attempts, 2,
        "append + rollback truncate expected, got {enospc_attempts}"
    );

    // The failed append rolled the WAL back: the blocker keeps working.
    durable.ingest_unscored(&dataset.profiles[..8]).unwrap();
    drop(durable);
    let recovered = DurableMetaBlocker::recover_from(&dir, TokenKeys, 1).unwrap();
    assert_eq!(recovered.num_entities(), 8);
    assert_eq!(recovered.wal_sequence(), 1);
}

#[test]
fn transient_faults_are_invisible_under_the_default_policy() {
    let dataset = dataset();
    let trace = build_trace(&dataset);

    // Fault-free op count first.
    let counting = FaultVfs::counting(31);
    let dir = scratch("transient-count");
    let (expected_digest, _, _) = run_with_single_retry(
        &dataset,
        &trace,
        counting.clone(),
        RetryPolicy::none(),
        &dir,
    );
    let clean_ops = counting.op_count();

    // EINTR on a scattering of ops (stride coprime to the 4-op atomic
    // write unit): the default policy absorbs every one of them.
    let faults: Vec<InjectedFault> = (0..clean_ops)
        .step_by(7)
        .map(|at_op| InjectedFault {
            at_op,
            kind: FaultKind::Transient,
        })
        .collect();
    assert!(faults.len() > 3);
    let dir = scratch("transient-run");
    let vfs = FaultVfs::with_faults(31, faults);
    let (digest, error_count, errors) = run_with_single_retry(
        &dataset,
        &trace,
        vfs.clone(),
        RetryPolicy::default_write(),
        &dir,
    );
    assert_eq!(
        error_count, 0,
        "transients leaked to the caller: {errors:?}"
    );
    assert_eq!(digest, expected_digest);
    // The retries really happened: the faulted run needed extra ops.
    assert!(
        vfs.op_count() > clean_ops,
        "no retry traffic: {} <= {clean_ops}",
        vfs.op_count()
    );

    let recovered = DurableMetaBlocker::recover_from(&dir, TokenKeys, 1).unwrap();
    assert_eq!(state_digest(&recovered), expected_digest);
    assert!(recovered.recovery_report().unwrap().is_clean());
}
