//! ALICE-style crash-point exploration: a mutation trace is run through a
//! counting VFS to enumerate every filesystem operation it performs, then
//! re-run once per operation index with a `FaultVfs` that *crashes* at that
//! op — the op applies partially (seeded prefix for writes, seeded coin for
//! renames) and every later op fails, exactly like power loss mid-syscall.
//!
//! For every crash point the recovered state must be **bit-identical** to a
//! prefix of the never-crashed run:
//!
//! * recovery lands on sequence `j` with `j_min <= j <= j_min + 1`, where
//!   `j_min` is the number of mutation calls acknowledged before the crash
//!   (the `+1` is the write-ahead window: the record reached the log but
//!   the call never returned);
//! * the recovered logical state equals the reference state after exactly
//!   `j` mutations;
//! * re-applying the remaining mutations converges on the reference final
//!   state;
//! * recovery is allowed to fail only if the crash predates the very first
//!   commit (no manifest on disk) — acknowledged data is never lost and
//!   nothing ever panics.
//!
//! The oracle hashes *logical* state (the block collection view plus
//! liveness counters), not physical bytes: compaction may re-lay-out the
//! index without changing what it represents.

use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use er_blocking::{KeyGenerator, QGramKeys, SuffixKeys, TokenKeys};
use er_core::{Dataset, EntityId, EntityProfile, PersistError, PersistResult};
use er_datasets::{
    dirty_catalog, generate_catalog_dataset, generate_dirty, CatalogOptions, DatasetName,
};
use er_features::FeatureSet;
use er_persist::{manifest_path, FaultVfs, RetryPolicy, StdVfs, Vfs};
use er_stream::{DurableMetaBlocker, StreamingConfig, StreamingMetaBlocker};

fn scratch(test: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("crash-points-{test}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(dataset: &Dataset, threads: usize) -> StreamingConfig {
    StreamingConfig {
        feature_set: FeatureSet::all_schemes(),
        threads,
        ..StreamingConfig::for_dataset(dataset)
    }
}

/// One logical mutation of the explored trace.
#[derive(Debug, Clone)]
enum Mutation {
    Ingest(Range<usize>),
    Remove(Vec<EntityId>),
    Update(Vec<(EntityId, EntityProfile)>),
}

/// One step of the trace: a mutation or a generation commit.
#[derive(Debug, Clone)]
enum Step {
    Mutate(Mutation),
    Checkpoint,
}

/// A short deterministic trace interleaving every mutation kind with two
/// checkpoints, so crash points cover WAL appends, snapshot writes, WAL
/// creation, manifest flips and retention removals.
fn build_trace(dataset: &Dataset) -> Vec<Step> {
    let n = dataset.num_entities();
    assert!(n >= 38, "trace needs at least 38 profiles, got {n}");
    vec![
        Step::Mutate(Mutation::Ingest(0..12)),
        Step::Mutate(Mutation::Ingest(12..22)),
        Step::Mutate(Mutation::Remove(vec![EntityId(3), EntityId(17)])),
        Step::Checkpoint,
        Step::Mutate(Mutation::Ingest(22..30)),
        Step::Mutate(Mutation::Update(vec![
            (EntityId(5), dataset.profiles[31].clone()),
            (EntityId(20), dataset.profiles[0].clone()),
        ])),
        Step::Checkpoint,
        Step::Mutate(Mutation::Ingest(30..38)),
        Step::Mutate(Mutation::Remove(vec![EntityId(25)])),
    ]
}

fn mutations(trace: &[Step]) -> Vec<Mutation> {
    trace
        .iter()
        .filter_map(|s| match s {
            Step::Mutate(m) => Some(m.clone()),
            Step::Checkpoint => None,
        })
        .collect()
}

/// Digest of the *logical* streaming state: the materialised block
/// collection plus the liveness counters.  Physical CSR layout (which
/// compaction rewrites) deliberately does not participate.
fn state_digest(
    view: &er_blocking::CsrBlockCollection,
    num_entities: usize,
    num_alive: usize,
) -> u64 {
    let blocks = view.to_block_collection().blocks;
    er_core::crc64(format!("{blocks:?}|{num_entities}|{num_alive}").as_bytes())
}

/// The reference run: digests after 0, 1, ..., M mutations, never crashed,
/// never persisted.
fn reference_digests<G: KeyGenerator + Clone>(
    dataset: &Dataset,
    generator: G,
    mutations: &[Mutation],
    threads: usize,
) -> Vec<u64> {
    let mut blocker = StreamingMetaBlocker::new(config(dataset, threads), generator);
    let mut digests = vec![state_digest(
        &blocker.view(),
        blocker.num_entities(),
        blocker.num_alive(),
    )];
    for mutation in mutations {
        apply_plain(&mut blocker, dataset, mutation);
        digests.push(state_digest(
            &blocker.view(),
            blocker.num_entities(),
            blocker.num_alive(),
        ));
    }
    digests
}

fn apply_plain<G: KeyGenerator>(
    blocker: &mut StreamingMetaBlocker<G>,
    dataset: &Dataset,
    mutation: &Mutation,
) {
    match mutation {
        Mutation::Ingest(range) => {
            blocker.ingest_unscored(&dataset.profiles[range.clone()]);
        }
        Mutation::Remove(ids) => {
            blocker.remove(ids);
        }
        Mutation::Update(updates) => {
            blocker.update(updates);
        }
    }
}

fn apply_durable<G: KeyGenerator>(
    durable: &mut DurableMetaBlocker<G>,
    dataset: &Dataset,
    mutation: &Mutation,
) -> PersistResult<()> {
    match mutation {
        Mutation::Ingest(range) => durable.ingest_unscored(&dataset.profiles[range.clone()])?,
        Mutation::Remove(ids) => durable.remove(ids)?,
        Mutation::Update(updates) => durable.update(updates)?,
    };
    Ok(())
}

/// Runs the full trace through a durable blocker on `vfs`.  Returns the
/// number of *acknowledged* mutation calls and the first error, if any.
fn run_trace<G: KeyGenerator + Clone>(
    dataset: &Dataset,
    generator: G,
    trace: &[Step],
    vfs: Arc<dyn Vfs>,
    dir: &Path,
    threads: usize,
) -> (usize, Option<PersistError>) {
    let blocker = StreamingMetaBlocker::new(config(dataset, threads), generator);
    let mut durable = match blocker.persist_to_with(dir, vfs, RetryPolicy::default_write()) {
        Ok(durable) => durable,
        Err(err) => return (0, Some(err)),
    };
    let mut acknowledged = 0usize;
    for step in trace {
        let result = match step {
            Step::Mutate(mutation) => match apply_durable(&mut durable, dataset, mutation) {
                Ok(()) => {
                    acknowledged += 1;
                    Ok(())
                }
                Err(err) => Err(err),
            },
            Step::Checkpoint => durable.checkpoint(),
        };
        if let Err(err) = result {
            return (acknowledged, Some(err));
        }
    }
    (acknowledged, None)
}

/// The exploration: enumerate the trace's ops, crash at every single one,
/// recover, audit.
fn explore<G: KeyGenerator + Clone>(dataset: &Dataset, generator: G, tag: &str) {
    let threads = 2;
    let trace = build_trace(dataset);
    let all_mutations = mutations(&trace);
    let digests = reference_digests(dataset, generator.clone(), &all_mutations, threads);
    let final_digest = *digests.last().unwrap();

    // Counting run: how many VFS ops does the whole trace perform?
    let seed = er_core::derive_seed(0x0a11_ce00, er_core::crc64(tag.as_bytes()));
    let counting = FaultVfs::counting(seed);
    let dir = scratch(&format!("{tag}-count"));
    let (acknowledged, err) = run_trace(
        dataset,
        generator.clone(),
        &trace,
        counting.clone(),
        &dir,
        threads,
    );
    assert!(err.is_none(), "counting run failed: {err:?}");
    assert_eq!(acknowledged, all_mutations.len());
    let total_ops = counting.op_count();
    assert!(
        total_ops > 20,
        "{tag}: suspiciously few ops ({total_ops}) — is the VFS seam wired through?"
    );

    for crash_at in 0..total_ops {
        let dir = scratch(&format!("{tag}-{crash_at}"));
        let vfs = FaultVfs::crash_at(seed, crash_at);
        let (j_min, err) = run_trace(
            dataset,
            generator.clone(),
            &trace,
            vfs.clone(),
            &dir,
            threads,
        );
        assert!(
            err.is_some() || !vfs.has_crashed(),
            "{tag} crash at op {crash_at}: the crash was swallowed"
        );

        match DurableMetaBlocker::recover_from(&dir, generator.clone(), threads) {
            Ok(mut durable) => {
                let j = durable.wal_sequence() as usize;
                assert!(
                    j_min <= j && j <= j_min + 1,
                    "{tag} crash at op {crash_at}: {j_min} mutations acknowledged \
                     but recovery landed on sequence {j}"
                );
                assert_eq!(
                    state_digest(&durable.view(), durable.num_entities(), durable.num_alive()),
                    digests[j],
                    "{tag} crash at op {crash_at}: recovered state is not the \
                     reference prefix state at sequence {j}"
                );
                // The run continues from where the crash left off and
                // converges on the reference final state.
                for mutation in &all_mutations[j..] {
                    apply_durable(&mut durable, dataset, mutation)
                        .unwrap_or_else(|e| panic!("{tag} crash at op {crash_at}: {e:?}"));
                }
                assert_eq!(
                    state_digest(&durable.view(), durable.num_entities(), durable.num_alive()),
                    final_digest,
                    "{tag} crash at op {crash_at}: resumed run diverged"
                );
            }
            Err(PersistError::Io { .. }) => {
                // Unrecoverable is legal only before the very first commit:
                // nothing was ever acknowledged and no manifest exists.
                assert_eq!(
                    j_min, 0,
                    "{tag} crash at op {crash_at}: {j_min} acknowledged mutations lost"
                );
                assert!(
                    !manifest_path(&dir).exists(),
                    "{tag} crash at op {crash_at}: manifest exists but recovery failed"
                );
            }
            Err(other) => panic!("{tag} crash at op {crash_at}: {other:?}"),
        }
    }
}

fn clean_clean_dataset() -> Dataset {
    generate_catalog_dataset(DatasetName::AbtBuy, &CatalogOptions::tiny()).unwrap()
}

fn dirty_dataset() -> Dataset {
    generate_dirty(&dirty_catalog(&CatalogOptions::tiny())[0]).unwrap()
}

#[test]
fn every_crash_point_recovers_clean_clean_token_keys() {
    explore(&clean_clean_dataset(), TokenKeys, "cc-token");
}

#[test]
fn every_crash_point_recovers_clean_clean_qgram_keys() {
    explore(&clean_clean_dataset(), QGramKeys::new(3), "cc-qgram");
}

#[test]
fn every_crash_point_recovers_clean_clean_suffix_keys() {
    explore(&clean_clean_dataset(), SuffixKeys::new(3, 12), "cc-suffix");
}

#[test]
fn every_crash_point_recovers_dirty_token_keys() {
    explore(&dirty_dataset(), TokenKeys, "dirty-token");
}

#[test]
fn every_crash_point_recovers_dirty_qgram_keys() {
    explore(&dirty_dataset(), QGramKeys::new(3), "dirty-qgram");
}

#[test]
fn every_crash_point_recovers_dirty_suffix_keys() {
    explore(&dirty_dataset(), SuffixKeys::new(3, 12), "dirty-suffix");
}

/// The recovery itself must go through `StdVfs` — sanity-check the seam is
/// not accidentally shared with the crashed handle.
#[test]
fn a_crashed_vfs_handle_stays_dead() {
    let dataset = clean_clean_dataset();
    let dir = scratch("dead-handle");
    let vfs = FaultVfs::crash_at(1, 5);
    let blocker = StreamingMetaBlocker::new(config(&dataset, 1), TokenKeys);
    let err = blocker
        .persist_to_with(&dir, vfs.clone(), RetryPolicy::default_write())
        .err();
    assert!(err.is_some());
    assert!(vfs.has_crashed());
    // Every subsequent op on the crashed handle keeps failing...
    assert!(vfs.read(&manifest_path(&dir)).is_err());
    // ...while a fresh production VFS sees whatever survived on disk.
    let _ = StdVfs.list(&dir).unwrap();
}
