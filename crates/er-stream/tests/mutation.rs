//! Mutation-trace property tests: streaming CRUD vs batch equivalence.
//!
//! The contract of the mutation log: applying **any** interleaving of
//! insert/remove/update batches (with compactions interleaved anywhere)
//! ends in exactly the state a one-shot batch build of the *surviving*
//! corpus produces — bit-identical blocks, candidates and probabilities —
//! for all three blocking schemes, both ER kinds and any thread count; and
//! at every intermediate point the union of emitted delta additions minus
//! retractions equals the batch candidate set of the surviving corpus.
//!
//! Removed entities are modelled batch-side as blanked profiles (no
//! attributes → no blocking keys) because streaming ids are never reused —
//! see `er_stream::surviving_dataset`.

use er_blocking::{
    build_blocks, BlockStats, CandidatePairs, KeyGenerator, QGramKeys, SuffixKeys, TokenKeys,
};
use er_core::{Dataset, EntityId, EntityProfile, FxHashSet, GroundTruth};
use er_datasets::{
    dirty_catalog, generate_catalog_dataset, generate_dirty, CatalogOptions, DatasetName,
};
use er_features::{FeatureContext, FeatureMatrix, FeatureSet};
use er_learn::ProbabilisticClassifier;
use er_stream::{StreamingConfig, StreamingMetaBlocker};
use rand::Rng;

/// A fixed linear model: deterministic probabilities without training.
struct FixedModel;

impl ProbabilisticClassifier for FixedModel {
    fn probability(&self, features: &[f64]) -> f64 {
        let z: f64 = features
            .iter()
            .enumerate()
            .map(|(i, &x)| (0.35 + 0.2 * i as f64) * x)
            .sum::<f64>()
            - 1.0;
        1.0 / (1.0 + (-z).exp())
    }
}

fn clean_clean_dataset() -> Dataset {
    generate_catalog_dataset(DatasetName::AbtBuy, &CatalogOptions::tiny()).unwrap()
}

fn dirty_dataset() -> Dataset {
    generate_dirty(&dirty_catalog(&CatalogOptions::tiny())[0]).unwrap()
}

/// One step of a mutation trace.
#[derive(Debug, Clone)]
enum Op {
    Ingest(usize),
    Remove(Vec<EntityId>),
    Update(Vec<(EntityId, EntityProfile)>),
    Compact,
}

/// Generates a deterministic trace that ingests the whole dataset with
/// removals, updates and compactions interleaved, plus a mutation-only
/// tail once everything is ingested.
fn generate_trace(dataset: &Dataset, seed: u64) -> Vec<Op> {
    let n = dataset.num_entities();
    let mut rng = er_core::seeded_rng(seed);
    let mut ops = Vec::new();
    let mut next = 0usize;
    let mut alive: Vec<u32> = Vec::new();
    let mut step = 0usize;
    let mut mutation_tail = 6usize;
    while next < n || mutation_tail > 0 {
        step += 1;
        let choice = if next < n {
            rng.gen_range(0..5)
        } else {
            mutation_tail -= 1;
            rng.gen_range(3..5)
        };
        match choice {
            // Ingestion dominates so the corpus actually grows.
            0..=2 => {
                let take = rng.gen_range(1..=(n - next).min(29));
                alive.extend((next..next + take).map(|e| e as u32));
                ops.push(Op::Ingest(take));
                next += take;
            }
            3 => {
                if alive.len() < 4 {
                    continue;
                }
                let count = rng.gen_range(1..=3usize.min(alive.len() - 1));
                let mut victims = Vec::with_capacity(count);
                for _ in 0..count {
                    let at = rng.gen_range(0..alive.len());
                    victims.push(EntityId(alive.swap_remove(at)));
                }
                ops.push(Op::Remove(victims));
            }
            _ => {
                if alive.is_empty() {
                    continue;
                }
                let count = rng.gen_range(1..=3usize.min(alive.len()));
                let mut chosen: Vec<u32> = Vec::new();
                for _ in 0..count {
                    let e = alive[rng.gen_range(0..alive.len())];
                    if !chosen.contains(&e) {
                        chosen.push(e);
                    }
                }
                let updates = chosen
                    .into_iter()
                    .map(|e| {
                        // Re-key with another profile's text: entities hop
                        // between clusters, exercising posting diffs.
                        let donor = rng.gen_range(0..n);
                        (EntityId(e), dataset.profiles[donor].clone())
                    })
                    .collect();
                ops.push(Op::Update(updates));
            }
        }
        if step.is_multiple_of(3) {
            ops.push(Op::Compact);
        }
    }
    ops.push(Op::Compact);
    ops
}

/// A thread-count-independent record of one emitted delta batch.
#[derive(Debug, Clone, PartialEq)]
struct Emission {
    pairs: Vec<(EntityId, EntityId)>,
    features: Vec<f64>,
    probabilities: Vec<f64>,
    rescored: Vec<(EntityId, EntityId)>,
    rescored_features: Vec<f64>,
    rescored_probabilities: Vec<f64>,
    retracted: Vec<(EntityId, EntityId)>,
}

/// Replays a trace and asserts the full equivalence contract at every
/// compaction and at the end.  Returns the emissions for cross-thread
/// determinism checks.
fn run_trace<G: KeyGenerator + Clone>(
    dataset: &Dataset,
    generator: G,
    ops: &[Op],
    threads: usize,
    verify_features_each_batch: bool,
) -> Vec<Emission> {
    let config = StreamingConfig {
        feature_set: FeatureSet::all_schemes(),
        threads,
        ..StreamingConfig::for_dataset(dataset)
    };
    let mut blocker =
        StreamingMetaBlocker::new(config, generator.clone()).with_model(Box::new(FixedModel));

    // The reference corpus the stream must converge to: ingested prefix
    // with updates applied in place and removals blanked.
    let mut current: Vec<EntityProfile> = Vec::new();
    let mut next = 0usize;
    let mut live_pairs: FxHashSet<(EntityId, EntityId)> = FxHashSet::default();
    let mut emissions = Vec::new();

    let reference = |profiles: &[EntityProfile]| Dataset {
        name: dataset.name.clone(),
        kind: dataset.kind,
        profiles: profiles.to_vec(),
        split: dataset.split.min(profiles.len()),
        ground_truth: GroundTruth::from_pairs(Vec::new()),
    };

    for op in ops {
        let delta = match op {
            Op::Ingest(take) => {
                let batch = &dataset.profiles[next..next + take];
                current.extend_from_slice(batch);
                next += take;
                blocker.ingest(batch)
            }
            Op::Remove(ids) => {
                for &e in ids {
                    current[e.index()] = EntityProfile::new(current[e.index()].external_id.clone());
                }
                blocker.remove(ids)
            }
            Op::Update(updates) => {
                for (e, profile) in updates {
                    current[e.index()] = profile.clone();
                }
                blocker.update(updates)
            }
            Op::Compact => {
                let compacted = blocker.compact();
                let batch = build_blocks(&reference(&current), &generator, threads);
                assert_eq!(
                    compacted.to_block_collection().blocks,
                    batch.to_block_collection().blocks,
                    "{}: compacted state diverged ({threads} threads)",
                    dataset.name,
                );
                continue;
            }
        };

        // The running candidate set moves exactly by the emitted delta:
        // every retraction was live, every addition is new.
        for pair in delta.retractions() {
            assert!(live_pairs.remove(&pair), "retracted unknown pair {pair:?}");
        }
        for &pair in delta.additions() {
            assert!(live_pairs.insert(pair), "double-emitted pair {pair:?}");
        }
        for pair in delta.rescored() {
            assert!(live_pairs.contains(pair), "rescored dead pair {pair:?}");
        }

        if verify_features_each_batch {
            verify_batch_features(&blocker, &reference(&current), &generator, &delta);
        }
        emissions.push(Emission {
            pairs: delta.pairs,
            features: delta.features,
            probabilities: delta.probabilities,
            rescored: delta.rescored_pairs,
            rescored_features: delta.rescored_features,
            rescored_probabilities: delta.rescored_probabilities,
            retracted: delta.retracted,
        });
    }
    assert_eq!(next, dataset.num_entities());

    // Final state: blocks, candidates, probabilities and LCP counters are
    // bit-identical to a one-shot batch build of the surviving corpus, and
    // the emission union equals the batch candidate set.
    let streamed = blocker.compact();
    let batch = build_blocks(&reference(&current), &generator, threads);
    assert_eq!(
        streamed.to_block_collection().blocks,
        batch.to_block_collection().blocks
    );
    assert_eq!(streamed.num_entities, batch.num_entities);
    assert_eq!(streamed.split, batch.split);

    let set = FeatureSet::all_schemes();
    let stream_stats = BlockStats::from_csr(&streamed);
    let stream_candidates = CandidatePairs::from_stats(&stream_stats, threads);
    let batch_stats = BlockStats::from_csr(&batch);
    let batch_candidates = CandidatePairs::from_stats(&batch_stats, threads);
    assert_eq!(stream_candidates.pairs(), batch_candidates.pairs());
    let stream_context = FeatureContext::new(&stream_stats, &stream_candidates);
    let batch_context = FeatureContext::new(&batch_stats, &batch_candidates);
    let model = FixedModel;
    let stream_probabilities =
        FeatureMatrix::score_rows(&stream_context, set, threads, |row| model.probability(row));
    let batch_probabilities =
        FeatureMatrix::score_rows(&batch_context, set, threads, |row| model.probability(row));
    assert_eq!(stream_probabilities, batch_probabilities);

    let mut union: Vec<(EntityId, EntityId)> = live_pairs.into_iter().collect();
    union.sort_unstable();
    assert_eq!(union.as_slice(), batch_candidates.pairs());
    for e in 0..dataset.num_entities() {
        let entity = EntityId(e as u32);
        assert_eq!(
            blocker.index().candidates_of(entity),
            batch_candidates.candidates_of(entity),
            "LCP mismatch for entity {e}"
        );
    }
    emissions
}

/// Verifies one batch's emitted feature rows and probabilities against a
/// from-scratch batch rebuild of the current surviving corpus.
fn verify_batch_features<G: KeyGenerator>(
    blocker: &StreamingMetaBlocker<G>,
    reference: &Dataset,
    generator: &G,
    delta: &er_stream::DeltaBatch,
) {
    if delta.num_additions() == 0 && delta.num_rescored() == 0 {
        return;
    }
    let csr = build_blocks(reference, generator, 1);
    let stats = BlockStats::from_csr(&csr);
    let candidates = CandidatePairs::from_stats(&stats, 1);
    let context = FeatureContext::new(&stats, &candidates);
    let set = blocker.feature_set();
    let model = FixedModel;
    let mut expected = vec![0.0f64; set.vector_len()];
    let mut check = |pairs: &[(EntityId, EntityId)], features: &[f64], probabilities: &[f64]| {
        let width = set.vector_len();
        for (i, &(a, b)) in pairs.iter().enumerate() {
            context.write_pair_features(a, b, set, &mut expected);
            assert_eq!(
                &features[i * width..(i + 1) * width],
                expected.as_slice(),
                "pair ({a},{b})"
            );
            assert_eq!(
                probabilities[i],
                model.probability(&expected).clamp(0.0, 1.0),
                "probability of pair ({a},{b})"
            );
        }
    };
    check(delta.additions(), &delta.features, &delta.probabilities);
    check(
        delta.rescored(),
        &delta.rescored_features,
        &delta.rescored_probabilities,
    );
}

/// Runs the full matrix for one dataset: 3 schemes × threads 1/2/4, with
/// cross-thread determinism of every emitted batch.
fn run_matrix(dataset: &Dataset, seed: u64) {
    let ops = generate_trace(dataset, seed);
    let mutations = ops
        .iter()
        .filter(|op| matches!(op, Op::Remove(_) | Op::Update(_)))
        .count();
    assert!(mutations >= 4, "trace exercised too few mutations");

    let sequential = run_trace(dataset, TokenKeys, &ops, 1, false);
    for &threads in &[2usize, 4] {
        let parallel = run_trace(dataset, TokenKeys, &ops, threads, false);
        assert_eq!(
            sequential, parallel,
            "emissions depend on thread count ({threads} threads)"
        );
    }
    run_trace(dataset, QGramKeys::new(3), &ops, 2, false);
    // A tight cap so blocks cross it in both directions mid-stream and the
    // retraction/revival paths are exercised, not just compiled.
    for &threads in &[1usize, 4] {
        run_trace(dataset, SuffixKeys::new(3, 12), &ops, threads, false);
    }
}

#[test]
fn clean_clean_mutation_traces_equal_batch_for_all_schemes() {
    run_matrix(&clean_clean_dataset(), 0x0041_5500);
}

#[test]
fn dirty_mutation_traces_equal_batch_for_all_schemes() {
    run_matrix(&dirty_dataset(), 0x0077_dead);
}

#[test]
fn per_batch_features_match_a_rebuild_of_the_surviving_corpus() {
    // One configuration with the per-batch feature audit switched on: every
    // addition and re-scored survivor must carry exactly the feature rows
    // and probabilities a from-scratch rebuild of the surviving corpus
    // produces at that instant.
    let dataset = dirty_dataset();
    let ops = generate_trace(&dataset, 0xfea7);
    run_trace(&dataset, TokenKeys, &ops, 2, true);
    let cc = clean_clean_dataset();
    let ops = generate_trace(&cc, 0xfea8);
    run_trace(&cc, SuffixKeys::new(3, 12), &ops, 2, true);
}

#[test]
fn capped_blocks_reenter_the_live_set_with_exact_stats() {
    // Deterministic cap re-entry on a real dataset: ingest everything with
    // a tight suffix cap, then remove entities until a previously capped
    // block shrinks under the cap again — its pairs must be re-emitted and
    // the final state must equal the batch build of the survivors.
    let dataset = dirty_dataset();
    let generator = SuffixKeys::new(3, 12);
    let config = StreamingConfig {
        feature_set: FeatureSet::all_schemes(),
        threads: 2,
        ..StreamingConfig::for_dataset(&dataset)
    };
    let mut blocker = StreamingMetaBlocker::new(config, generator).with_model(Box::new(FixedModel));
    blocker.ingest(&dataset.profiles);

    // Remove entities one by one until some removal revives at least one
    // pair (a capped block re-entering the live set).
    let mut removed: Vec<EntityId> = Vec::new();
    let mut revived_any = false;
    for e in (0..dataset.num_entities()).rev() {
        let victim = EntityId(e as u32);
        let delta = blocker.remove(&[victim]);
        removed.push(victim);
        if delta.num_additions() > 0 {
            revived_any = true;
            break;
        }
    }
    assert!(
        revived_any,
        "no capped block ever shrank back under its cap"
    );

    let survivors = er_stream::surviving_dataset(&dataset, &removed, &[]);
    let streamed = blocker.compact();
    let batch = build_blocks(&survivors, &SuffixKeys::new(3, 12), 2);
    assert_eq!(
        streamed.to_block_collection().blocks,
        batch.to_block_collection().blocks
    );
    let stream_stats = BlockStats::from_csr(&streamed);
    let batch_stats = BlockStats::from_csr(&batch);
    let stream_candidates = CandidatePairs::from_stats(&stream_stats, 2);
    let batch_candidates = CandidatePairs::from_stats(&batch_stats, 2);
    assert_eq!(stream_candidates.pairs(), batch_candidates.pairs());
    for e in 0..dataset.num_entities() {
        let entity = EntityId(e as u32);
        assert_eq!(
            blocker.index().candidates_of(entity),
            batch_candidates.candidates_of(entity)
        );
    }
}
