//! Crash-recovery property tests: snapshot + WAL-tail replay must be
//! invisible.
//!
//! The contract of `er_stream::persist`: for **any** mutation trace
//! (insert/remove/update batches, compactions interleaved), a restart
//! injected at **any** batch boundary — and at the kill point *between the
//! WAL append and the in-memory apply* — leaves a recovered
//! [`DurableMetaBlocker`] whose blocks, candidates, feature rows and
//! classifier probabilities are **bit-identical** to a never-restarted run
//! of the same trace, for all three blocking schemes, both ER kinds and
//! any thread count (including recovering under a *different* thread count
//! than the original run).  Torn WAL tails roll back to the previous batch
//! boundary; corrupted files surface as typed errors, never as state.

use std::fs;
use std::path::PathBuf;

use er_blocking::{
    build_blocks, BlockStats, CandidatePairs, KeyGenerator, QGramKeys, SuffixKeys, TokenKeys,
};
use er_core::{Dataset, EntityId, EntityProfile, GroundTruth, PersistError};
use er_datasets::{
    dirty_catalog, generate_catalog_dataset, generate_dirty, CatalogOptions, DatasetName,
};
use er_features::{FeatureContext, FeatureMatrix, FeatureSet};
use er_learn::ProbabilisticClassifier;
use er_stream::{DurableMetaBlocker, MutationRecord, StreamingConfig, StreamingMetaBlocker};
use rand::Rng;

/// A fixed linear model: deterministic probabilities without training.
struct FixedModel;

impl ProbabilisticClassifier for FixedModel {
    fn probability(&self, features: &[f64]) -> f64 {
        let z: f64 = features
            .iter()
            .enumerate()
            .map(|(i, &x)| (0.35 + 0.2 * i as f64) * x)
            .sum::<f64>()
            - 1.0;
        1.0 / (1.0 + (-z).exp())
    }
}

fn scratch(test: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("persistence-{test}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn clean_clean_dataset() -> Dataset {
    generate_catalog_dataset(DatasetName::AbtBuy, &CatalogOptions::tiny()).unwrap()
}

fn dirty_dataset() -> Dataset {
    generate_dirty(&dirty_catalog(&CatalogOptions::tiny())[0]).unwrap()
}

/// One step of a mutation trace.
#[derive(Debug, Clone)]
enum Op {
    Ingest(usize),
    Remove(Vec<EntityId>),
    Update(Vec<(EntityId, EntityProfile)>),
    Compact,
}

/// Generates a deterministic trace interleaving ingests, removals, updates
/// and compactions (same shape as the `mutation.rs` trace generator).
fn generate_trace(dataset: &Dataset, seed: u64) -> Vec<Op> {
    let n = dataset.num_entities();
    let mut rng = er_core::seeded_rng(seed);
    let mut ops = Vec::new();
    let mut next = 0usize;
    let mut alive: Vec<u32> = Vec::new();
    let mut step = 0usize;
    let mut mutation_tail = 5usize;
    while next < n || mutation_tail > 0 {
        step += 1;
        let choice = if next < n {
            rng.gen_range(0..5)
        } else {
            mutation_tail -= 1;
            rng.gen_range(3..5)
        };
        match choice {
            0..=2 => {
                let take = rng.gen_range(1..=(n - next).min(31));
                alive.extend((next..next + take).map(|e| e as u32));
                ops.push(Op::Ingest(take));
                next += take;
            }
            3 => {
                if alive.len() < 4 {
                    continue;
                }
                let count = rng.gen_range(1..=3usize.min(alive.len() - 1));
                let mut victims = Vec::with_capacity(count);
                for _ in 0..count {
                    let at = rng.gen_range(0..alive.len());
                    victims.push(EntityId(alive.swap_remove(at)));
                }
                ops.push(Op::Remove(victims));
            }
            _ => {
                if alive.is_empty() {
                    continue;
                }
                let count = rng.gen_range(1..=3usize.min(alive.len()));
                let mut chosen: Vec<u32> = Vec::new();
                for _ in 0..count {
                    let e = alive[rng.gen_range(0..alive.len())];
                    if !chosen.contains(&e) {
                        chosen.push(e);
                    }
                }
                let updates = chosen
                    .into_iter()
                    .map(|e| {
                        let donor = rng.gen_range(0..n);
                        (EntityId(e), dataset.profiles[donor].clone())
                    })
                    .collect();
                ops.push(Op::Update(updates));
            }
        }
        if step.is_multiple_of(4) {
            ops.push(Op::Compact);
        }
    }
    ops
}

/// A thread-count-independent record of one emitted delta batch.
#[derive(Debug, Clone, PartialEq)]
struct Emission {
    pairs: Vec<(EntityId, EntityId)>,
    probabilities: Vec<f64>,
    rescored: Vec<(EntityId, EntityId)>,
    rescored_probabilities: Vec<f64>,
    retracted: Vec<(EntityId, EntityId)>,
}

impl Emission {
    fn of(delta: &er_stream::DeltaBatch) -> Self {
        Emission {
            pairs: delta.pairs.clone(),
            probabilities: delta.probabilities.clone(),
            rescored: delta.rescored_pairs.clone(),
            rescored_probabilities: delta.rescored_probabilities.clone(),
            retracted: delta.retracted.clone(),
        }
    }
}

fn config(dataset: &Dataset, threads: usize) -> StreamingConfig {
    StreamingConfig {
        feature_set: FeatureSet::all_schemes(),
        threads,
        ..StreamingConfig::for_dataset(dataset)
    }
}

/// Applies the trace to a plain (never-restarted) blocker, returning its
/// emissions and the batch-equivalent corpus profiles at the end.
fn run_reference<G: KeyGenerator + Clone>(
    dataset: &Dataset,
    generator: G,
    ops: &[Op],
    threads: usize,
) -> (Vec<Emission>, Vec<EntityProfile>) {
    let mut blocker = StreamingMetaBlocker::new(config(dataset, threads), generator)
        .with_model(Box::new(FixedModel));
    let mut current: Vec<EntityProfile> = Vec::new();
    let mut next = 0usize;
    let mut emissions = Vec::new();
    for op in ops {
        match op {
            Op::Ingest(take) => {
                let batch = &dataset.profiles[next..next + take];
                current.extend_from_slice(batch);
                next += take;
                emissions.push(Emission::of(&blocker.ingest(batch)));
            }
            Op::Remove(ids) => {
                for &e in ids {
                    current[e.index()] = EntityProfile::new(current[e.index()].external_id.clone());
                }
                emissions.push(Emission::of(&blocker.remove(ids)));
            }
            Op::Update(updates) => {
                for (e, profile) in updates {
                    current[e.index()] = profile.clone();
                }
                emissions.push(Emission::of(&blocker.update(updates)));
            }
            Op::Compact => {
                blocker.compact();
            }
        }
    }
    (emissions, current)
}

/// The final-state audit: the recovered stream's compacted blocks,
/// candidate pairs, LCP counters and fused probabilities must equal a
/// one-shot batch build of the surviving corpus.
fn assert_end_state<G: KeyGenerator>(
    dataset: &Dataset,
    generator: &G,
    csr: &er_blocking::CsrBlockCollection,
    index: &er_stream::StreamingIndex,
    current: &[EntityProfile],
    threads: usize,
) {
    let reference = Dataset {
        name: dataset.name.clone(),
        kind: dataset.kind,
        profiles: current.to_vec(),
        split: dataset.split.min(current.len()),
        ground_truth: GroundTruth::from_pairs(Vec::new()),
    };
    let batch = build_blocks(&reference, generator, threads);
    assert_eq!(
        csr.to_block_collection().blocks,
        batch.to_block_collection().blocks,
        "recovered blocks diverged from the batch build"
    );
    let set = FeatureSet::all_schemes();
    let stream_stats = BlockStats::from_csr(csr);
    let stream_candidates = CandidatePairs::from_stats(&stream_stats, threads);
    let batch_stats = BlockStats::from_csr(&batch);
    let batch_candidates = CandidatePairs::from_stats(&batch_stats, threads);
    assert_eq!(stream_candidates.pairs(), batch_candidates.pairs());
    let model = FixedModel;
    let stream_context = FeatureContext::new(&stream_stats, &stream_candidates);
    let batch_context = FeatureContext::new(&batch_stats, &batch_candidates);
    let stream_probabilities =
        FeatureMatrix::score_rows(&stream_context, set, threads, |row| model.probability(row));
    let batch_probabilities =
        FeatureMatrix::score_rows(&batch_context, set, threads, |row| model.probability(row));
    assert_eq!(stream_probabilities, batch_probabilities);
    for e in 0..current.len() {
        let entity = EntityId(e as u32);
        assert_eq!(
            index.candidates_of(entity),
            batch_candidates.candidates_of(entity),
            "LCP mismatch for entity {e} after recovery"
        );
    }
}

/// Runs the trace through a durable blocker, crashing (dropping the
/// blocker) and recovering at pseudo-random batch boundaries; recovery may
/// use a different thread count than the original run.  Every emission and
/// the final state must match the never-restarted reference.
fn run_with_restarts<G: KeyGenerator + Clone>(
    dataset: &Dataset,
    generator: G,
    ops: &[Op],
    threads: usize,
    dir: &PathBuf,
    restart_seed: u64,
) {
    let (expected, current) = run_reference(dataset, generator.clone(), ops, threads);
    let mut rng = er_core::seeded_rng(restart_seed);
    let recovery_threads = [1usize, 2, 4];

    let mut durable = StreamingMetaBlocker::new(config(dataset, threads), generator.clone())
        .persist_to(dir)
        .unwrap()
        .with_model(Box::new(FixedModel));
    let mut next = 0usize;
    let mut emitted = 0usize;
    for op in ops {
        match op {
            Op::Ingest(take) => {
                let batch = &dataset.profiles[next..next + take];
                next += take;
                let delta = durable.ingest(batch).unwrap();
                assert_eq!(Emission::of(&delta), expected[emitted], "batch {emitted}");
                emitted += 1;
            }
            Op::Remove(ids) => {
                let delta = durable.remove(ids).unwrap();
                assert_eq!(Emission::of(&delta), expected[emitted], "batch {emitted}");
                emitted += 1;
            }
            Op::Update(updates) => {
                let delta = durable.update(updates).unwrap();
                assert_eq!(Emission::of(&delta), expected[emitted], "batch {emitted}");
                emitted += 1;
            }
            Op::Compact => {
                durable.compact().unwrap();
            }
        }
        // Crash at roughly every third batch boundary.
        if rng.gen_range(0..3) == 0 {
            drop(durable);
            let t = recovery_threads[rng.gen_range(0..recovery_threads.len())];
            durable = DurableMetaBlocker::recover_from(dir, generator.clone(), t)
                .unwrap()
                .with_model(Box::new(FixedModel));
        }
    }
    assert_eq!(emitted, expected.len());

    // One last crash, then the full end-state audit.
    drop(durable);
    let mut durable = DurableMetaBlocker::recover_from(dir, generator.clone(), threads).unwrap();
    let csr = durable.compact().unwrap();
    assert_end_state(
        dataset,
        &generator,
        &csr,
        durable.index(),
        &current,
        threads,
    );
}

#[test]
fn clean_clean_restart_traces_recover_bit_identically() {
    let dataset = clean_clean_dataset();
    let ops = generate_trace(&dataset, 0x00d1_5c01);
    for threads in [1usize, 2, 4] {
        let dir = scratch(&format!("cc-token-{threads}"));
        run_with_restarts(
            &dataset,
            TokenKeys,
            &ops,
            threads,
            &dir,
            0xc7a5 + threads as u64,
        );
    }
    let dir = scratch("cc-qgrams");
    run_with_restarts(&dataset, QGramKeys::new(3), &ops, 2, &dir, 0xbead);
}

#[test]
fn dirty_restart_traces_recover_bit_identically_with_caps() {
    let dataset = dirty_dataset();
    let ops = generate_trace(&dataset, 0x00d1_5c02);
    // A tight suffix cap so blocks cross the cap in both directions across
    // restarts (retraction/revival state must survive recovery).
    for threads in [1usize, 4] {
        let dir = scratch(&format!("dirty-suffix-{threads}"));
        run_with_restarts(
            &dataset,
            SuffixKeys::new(3, 12),
            &ops,
            threads,
            &dir,
            0xd00d + threads as u64,
        );
    }
}

#[test]
fn kill_point_between_wal_append_and_apply_replays_the_record() {
    let dataset = clean_clean_dataset();
    let ops = generate_trace(&dataset, 0x0bad_c0de);
    let generator = TokenKeys;
    let threads = 2;
    let dir = scratch("kill-point");

    // Reference: the never-crashed run applying every batch normally.
    let mut reference = StreamingMetaBlocker::new(config(&dataset, threads), generator)
        .with_model(Box::new(FixedModel));

    let mut durable = StreamingMetaBlocker::new(config(&dataset, threads), generator)
        .persist_to(&dir)
        .unwrap()
        .with_model(Box::new(FixedModel));
    let mut rng = er_core::seeded_rng(0x5eed);
    let mut current: Vec<EntityProfile> = Vec::new();
    let mut next = 0usize;
    let mut kill_points = 0usize;
    for op in &ops {
        // Mirror the op into the batch-equivalent corpus and the reference.
        let record = match op {
            Op::Ingest(take) => {
                let batch = dataset.profiles[next..next + take].to_vec();
                current.extend_from_slice(&batch);
                next += take;
                reference.ingest(&batch);
                Some(MutationRecord::Ingest(batch))
            }
            Op::Remove(ids) => {
                for &e in ids {
                    current[e.index()] = EntityProfile::new(current[e.index()].external_id.clone());
                }
                reference.remove(ids);
                Some(MutationRecord::Remove(ids.clone()))
            }
            Op::Update(updates) => {
                for (e, profile) in updates {
                    current[e.index()] = profile.clone();
                }
                reference.update(updates);
                Some(MutationRecord::Update(updates.clone()))
            }
            Op::Compact => {
                reference.compact();
                durable.compact().unwrap();
                None
            }
        };
        let Some(record) = record else { continue };
        if rng.gen_range(0..3) == 0 {
            // The crash window: the record reaches the log, the in-memory
            // apply never happens.  Recovery must replay it.
            durable.wal_append_only(&record).unwrap();
            kill_points += 1;
            drop(durable);
            durable = DurableMetaBlocker::recover_from(&dir, generator, threads)
                .unwrap()
                .with_model(Box::new(FixedModel));
        } else {
            match &record {
                MutationRecord::Ingest(profiles) => {
                    durable.ingest(profiles).unwrap();
                }
                MutationRecord::Remove(ids) => {
                    durable.remove(ids).unwrap();
                }
                MutationRecord::Update(updates) => {
                    durable.update(updates).unwrap();
                }
            }
        }
        // Cheap state probes after every batch; the full audit runs at the
        // end.
        assert_eq!(durable.num_entities(), reference.num_entities());
        assert_eq!(durable.num_alive(), reference.num_alive());
        assert_eq!(
            durable.index().num_live_blocks(),
            reference.index().num_live_blocks()
        );
        assert_eq!(
            durable.index().total_comparisons(),
            reference.index().total_comparisons()
        );
    }
    assert!(kill_points >= 3, "trace exercised too few kill points");

    let streamed = durable.compact().unwrap();
    let via_reference = reference.compact();
    assert_eq!(
        streamed.to_block_collection().blocks,
        via_reference.to_block_collection().blocks
    );
    assert_end_state(
        &dataset,
        &generator,
        &streamed,
        durable.index(),
        &current,
        threads,
    );
}

#[test]
fn torn_wal_tail_rolls_back_to_the_previous_batch_boundary() {
    let dataset = dirty_dataset();
    let generator = TokenKeys;
    let dir = scratch("torn-tail");

    let mut durable = StreamingMetaBlocker::new(config(&dataset, 1), generator)
        .persist_to(&dir)
        .unwrap();
    let half = dataset.num_entities() / 2;
    durable.ingest_unscored(&dataset.profiles[..half]).unwrap();
    let boundary_state = durable.view().to_block_collection().blocks;
    durable.ingest_unscored(&dataset.profiles[half..]).unwrap();
    drop(durable);

    // Tear the last record: cut a few bytes off the WAL (generation 0 —
    // no checkpoint has committed a newer one).
    let wal = er_stream::persist::wal_path(&dir, 0);
    let bytes = fs::read(&wal).unwrap();
    fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();

    let durable = DurableMetaBlocker::recover_from(&dir, generator, 1).unwrap();
    assert_eq!(durable.num_entities(), half);
    assert_eq!(durable.view().to_block_collection().blocks, boundary_state);
    // The torn tail is a normal crash artefact: reported, not degraded.
    let report = durable.recovery_report().unwrap();
    assert!(report.torn_tail_truncated);
    assert!(report.is_clean());
    assert!(!report.repair_checkpoint);

    // The torn tail was truncated: appending and recovering again works.
    let mut durable = durable;
    durable.ingest_unscored(&dataset.profiles[half..]).unwrap();
    drop(durable);
    let durable = DurableMetaBlocker::recover_from(&dir, generator, 1).unwrap();
    assert_eq!(durable.num_entities(), dataset.num_entities());
}

/// Copies every regular file of `src` into `dst` (one level — durability
/// roots are flat until recovery creates `quarantine/`).
fn copy_root(src: &std::path::Path, dst: &std::path::Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_file() {
            fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
        }
    }
}

#[test]
fn corrupt_newest_generation_falls_back_bit_identically() {
    let dataset = dirty_dataset();
    let generator = TokenKeys;
    let base = scratch("fallback-base");

    let mut durable = StreamingMetaBlocker::new(config(&dataset, 1), generator)
        .persist_to(&base)
        .unwrap();
    durable.ingest_unscored(&dataset.profiles[..20]).unwrap();
    durable.checkpoint().unwrap(); // commits generation 1; generation 0 retained
    durable.ingest_unscored(&dataset.profiles[20..40]).unwrap();
    let expected_blocks = durable.view().to_block_collection().blocks;
    let expected_seq = durable.wal_sequence();
    drop(durable);

    // Corrupt a sample of single bytes spanning the whole newest-generation
    // snapshot — magic, version, tag, fingerprint, length, CRC and payload
    // regions all get hit.  Every flip must recover bit-identically from
    // generation 0 plus the longer WAL chain.
    let clean = fs::read(er_stream::persist::snapshot_path(&base, 1)).unwrap();
    let stride = (clean.len() / 24).max(1);
    let mut flips: Vec<usize> = (0..clean.len()).step_by(stride).collect();
    flips.push(clean.len() - 1);
    for at in flips {
        // Each flip gets a fresh copy of the root: the repair checkpoint
        // mutates the directory it recovers.
        let dir = scratch(&format!("fallback-{at}"));
        copy_root(&base, &dir);
        let mut bad = clean.clone();
        bad[at] ^= 0x40;
        fs::write(er_stream::persist::snapshot_path(&dir, 1), &bad).unwrap();

        let mut durable = DurableMetaBlocker::recover_from(&dir, generator, 2)
            .unwrap_or_else(|e| panic!("flip at byte {at}: fallback recovery failed: {e:?}"));
        assert_eq!(durable.num_entities(), 40, "flip at byte {at}");
        assert_eq!(durable.wal_sequence(), expected_seq, "flip at byte {at}");
        assert_eq!(
            durable.view().to_block_collection().blocks,
            expected_blocks,
            "flip at byte {at}: recovered state diverged"
        );

        // The episode is fully accounted for in the report.
        let report = durable.recovery_report().unwrap().clone();
        assert!(!report.is_clean(), "flip at byte {at}");
        assert_eq!(report.committed_generation, 1, "flip at byte {at}");
        assert_eq!(report.used_generation, 0, "flip at byte {at}");
        assert_eq!(report.generations_tried, 2, "flip at byte {at}");
        assert_eq!(report.quarantined.len(), 1, "flip at byte {at}");
        assert!(report.repair_checkpoint, "flip at byte {at}");
        assert!(
            er_persist::quarantine_path(&dir)
                .join("snapshot.000001.gsmb")
                .exists(),
            "flip at byte {at}: corrupt snapshot not quarantined"
        );

        // The repair checkpoint restored redundancy: the store still
        // appends, and the next recovery is clean.
        durable.ingest_unscored(&dataset.profiles[40..45]).unwrap();
        drop(durable);
        let durable = DurableMetaBlocker::recover_from(&dir, generator, 1).unwrap();
        assert_eq!(durable.num_entities(), 45, "flip at byte {at}");
        assert!(
            durable.recovery_report().unwrap().is_clean(),
            "flip at byte {at}: recovery after repair should be clean"
        );
    }
}

#[test]
fn corrupted_files_surface_as_typed_errors() {
    let dataset = dirty_dataset();
    let generator = TokenKeys;
    let dir = scratch("corrupt");

    let mut durable = StreamingMetaBlocker::new(config(&dataset, 1), generator)
        .persist_to(&dir)
        .unwrap();
    durable.ingest_unscored(&dataset.profiles[..20]).unwrap();
    durable.checkpoint().unwrap();
    durable.ingest_unscored(&dataset.profiles[20..40]).unwrap();
    drop(durable);

    // The checkpoint committed generation 1; generation 0 is retained as
    // the fallback.  Corrupting *every* retained snapshot generation
    // exhausts the fallback chain: recovery is refused with a typed error
    // and both corpses end up in quarantine.
    let snapshot1 = er_stream::persist::snapshot_path(&dir, 1);
    let snapshot0 = er_stream::persist::snapshot_path(&dir, 0);
    let clean_snapshot1 = fs::read(&snapshot1).unwrap();
    let clean_snapshot0 = fs::read(&snapshot0).unwrap();
    for (path, clean) in [
        (&snapshot1, &clean_snapshot1),
        (&snapshot0, &clean_snapshot0),
    ] {
        let mut bad = clean.clone();
        let at = bad.len() / 2;
        bad[at] ^= 0x10;
        fs::write(path, &bad).unwrap();
    }
    let err = DurableMetaBlocker::recover_from(&dir, generator, 1).unwrap_err();
    assert!(
        matches!(
            err,
            PersistError::ChecksumMismatch { .. } | PersistError::Truncated { .. }
        ),
        "{err:?}"
    );
    let quarantine = er_persist::quarantine_path(&dir);
    assert!(quarantine.join("snapshot.000001.gsmb").exists());
    assert!(quarantine.join("snapshot.000000.gsmb").exists());
    // Put the clean files back (the corrupt ones were moved aside).
    fs::write(&snapshot1, &clean_snapshot1).unwrap();
    fs::write(&snapshot0, &clean_snapshot0).unwrap();

    // Flip a byte inside the active WAL's record payload: corruption of
    // acknowledged records is fatal in every mode — degrading around it
    // would be silent data loss.
    let wal = er_stream::persist::wal_path(&dir, 1);
    let clean_wal = fs::read(&wal).unwrap();
    let mut bad = clean_wal.clone();
    let at = er_persist::wal::WAL_HEADER_LEN + 4 + 4 + 8 + 10;
    bad[at] ^= 0x20;
    fs::write(&wal, &bad).unwrap();
    let err = DurableMetaBlocker::recover_from(&dir, generator, 1).unwrap_err();
    assert!(
        matches!(err, PersistError::ChecksumMismatch { .. }),
        "{err:?}"
    );
    fs::write(&wal, &clean_wal).unwrap();

    // A generator whose cap disagrees with the snapshot is refused.
    let err = DurableMetaBlocker::recover_from(&dir, SuffixKeys::new(3, 12), 1).unwrap_err();
    assert!(matches!(err, PersistError::Corrupt(_)), "{err:?}");

    // A missing root is an I/O error, not a panic.
    let err = DurableMetaBlocker::recover_from(dir.join("missing"), generator, 1).unwrap_err();
    assert!(matches!(err, PersistError::Io { .. }));

    // And the pristine files still recover.
    let recovered = DurableMetaBlocker::recover_from(&dir, generator, 1).unwrap();
    assert_eq!(recovered.num_entities(), 40);
}
