//! Structured events: the low-rate, high-information side-channel.
//!
//! Metrics answer "how many / how fast"; events carry the rest — a
//! degraded recovery's full [`RecoveryReport`]-shaped story, a fault
//! injector's op log.  An [`Event`] is a name plus ordered key/value
//! fields, pushed to the installed [`EventSink`].  The default sink is
//! [`NoopSink`] and emission first checks one relaxed atomic, so
//! uninstalled event call sites cost one load and never format anything.
//!
//! ```
//! let sink = er_obs::event::CapturingSink::shared();
//! er_obs::event::set_sink(sink.clone());
//! er_obs::event::emit("wal_rotated", |e| {
//!     e.push("segment", 7);
//!     e.push("bytes", 4096);
//! });
//! assert_eq!(sink.take().len(), 1);
//! er_obs::event::clear_sink();
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// One structured event: a static name plus ordered key/value fields.
#[derive(Debug, Clone, Default)]
pub struct Event {
    /// Event name, same naming scheme as metrics (`persist_recovery`, …).
    pub name: &'static str,
    /// Ordered key/value fields.
    pub fields: Vec<(&'static str, String)>,
}

impl Event {
    /// An empty event named `name`.
    pub fn new(name: &'static str) -> Self {
        Event {
            name,
            fields: Vec::new(),
        }
    }

    /// Appends one field, formatting the value with `Display`.
    pub fn push(&mut self, key: &'static str, value: impl fmt::Display) -> &mut Self {
        self.fields.push((key, value.to_string()));
        self
    }

    /// The first field with `key`, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// logfmt-style rendering: `name key=value key="two words"`.
impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        for (key, value) in &self.fields {
            if value.contains([' ', '"', '=']) {
                write!(f, " {key}={:?}", value)?;
            } else {
                write!(f, " {key}={value}")?;
            }
        }
        Ok(())
    }
}

/// Where emitted events go.  Implementations must tolerate concurrent
/// emission.
pub trait EventSink: Send + Sync {
    /// Consumes one event.
    fn emit(&self, event: &Event);
}

/// The default sink: drops everything.
#[derive(Debug, Default)]
pub struct NoopSink;

impl EventSink for NoopSink {
    fn emit(&self, _event: &Event) {}
}

/// Writes each event's logfmt rendering to stderr — the one-line way to
/// make degraded recoveries visible in a service log.
#[derive(Debug, Default)]
pub struct StderrSink;

impl EventSink for StderrSink {
    fn emit(&self, event: &Event) {
        eprintln!("{event}");
    }
}

/// Buffers events for inspection; the test-suite sink.
#[derive(Debug, Default)]
pub struct CapturingSink {
    events: Mutex<Vec<Event>>,
}

impl CapturingSink {
    /// A fresh shareable sink.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Drains and returns everything captured so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().unwrap())
    }

    /// A copy of everything captured so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }
}

impl EventSink for CapturingSink {
    fn emit(&self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

static SINK_ACTIVE: AtomicBool = AtomicBool::new(false);

fn sink_slot() -> &'static RwLock<Arc<dyn EventSink>> {
    static SLOT: OnceLock<RwLock<Arc<dyn EventSink>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(Arc::new(NoopSink)))
}

/// Installs `sink` as the global event sink.
pub fn set_sink(sink: Arc<dyn EventSink>) {
    *sink_slot().write().unwrap() = sink;
    SINK_ACTIVE.store(true, Ordering::Relaxed);
}

/// Restores the default [`NoopSink`]; emission goes back to one relaxed
/// load.
pub fn clear_sink() {
    *sink_slot().write().unwrap() = Arc::new(NoopSink);
    SINK_ACTIVE.store(false, Ordering::Relaxed);
}

/// True if a non-noop sink is installed and the layer is enabled — the
/// guard emit call sites get for free.
#[inline]
pub fn sink_active() -> bool {
    SINK_ACTIVE.load(Ordering::Relaxed) && crate::enabled()
}

/// Emits one event, building it only if a sink is installed: `build`
/// never runs (no allocation, no formatting) under the default
/// [`NoopSink`].
pub fn emit(name: &'static str, build: impl FnOnce(&mut Event)) {
    if !sink_active() {
        return;
    }
    let mut event = Event::new(name);
    build(&mut event);
    let sink = sink_slot().read().unwrap().clone();
    sink.emit(&event);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn noop_by_default_never_builds() {
        clear_sink();
        let built = AtomicUsize::new(0);
        emit("test_event", |_| {
            built.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(built.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn capturing_sink_round_trips() {
        let sink = CapturingSink::shared();
        set_sink(sink.clone());
        emit("test_round_trip", |e| {
            e.push("k", 42).push("msg", "two words");
        });
        clear_sink();
        emit("after_clear", |e| {
            e.push("k", 0);
        });
        let events = sink.take();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "test_round_trip");
        assert_eq!(events[0].get("k"), Some("42"));
        assert_eq!(
            events[0].to_string(),
            "test_round_trip k=42 msg=\"two words\""
        );
    }
}
