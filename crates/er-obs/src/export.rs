//! Snapshotting and rendering: Prometheus text exposition and the
//! repository's hand-rolled JSON shape.

use std::fmt::Write as _;

use crate::{Counter, Entry, Family, Gauge, Histogram, Registered, HISTOGRAM_BUCKETS};

/// What shape a sample came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleKind {
    /// Monotonic counter.
    Counter,
    /// Last-value / high-water-mark gauge.
    Gauge,
    /// log2 histogram.
    Histogram,
}

impl SampleKind {
    fn prometheus_type(self) -> &'static str {
        match self {
            SampleKind::Counter => "counter",
            SampleKind::Gauge => "gauge",
            SampleKind::Histogram => "histogram",
        }
    }
}

/// A histogram's loaded state: `(inclusive upper bound, cumulative
/// count)` per populated bucket prefix, ending with the unbounded bucket
/// (`u64::MAX` ≙ `+Inf`).
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Cumulative bucket counts, truncated after the last populated
    /// bucket; always ends with the `(u64::MAX, count)` overflow entry.
    pub buckets: Vec<(u64, u64)>,
}

/// One exported sample: a child of a (possibly unlabeled) metric.
#[derive(Debug, Clone)]
pub struct Sample {
    /// `(label key, label value)` for family children, `None` for plain
    /// metrics.
    pub label: Option<(&'static str, &'static str)>,
    /// Counter/gauge value; a histogram's total count.
    pub value: u64,
    /// Bucket detail for histogram samples.
    pub histogram: Option<HistogramSnapshot>,
}

/// All samples of one registered name.
#[derive(Debug, Clone)]
pub struct MetricFamilySnapshot {
    /// Registered metric name.
    pub name: &'static str,
    /// Help text.
    pub help: &'static str,
    /// Sample shape.
    pub kind: SampleKind,
    /// One entry for a plain metric, one per label for families.
    pub samples: Vec<Sample>,
}

/// A point-in-time view of the whole registry, ready to render.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Every registered metric, sorted by name.
    pub families: Vec<MetricFamilySnapshot>,
}

fn counter_sample(label: Option<(&'static str, &'static str)>, c: &Counter) -> Sample {
    Sample {
        label,
        value: c.get(),
        histogram: None,
    }
}

fn gauge_sample(label: Option<(&'static str, &'static str)>, g: &Gauge) -> Sample {
    Sample {
        label,
        value: g.get(),
        histogram: None,
    }
}

fn histogram_sample(label: Option<(&'static str, &'static str)>, h: &Histogram) -> Sample {
    let mut buckets = Vec::new();
    let mut cumulative = 0u64;
    let mut last_populated = 0usize;
    let raw: Vec<u64> = (0..HISTOGRAM_BUCKETS).map(|i| h.bucket_count(i)).collect();
    for (i, &c) in raw.iter().enumerate() {
        if c > 0 {
            last_populated = i;
        }
    }
    for (i, &c) in raw.iter().enumerate().take(last_populated + 1) {
        cumulative += c;
        buckets.push((Histogram::bucket_bound(i), cumulative));
    }
    // `record` bumps the bucket before the total and all loads are
    // relaxed, so during a concurrent snapshot either side may lead; take
    // the max so the cumulative `le` series stays monotone.
    let count = h.count().max(cumulative);
    match buckets.last_mut() {
        Some(last) if last.0 == u64::MAX => last.1 = count,
        _ => buckets.push((u64::MAX, count)),
    }
    Sample {
        label,
        value: count,
        histogram: Some(HistogramSnapshot {
            count,
            sum: h.sum(),
            buckets,
        }),
    }
}

fn family_samples<M: Default + 'static>(
    family: &'static Family<M>,
    sample: impl Fn(Option<(&'static str, &'static str)>, &'static M) -> Sample,
) -> Vec<Sample> {
    family
        .children()
        .into_iter()
        .map(|(label, child)| sample(Some((family.label_key(), label)), child))
        .collect()
}

pub(crate) fn snapshot_from(entries: Vec<Entry>) -> MetricsSnapshot {
    let mut families: Vec<MetricFamilySnapshot> = entries
        .into_iter()
        .map(|entry| {
            let (kind, samples) = match entry.metric {
                Registered::Counter(c) => (SampleKind::Counter, vec![counter_sample(None, c)]),
                Registered::Gauge(g) => (SampleKind::Gauge, vec![gauge_sample(None, g)]),
                Registered::Histogram(h) => {
                    (SampleKind::Histogram, vec![histogram_sample(None, h)])
                }
                Registered::CounterFamily(f) => {
                    (SampleKind::Counter, family_samples(f, counter_sample))
                }
                Registered::GaugeFamily(f) => (SampleKind::Gauge, family_samples(f, gauge_sample)),
                Registered::HistogramFamily(f) => {
                    (SampleKind::Histogram, family_samples(f, histogram_sample))
                }
            };
            MetricFamilySnapshot {
                name: entry.name,
                help: entry.help,
                kind,
                samples,
            }
        })
        .collect();
    families.sort_by(|a, b| a.name.cmp(b.name));
    MetricsSnapshot { families }
}

fn prometheus_le(bound: u64) -> String {
    if bound == u64::MAX {
        "+Inf".to_string()
    } else {
        bound.to_string()
    }
}

impl MetricsSnapshot {
    /// The value of the unlabeled metric `name` (a histogram's total
    /// count), if registered.
    pub fn value(&self, name: &str) -> Option<u64> {
        let family = self.families.iter().find(|f| f.name == name)?;
        family
            .samples
            .iter()
            .find(|s| s.label.is_none())
            .map(|s| s.value)
    }

    /// The value of the `label = value` child of family `name`.
    pub fn labeled_value(&self, name: &str, label_value: &str) -> Option<u64> {
        let family = self.families.iter().find(|f| f.name == name)?;
        family
            .samples
            .iter()
            .find(|s| s.label.is_some_and(|(_, v)| v == label_value))
            .map(|s| s.value)
    }

    /// Bucket detail of the unlabeled histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        let family = self.families.iter().find(|f| f.name == name)?;
        family
            .samples
            .iter()
            .find(|s| s.label.is_none())
            .and_then(|s| s.histogram.as_ref())
    }

    /// Prometheus text exposition format (version 0.0.4): `# HELP` /
    /// `# TYPE` per metric, `_bucket`/`_sum`/`_count` expansion for
    /// histograms, log2 bucket bounds as `le` labels.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
            let _ = writeln!(
                out,
                "# TYPE {} {}",
                family.name,
                family.kind.prometheus_type()
            );
            for sample in &family.samples {
                let label = |extra: Option<(&str, String)>| -> String {
                    let mut parts = Vec::new();
                    if let Some((k, v)) = sample.label {
                        parts.push(format!("{k}=\"{v}\""));
                    }
                    if let Some((k, v)) = extra {
                        parts.push(format!("{k}=\"{v}\""));
                    }
                    if parts.is_empty() {
                        String::new()
                    } else {
                        format!("{{{}}}", parts.join(","))
                    }
                };
                match &sample.histogram {
                    None => {
                        let _ = writeln!(out, "{}{} {}", family.name, label(None), sample.value);
                    }
                    Some(h) => {
                        for &(bound, cumulative) in &h.buckets {
                            let _ = writeln!(
                                out,
                                "{}_bucket{} {}",
                                family.name,
                                label(Some(("le", prometheus_le(bound)))),
                                cumulative
                            );
                        }
                        let _ = writeln!(out, "{}_sum{} {}", family.name, label(None), h.sum);
                        let _ = writeln!(out, "{}_count{} {}", family.name, label(None), h.count);
                    }
                }
            }
        }
        out
    }

    /// The repository's hand-rolled JSON shape (the workspace's serde
    /// shims are no-ops by design): a flat object of metric name →
    /// value, `{"count": n, "sum": s}` for histograms, and an object of
    /// label value → value for families.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut first = true;
        for family in &self.families {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(out, "  \"{}\": ", family.name);
            let scalar = |s: &Sample| match &s.histogram {
                None => s.value.to_string(),
                Some(h) => format!("{{\"count\": {}, \"sum\": {}}}", h.count, h.sum),
            };
            let labeled = family.samples.iter().any(|s| s.label.is_some());
            if labeled {
                let children: Vec<String> = family
                    .samples
                    .iter()
                    .filter_map(|s| s.label.map(|(_, v)| format!("\"{}\": {}", v, scalar(s))))
                    .collect();
                let _ = write!(out, "{{{}}}", children.join(", "));
            } else if let Some(sample) = family.samples.first() {
                out.push_str(&scalar(sample));
            } else {
                out.push_str("null");
            }
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_renders_both_formats() {
        let c = crate::counter("er_obs_export_test_total", "a test counter");
        let g = crate::gauge("er_obs_export_test_hwm", "a test gauge");
        let h = crate::histogram("er_obs_export_test_ns", "a test histogram");
        let f = crate::counter_family("er_obs_export_test_by_class", "labeled", "class", 4);
        c.add(3);
        g.record_max(9);
        h.record(0);
        h.record(5);
        f.with_label("fatal").add(2);

        let snapshot = crate::snapshot();
        assert_eq!(snapshot.value("er_obs_export_test_total"), Some(3));
        assert_eq!(snapshot.value("er_obs_export_test_hwm"), Some(9));
        assert_eq!(
            snapshot.labeled_value("er_obs_export_test_by_class", "fatal"),
            Some(2)
        );
        let hist = snapshot.histogram("er_obs_export_test_ns").unwrap();
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 5);
        assert_eq!(hist.buckets.last(), Some(&(u64::MAX, 2)));

        let prom = snapshot.render_prometheus();
        assert!(prom.contains("# TYPE er_obs_export_test_total counter"));
        assert!(prom.contains("er_obs_export_test_total 3"));
        assert!(prom.contains("er_obs_export_test_by_class{class=\"fatal\"} 2"));
        assert!(prom.contains("er_obs_export_test_ns_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("er_obs_export_test_ns_sum 5"));
        assert!(prom.contains("er_obs_export_test_ns_count 2"));

        let json = snapshot.render_json();
        assert!(json.contains("\"er_obs_export_test_total\": 3"));
        assert!(json.contains("\"er_obs_export_test_ns\": {\"count\": 2, \"sum\": 5}"));
        assert!(json.contains("\"er_obs_export_test_by_class\": {\"fatal\": 2}"));
    }

    #[test]
    fn empty_histogram_renders_inf_bucket_only() {
        let sample = histogram_sample(None, &Histogram::default());
        let h = sample.histogram.unwrap();
        assert_eq!(h.buckets, vec![(0, 0), (u64::MAX, 0)]);
    }
}
