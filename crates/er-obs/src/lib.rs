//! Zero-overhead observability: a dependency-free, lock-free metrics
//! registry plus a lightweight structured-event layer.
//!
//! Every subsystem of the pipeline (blocking build, radix scoreboard,
//! candidate streaming, streaming CRUD, WAL/generational durability,
//! sharded group commit, epoch-published reads) records into one global
//! registry of named metrics:
//!
//! * [`Counter`] — monotonic, relaxed `fetch_add`;
//! * [`Gauge`] — last-value or high-water mark (`fetch_max`), relaxed;
//! * [`Histogram`] — 64 fixed log2 buckets plus count and sum, all relaxed
//!   atomics, recording byte sizes or nanosecond durations;
//! * [`Family`] — labeled variants of any of the three, with a bounded
//!   label set (past [`Family::max_cardinality`] new labels collapse into
//!   the [`OVERFLOW_LABEL`] child so an unbounded label source can never
//!   leak memory).
//!
//! **Hot-path cost.**  Registration happens once per call site (cache the
//! returned `&'static` handle in a `OnceLock` or a struct of handles);
//! after that every update is one relaxed atomic RMW, and instrumented
//! code batches updates at task/batch boundaries rather than per element.
//! The whole layer can be switched off with [`set_enabled`]: the disabled
//! path is a single relaxed load per update (timers skip the clock read
//! entirely), which is what the `micro_blocking`/`micro_stream` overhead
//! gate measures.
//!
//! **Reading.**  [`snapshot`] walks the registry with relaxed loads —
//! safe during concurrent writes — and renders as Prometheus text
//! exposition ([`MetricsSnapshot::render_prometheus`]) or the repository's
//! hand-rolled `BENCH_*.json` shape ([`MetricsSnapshot::render_json`]).
//!
//! **Events.**  [`event`] is the structured side-channel for rare,
//! high-information occurrences (recovery reports, fault-injection op
//! logs): named key/value records pushed to a pluggable
//! [`event::EventSink`] ([`event::NoopSink`] by default — emission is one
//! relaxed load when no sink is installed).
//!
//! Naming scheme: `<subsystem>_<what>[_total|_bytes|_ns|_hwm]` —
//! `_total` for counters, `_bytes`/`_ns` for the unit of histograms and
//! sized gauges, `_hwm` for high-water-mark gauges.

pub mod event;
mod export;

pub use export::{HistogramSnapshot, MetricFamilySnapshot, MetricsSnapshot, Sample, SampleKind};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Global on/off switch, checked with one relaxed load per update.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// True if metric updates are currently recorded (the default).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Switches the whole metrics layer on or off.  Disabled, every update
/// call reduces to the one relaxed load inside [`enabled`] — the
/// "uninstrumented" arm of the bench overhead gate.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` (relaxed; no-op while the layer is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero — for sequential bench phases, not concurrent use.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value / high-water-mark gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Stores `v` (relaxed; no-op while disabled).
    #[inline]
    pub fn set(&self, v: u64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if larger (`fetch_max`) — high-water-mark
    /// semantics.
    #[inline]
    pub fn record_max(&self, v: u64) {
        if enabled() {
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Adds `n` (for level-style gauges updated by deltas).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero — for sequential bench phases, not concurrent use.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of fixed log2 buckets per histogram.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket log2 histogram: bucket `i` counts values in
/// `[2^(i-1), 2^i - 1]` (bucket 0 counts zeros, the last bucket is
/// unbounded above), plus an exact total count and sum.  Records byte
/// sizes, element counts, or nanosecond durations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// The bucket index of `v`: `0` for zero, else `floor(log2 v) + 1`,
    /// clamped to the last bucket.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// The inclusive upper bound of bucket `i` (`u64::MAX` for the
    /// unbounded last bucket).
    pub fn bucket_bound(i: usize) -> u64 {
        if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation (three relaxed adds; no-op while disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Starts a scoped timer that records its elapsed nanoseconds here on
    /// drop.  While the layer is disabled the clock is never read.
    pub fn start_timer(&self) -> Timer<'_> {
        Timer {
            histogram: self,
            start: enabled().then(Instant::now),
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Raw (non-cumulative) count of bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Resets all buckets — for sequential bench phases, not concurrent
    /// use.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// A scoped timer from [`Histogram::start_timer`]: records the elapsed
/// nanoseconds into its histogram when dropped.
#[derive(Debug)]
pub struct Timer<'a> {
    histogram: &'a Histogram,
    start: Option<Instant>,
}

impl Timer<'_> {
    /// Records now (identical to dropping, but reads as a statement).
    pub fn observe(self) {}

    /// Drops the timer without recording.
    pub fn discard(mut self) {
        self.start = None;
    }
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.histogram.record_duration(start.elapsed());
        }
    }
}

/// Label value that absorbs every label past a family's cardinality cap.
pub const OVERFLOW_LABEL: &str = "other";

/// Default cardinality cap for labeled families.
pub const DEFAULT_MAX_CARDINALITY: usize = 64;

/// A labeled family of metrics: one child per label value, bounded.  Child
/// lookup takes a mutex — resolve the child once and cache the `&'static`
/// handle on hot paths.
#[derive(Debug)]
pub struct Family<M: Default + 'static> {
    label_key: &'static str,
    max_cardinality: usize,
    children: Mutex<Vec<(&'static str, &'static M)>>,
}

impl<M: Default + 'static> Family<M> {
    fn new(label_key: &'static str, max_cardinality: usize) -> Self {
        Family {
            label_key,
            max_cardinality: max_cardinality.max(1),
            children: Mutex::new(Vec::new()),
        }
    }

    /// The label key shared by every child (e.g. `class`, `shard`).
    pub fn label_key(&self) -> &'static str {
        self.label_key
    }

    /// Distinct label values this family will hold before collapsing new
    /// ones into [`OVERFLOW_LABEL`].
    pub fn max_cardinality(&self) -> usize {
        self.max_cardinality
    }

    /// The child metric for `value`, created on first use.  Past the
    /// cardinality cap, unseen labels all share the [`OVERFLOW_LABEL`]
    /// child.
    pub fn with_label(&self, value: &str) -> &'static M {
        let mut children = self.children.lock().unwrap();
        if let Some(&(_, m)) = children.iter().find(|(v, _)| *v == value) {
            return m;
        }
        let label: &'static str = if children.len() >= self.max_cardinality {
            if let Some(&(_, m)) = children.iter().find(|(v, _)| *v == OVERFLOW_LABEL) {
                return m;
            }
            OVERFLOW_LABEL
        } else {
            Box::leak(value.to_string().into_boxed_str())
        };
        let metric: &'static M = Box::leak(Box::new(M::default()));
        children.push((label, metric));
        metric
    }

    /// Snapshot of `(label, child)` pairs in creation order.
    pub fn children(&self) -> Vec<(&'static str, &'static M)> {
        self.children.lock().unwrap().clone()
    }
}

/// One registered metric (any shape).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Registered {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
    CounterFamily(&'static Family<Counter>),
    GaugeFamily(&'static Family<Gauge>),
    HistogramFamily(&'static Family<Histogram>),
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Entry {
    pub(crate) name: &'static str,
    pub(crate) help: &'static str,
    pub(crate) metric: Registered,
}

fn registry() -> &'static Mutex<Vec<Entry>> {
    static REGISTRY: OnceLock<Mutex<Vec<Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

pub(crate) fn registry_entries() -> Vec<Entry> {
    registry().lock().unwrap().clone()
}

fn register(
    name: &'static str,
    help: &'static str,
    make: impl FnOnce() -> Registered,
) -> Registered {
    let mut entries = registry().lock().unwrap();
    if let Some(entry) = entries.iter().find(|e| e.name == name) {
        return entry.metric;
    }
    let metric = make();
    entries.push(Entry { name, help, metric });
    metric
}

/// The counter registered under `name`, created on first call.
/// Re-registration with the same name returns the same handle; a name
/// clash across metric kinds panics.
pub fn counter(name: &'static str, help: &'static str) -> &'static Counter {
    match register(name, help, || {
        Registered::Counter(Box::leak(Box::new(Counter::default())))
    }) {
        Registered::Counter(c) => c,
        _ => panic!("metric {name} already registered with a different kind"),
    }
}

/// The gauge registered under `name`.
pub fn gauge(name: &'static str, help: &'static str) -> &'static Gauge {
    match register(name, help, || {
        Registered::Gauge(Box::leak(Box::new(Gauge::default())))
    }) {
        Registered::Gauge(g) => g,
        _ => panic!("metric {name} already registered with a different kind"),
    }
}

/// The histogram registered under `name`.
pub fn histogram(name: &'static str, help: &'static str) -> &'static Histogram {
    match register(name, help, || {
        Registered::Histogram(Box::leak(Box::new(Histogram::default())))
    }) {
        Registered::Histogram(h) => h,
        _ => panic!("metric {name} already registered with a different kind"),
    }
}

/// The labeled counter family registered under `name`.
pub fn counter_family(
    name: &'static str,
    help: &'static str,
    label_key: &'static str,
    max_cardinality: usize,
) -> &'static Family<Counter> {
    match register(name, help, || {
        Registered::CounterFamily(Box::leak(Box::new(Family::new(label_key, max_cardinality))))
    }) {
        Registered::CounterFamily(f) => f,
        _ => panic!("metric {name} already registered with a different kind"),
    }
}

/// The labeled gauge family registered under `name`.
pub fn gauge_family(
    name: &'static str,
    help: &'static str,
    label_key: &'static str,
    max_cardinality: usize,
) -> &'static Family<Gauge> {
    match register(name, help, || {
        Registered::GaugeFamily(Box::leak(Box::new(Family::new(label_key, max_cardinality))))
    }) {
        Registered::GaugeFamily(f) => f,
        _ => panic!("metric {name} already registered with a different kind"),
    }
}

/// The labeled histogram family registered under `name`.
pub fn histogram_family(
    name: &'static str,
    help: &'static str,
    label_key: &'static str,
    max_cardinality: usize,
) -> &'static Family<Histogram> {
    match register(name, help, || {
        Registered::HistogramFamily(Box::leak(Box::new(Family::new(label_key, max_cardinality))))
    }) {
        Registered::HistogramFamily(f) => f,
        _ => panic!("metric {name} already registered with a different kind"),
    }
}

/// A consistent-enough point-in-time view of every registered metric
/// (individual values are relaxed loads; safe during concurrent writes).
pub fn snapshot() -> MetricsSnapshot {
    export::snapshot_from(registry_entries())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2_shaped() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Every bucket's bound is the largest value mapping to it.
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(Histogram::bucket_index(Histogram::bucket_bound(i)), i);
            assert_eq!(
                Histogram::bucket_index(Histogram::bucket_bound(i) + 1),
                i + 1
            );
        }
    }

    #[test]
    fn histogram_counts_and_sums() {
        let h = Histogram::default();
        for v in [0u64, 1, 1, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1005);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(1), 2);
        assert_eq!(h.bucket_count(2), 1);
        assert_eq!(h.bucket_count(10), 1);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn disabled_layer_records_nothing() {
        let c = Counter::default();
        let g = Gauge::default();
        let h = Histogram::default();
        set_enabled(false);
        c.inc();
        g.record_max(7);
        h.record(7);
        let t = h.start_timer();
        drop(t);
        set_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.count(), 0);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn registration_is_idempotent_by_name() {
        let a = counter("er_obs_test_idempotent_total", "test");
        let b = counter("er_obs_test_idempotent_total", "test");
        assert!(std::ptr::eq(a, b));
        a.add(2);
        assert_eq!(b.get(), 2);
    }

    #[test]
    fn timer_feeds_histogram() {
        let h = Histogram::default();
        {
            let _t = h.start_timer();
            std::hint::black_box(0u64);
        }
        assert_eq!(h.count(), 1);
        let t = h.start_timer();
        t.discard();
        assert_eq!(h.count(), 1);
    }
}
