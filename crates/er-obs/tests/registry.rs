//! Registry hammering: exact totals under 8-thread contention,
//! snapshot-during-write consistency, and label-family cardinality
//! bounds.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const THREADS: usize = 8;
const OPS_PER_THREAD: u64 = 50_000;

#[test]
fn concurrent_counter_and_histogram_totals_are_exact() {
    let counter = er_obs::counter("registry_test_hammer_total", "hammered counter");
    let histogram = er_obs::histogram("registry_test_hammer_ns", "hammered histogram");
    let gauge = er_obs::gauge("registry_test_hammer_hwm", "hammered gauge");
    let family = er_obs::counter_family(
        "registry_test_hammer_by_worker",
        "hammered family",
        "worker",
        THREADS,
    );

    thread::scope(|scope| {
        for t in 0..THREADS as u64 {
            scope.spawn(move || {
                // Each worker resolves its labeled child once, then hammers
                // the relaxed fast paths.
                let child = family.with_label(&t.to_string());
                for i in 0..OPS_PER_THREAD {
                    counter.inc();
                    histogram.record(i % 1024);
                    gauge.record_max(t * OPS_PER_THREAD + i);
                    child.inc();
                }
            });
        }
    });

    let expected = THREADS as u64 * OPS_PER_THREAD;
    assert_eq!(counter.get(), expected);
    assert_eq!(histogram.count(), expected);
    // Sum of (i % 1024) over a full cycle is 1023*1024/2 per 1024 ops.
    let cycles = OPS_PER_THREAD / 1024;
    let tail = OPS_PER_THREAD % 1024;
    let per_thread_sum = cycles * (1023 * 1024 / 2) + tail * (tail - 1) / 2;
    assert_eq!(histogram.sum(), THREADS as u64 * per_thread_sum);
    // Every observation landed in a bucket, and buckets partition the range.
    let bucket_total: u64 = (0..er_obs::HISTOGRAM_BUCKETS)
        .map(|i| histogram.bucket_count(i))
        .sum();
    assert_eq!(bucket_total, expected);
    assert_eq!(gauge.get(), THREADS as u64 * OPS_PER_THREAD - 1);
    for t in 0..THREADS as u64 {
        assert_eq!(
            family.with_label(&t.to_string()).get(),
            OPS_PER_THREAD,
            "per-label child {t} lost updates"
        );
    }
}

#[test]
fn snapshot_during_writes_is_internally_consistent() {
    let counter = er_obs::counter("registry_test_live_total", "written during snapshot");
    let histogram = er_obs::histogram("registry_test_live_ns", "written during snapshot");
    let stop = Arc::new(AtomicBool::new(false));

    thread::scope(|scope| {
        for _ in 0..4 {
            let stop = stop.clone();
            scope.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    counter.inc();
                    histogram.record(i % 4096);
                    i += 1;
                }
            });
        }
        // Snapshot repeatedly while writers run; every view must be sane.
        let mut last_count = 0u64;
        for _ in 0..200 {
            let snapshot = er_obs::snapshot();
            let count = snapshot.value("registry_test_live_total").unwrap();
            assert!(count >= last_count, "counter went backwards");
            last_count = count;
            let hist = snapshot.histogram("registry_test_live_ns").unwrap();
            // The cumulative `le` series never decreases and ends at the
            // reported count.
            let mut prev = 0u64;
            for &(_, cumulative) in &hist.buckets {
                assert!(cumulative >= prev, "bucket series not monotone");
                prev = cumulative;
            }
            assert_eq!(hist.buckets.last().unwrap().1, hist.count);
            // Rendering must never panic mid-write.
            let prom = snapshot.render_prometheus();
            assert!(prom.contains("registry_test_live_ns_count"));
        }
        stop.store(true, Ordering::Relaxed);
    });
}

#[test]
fn family_cardinality_is_bounded() {
    let family = er_obs::counter_family(
        "registry_test_cardinality_total",
        "bounded labels",
        "key",
        4,
    );
    for i in 0..100 {
        family.with_label(&format!("label-{i}")).inc();
    }
    let children = family.children();
    // 4 real labels plus the shared overflow child — never 100.
    assert_eq!(children.len(), 5);
    let overflow = family.with_label("label-99");
    assert!(std::ptr::eq(
        overflow,
        family.with_label(er_obs::OVERFLOW_LABEL)
    ));
    // 96 labels collapsed into the overflow child.
    assert_eq!(overflow.get(), 96);
    // Established labels keep resolving to their own child past the cap.
    assert_eq!(family.with_label("label-2").get(), 1);
    let snapshot = er_obs::snapshot();
    assert_eq!(
        snapshot.labeled_value("registry_test_cardinality_total", er_obs::OVERFLOW_LABEL),
        Some(96)
    );
}

#[test]
fn concurrent_label_resolution_creates_each_child_once() {
    let family =
        er_obs::counter_family("registry_test_label_race_total", "raced labels", "key", 32);
    thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(move || {
                for i in 0..16 {
                    family.with_label(&format!("shared-{i}")).inc();
                }
            });
        }
    });
    assert_eq!(family.children().len(), 16);
    for i in 0..16 {
        assert_eq!(
            family.with_label(&format!("shared-{i}")).get(),
            THREADS as u64
        );
    }
}
