//! # Generalized Supervised Meta-blocking (GSMB)
//!
//! A from-scratch Rust reproduction of *Generalized Supervised Meta-blocking*
//! (PVLDB 2022): meta-blocking for Entity Resolution cast as a probabilistic
//! binary classification task, with weight- and cardinality-based pruning
//! algorithms consuming the per-pair matching probabilities.
//!
//! This facade crate re-exports the workspace crates under short module
//! names; see the individual crates for the full APIs:
//!
//! * [`core`] (`er-core`) — entity profiles, collections, ground truth;
//! * [`datasets`] (`er-datasets`) — synthetic benchmark generators;
//! * [`blocking`] (`er-blocking`) — Token Blocking, Purging, Filtering,
//!   candidate pairs and block statistics;
//! * [`features`] (`er-features`) — the eight weighting schemes and feature
//!   matrices;
//! * [`learn`] (`er-learn`) — logistic regression, linear SVM + Platt scaling,
//!   balanced sampling;
//! * [`meta`] (`meta-blocking`) — the pruning algorithms and the end-to-end
//!   pipeline (the paper's contribution);
//! * [`stream`] (`er-stream`) — incremental meta-blocking: ingest entity
//!   batches, emit delta candidates, compact back to the batch state;
//! * [`persist`] (`er-persist`) — durability: the versioned, checksummed
//!   binary codec, atomic snapshots and the mutation write-ahead log behind
//!   `stream::DurableMetaBlocker` and `meta::DurableStreamingPipeline`;
//! * [`shard`] (`er-shard`) — the sharded streaming service: hash-partitioned
//!   posting shards, per-shard WALs with group commit, atomic cross-shard
//!   checkpoints and epoch-published wait-free reads;
//! * [`obs`] (`er-obs`) — the dependency-free observability layer: lock-free
//!   counters/gauges/histograms, structured events, Prometheus and JSON
//!   exporters, threaded through every pipeline, durability and shard path;
//! * [`eval`] (`er-eval`) — metrics and the experiment harness behind every
//!   table and figure.
//!
//! ## Quick start
//!
//! ```
//! use gsmb::datasets::{generate_catalog_dataset, CatalogOptions, DatasetName};
//! use gsmb::meta::pipeline::{MetaBlockingConfig, MetaBlockingPipeline};
//! use gsmb::meta::pruning::AlgorithmKind;
//! use gsmb::eval::Effectiveness;
//!
//! let dataset = generate_catalog_dataset(DatasetName::AbtBuy, &CatalogOptions::tiny()).unwrap();
//! let outcome = MetaBlockingPipeline::new(MetaBlockingConfig::default())
//!     .run(&dataset, AlgorithmKind::Blast)
//!     .unwrap();
//! let effectiveness = Effectiveness::evaluate(
//!     &outcome.retained_pairs(),
//!     &dataset.ground_truth,
//!     dataset.num_duplicates(),
//! );
//! assert!(effectiveness.recall > 0.0);
//! ```

pub use er_blocking as blocking;
pub use er_core as core;
pub use er_datasets as datasets;
pub use er_eval as eval;
pub use er_features as features;
pub use er_learn as learn;
pub use er_obs as obs;
pub use er_persist as persist;
pub use er_shard as shard;
pub use er_stream as stream;
pub use meta_blocking as meta;
